#!/usr/bin/env bash
# CI gate for the canti workspace — a single-pass pipeline that compiles
# the workspace exactly once per profile and reports per-phase wall time.
#
#   scripts/ci.sh          # release build -> release tests (reusing the
#                          # build) -> clippy --all-targets -> fmt --check
#                          # -> rustdoc with warnings denied
#   scripts/ci.sh smoke    # the above, then:
#                          #   * the example matrix: every example under
#                          #     examples/ with fast arguments, failing on
#                          #     nonzero exit
#                          #   * a 16-job sensor_farm batch + obsctl
#                          #     artifact-health gate
#                          #   * a supervised chaos (fault-injection)
#                          #     batch gated through obsctl summary
#                          #   * a sharded traced serve_demo run whose
#                          #     telemetry artifact is gated through
#                          #     obsctl trace (request-chain health) and
#                          #     obsctl slo (offline window recompute),
#                          #     and whose scraped /debug/timeline body is
#                          #     archived (serve_timeline.ndjson, previous
#                          #     run kept as .prev) and gated through
#                          #     obsctl timeline + obsctl anomaly
#                          #   * a cache drill (serve_demo --cache) whose
#                          #     telemetry artifact is gated through
#                          #     obsctl summary: zero trace sequence gaps
#                          #     AND non-zero cache_hit AND non-zero
#                          #     coalesced counts in the cache section
#                          #   * the bench loop: farm, experiments and
#                          #     serve benches with archived
#                          #     BENCH_<name>.json artifacts, each gated
#                          #     through obsctl diff against the previous
#                          #     archive when present; the serve bench
#                          #     runs three times — shard counts 1 and 4,
#                          #     plus a cached run (CANTI_SERVE_CACHE=1) —
#                          #     with separately archived and gated
#                          #     artifacts (BENCH_serve.json /
#                          #     BENCH_serve_shard4.json /
#                          #     BENCH_serve_cached.json)
#
# Both modes finish by writing the per-phase wall times to
# target/ci_phases.json (previous run kept as .prev) and printing an
# advisory delta against the previous run — timings are never a gate.
#
# Perf gate knobs (smoke only):
#   CANTI_PERF_THRESHOLD_PCT  relative slack for obsctl diff (default: 40
#                             for the farm bench, 100 for the micro-kernel
#                             experiments/serve benches, which are noisier)
#   CANTI_PERF_MIN_NS         absolute noise floor in ns (default 50000,
#                             except the farm bench's 2000000 — see the
#                             bench-loop comments)
#   CANTI_TIMELINE_THRESHOLD_PCT
#                             count-drift tolerance for the timeline
#                             anomaly gate (default 10; the smoke load is
#                             fixed, so counts should be near-exact)
#   CANTI_FARM_JOBS           farm bench batch size (default 64)
#   CANTI_BENCH_MS            experiments bench ms/kernel (default 80 here)
#   CANTI_SERVE_REQUESTS      serve bench request count (default 64 here)
#   CANTI_SERVE_BATCH         serve bench batch threshold (bench default)
#   CANTI_SERVE_THREADS       serve bench farm workers (bench default)
#   CANTI_SERVE_SUBMITTERS    serve bench submitter threads (bench default)
#   CANTI_SERVE_CACHE         1 turns on the serve bench's result cache
#                             with a repeat-heavy request mix (set by the
#                             BENCH_serve_cached leg; bench default off)
set -euo pipefail
cd "$(dirname "$0")/.."

phase_names=()
phase_secs=()
phase_t0=0
phase_begin() {
    echo "== $1 =="
    phase_names+=("$1")
    phase_t0=$SECONDS
}
phase_end() {
    phase_secs+=($((SECONDS - phase_t0)))
}

phase_begin "build (release)"
cargo build --release --workspace
phase_end

phase_begin "tests (release, reusing the build)"
cargo test -q --release --workspace
phase_end

phase_begin "clippy --all-targets (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings
phase_end

phase_begin "fmt --check"
cargo fmt --all -- --check
phase_end

phase_begin "rustdoc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
phase_end

if [[ "${1:-}" == "smoke" ]]; then
    phase_begin "example matrix"
    # every example must run to success with fast arguments; args chosen
    # so the whole matrix stays in seconds
    run_example() {
        echo "-- example $1 --"
        cargo run --release -q --example "$1" -- "${@:2}" \
            || { echo "example $1 failed"; exit 1; }
    }
    run_example array_screening
    run_example autonomous_operation
    run_example dna_hybridization
    run_example farm_service 6 --batches 1
    run_example immunoassay
    run_example interference_rejection
    run_example process_monte_carlo
    run_example quickstart
    run_example sensor_farm 8
    run_example serve_demo 12 --submitters 2 --batch 4
    run_example serve_demo 12 --submitters 2 --batch 4 --shards 2
    phase_end

    phase_begin "farm smoke (16-job batch, telemetry on)"
    # --telemetry exits non-zero itself if any stage histogram is empty
    cargo run --release --example sensor_farm 16 --telemetry
    artifact=target/farm_telemetry.ndjson
    [[ -s "$artifact" ]] || { echo "missing telemetry artifact $artifact"; exit 1; }
    grep -q '"record":"farm_stage"' "$artifact" || { echo "no stage records in $artifact"; exit 1; }
    grep -q '"kind":"span_start"'   "$artifact" || { echo "no trace events in $artifact"; exit 1; }
    echo "telemetry artifact: $(wc -l < "$artifact") NDJSON records"
    # fails (exit 1) on an empty span tree or trace sequence gaps
    cargo run --release -q -p canti-obsctl -- summary "$artifact"
    phase_end

    phase_begin "chaos smoke (supervised fault-injection batch)"
    # the example itself asserts the supervised report is bit-identical
    # to a 1-thread oracle before it exits 0
    cargo run --release --example sensor_farm -- --chaos 7341 --telemetry
    chaos_artifact=target/chaos_telemetry.ndjson
    [[ -s "$chaos_artifact" ]] || { echo "missing chaos artifact $chaos_artifact"; exit 1; }
    # gates on span-tree health + zero trace sequence gaps, and must see
    # actual fault/recovery activity in the fault-health section
    chaos_summary=$(cargo run --release -q -p canti-obsctl -- summary "$chaos_artifact")
    echo "$chaos_summary"
    echo "$chaos_summary" | grep -q "fault_injected" \
        || { echo "chaos artifact shows no fault_injected events"; exit 1; }
    phase_end

    phase_begin "serve smoke (sharded traced demo) + request-trace gate"
    # keep the previous timeline artifact as the anomaly baseline before
    # the demo overwrites it (same .prev pattern as the bench artifacts)
    timeline_artifact=target/serve_timeline.ndjson
    timeline_prev=target/serve_timeline.prev.ndjson
    [[ -s "$timeline_artifact" ]] && cp "$timeline_artifact" "$timeline_prev"
    # the demo itself asserts breakdown tiling, non-empty SLO windows and
    # the JSON /healthz body before it exits 0
    cargo run --release --example serve_demo 16 --shards 2 --telemetry
    serve_artifact=target/serve_telemetry.ndjson
    [[ -s "$serve_artifact" ]] || { echo "missing serve artifact $serve_artifact"; exit 1; }
    # pick a request id actually present in shard 0's stream, then gate:
    # obsctl trace fails (exit 1) on orphaned or unclosed request spans
    # and on trace sequence gaps
    req=$(grep -o '"request":[0-9]*' "$serve_artifact" | head -1 | cut -d: -f2)
    [[ -n "$req" ]] || { echo "no request spans in $serve_artifact"; exit 1; }
    echo "-- obsctl trace: request $req --"
    cargo run --release -q -p canti-obsctl -- trace "$serve_artifact" "$req"
    # the offline SLO recomputation must find request spans to aggregate
    echo "-- obsctl slo (offline windows) --"
    cargo run --release -q -p canti-obsctl -- slo "$serve_artifact"
    # the scraped /debug/timeline body must parse and render (exit 1 on
    # an empty shard selection, exit 2 on a malformed artifact)
    [[ -s "$timeline_artifact" ]] || { echo "missing timeline artifact $timeline_artifact"; exit 1; }
    echo "-- obsctl timeline (merged view) --"
    cargo run --release -q -p canti-obsctl -- timeline "$timeline_artifact" --shard merged
    if [[ -s "$timeline_prev" ]]; then
        # gate request-scoped observation counts against the previous
        # run; sums are wall-clock noisy, counts are load-determined
        # (serve.expired included: the demo's hopeless deadline is 0 ns
        # relative, and expiry sweeps run before every batch formation,
        # so exactly one expiry is deterministic)
        echo "-- obsctl anomaly gate: timeline vs previous run --"
        cargo run --release -q -p canti-obsctl -- anomaly "$timeline_artifact" "$timeline_prev" \
            --series serve.admitted --series serve.completed --series serve.expired \
            --threshold-pct "${CANTI_TIMELINE_THRESHOLD_PCT:-10}"
    else
        echo "-- obsctl anomaly gate: no previous timeline artifact, baseline archived --"
    fi
    phase_end

    phase_begin "chaos-serve smoke (shard kill -> failover -> restart)"
    # the demo itself asserts the full self-healing drill — every wave-1
    # ticket answered terminally, at least one failover while the victim
    # is down, a supervised restart, and a clean post-restart wave —
    # before it exits 0. The plan generator never kills shard 0, so the
    # archived artifact (shard 0's ring) carries the failover events.
    cargo run --release --example serve_demo -- --chaos-serve 7341 --shards 2 --batch 4 --telemetry
    chaos_serve_artifact=target/serve_chaos_telemetry.ndjson
    [[ -s "$chaos_serve_artifact" ]] || { echo "missing chaos-serve artifact $chaos_serve_artifact"; exit 1; }
    # gates on span-tree health + zero trace sequence gaps, and must see
    # rerouted traffic in the shard-health section
    chaos_serve_summary=$(cargo run --release -q -p canti-obsctl -- summary "$chaos_serve_artifact")
    echo "$chaos_serve_summary"
    echo "$chaos_serve_summary" | grep -q "failover" \
        || { echo "chaos-serve artifact shows no failover events"; exit 1; }
    grep -q '"metric":"serve.failovers"' "$chaos_serve_artifact" \
        || { echo "chaos-serve artifact carries no serve.failovers counter"; exit 1; }
    phase_end

    phase_begin "cache smoke (result cache + coalescing drill)"
    # the demo itself asserts byte-identical payloads across the burst,
    # >0 coalesced followers, >0 cache hits, and cache-aware /healthz +
    # /debug/requests bodies before it exits 0
    cargo run --release --example serve_demo -- --cache --shards 2 --telemetry
    cache_artifact=target/serve_cache_telemetry.ndjson
    [[ -s "$cache_artifact" ]] || { echo "missing cache artifact $cache_artifact"; exit 1; }
    # summary fails (exit 1) on an empty span tree or trace sequence
    # gaps, so a clean exit here IS the zero-gap gate; the cache section
    # must additionally show real hit and coalescing activity
    cache_summary=$(cargo run --release -q -p canti-obsctl -- summary "$cache_artifact")
    echo "$cache_summary"
    cache_json=$(cargo run --release -q -p canti-obsctl -- summary "$cache_artifact" --json)
    for name in cache_hit coalesced; do
        count=$(echo "$cache_json" \
            | sed -n "s/.*\"record\":\"cache\",\"name\":\"$name\",\"count\":\([0-9]*\).*/\1/p" \
            | head -1)
        [[ -n "$count" && "$count" -gt 0 ]] \
            || { echo "cache gate: no $name activity in $cache_artifact"; exit 1; }
        echo "cache gate: $name x$count"
    done
    phase_end

    phase_begin "bench loop (farm, experiments, serve x shards) + perf gates"
    # keep the experiments bench fast in smoke unless the caller says
    # otherwise; the serve bench likewise gets a small default burst
    export CANTI_BENCH_MS="${CANTI_BENCH_MS:-80}"
    export CANTI_SERVE_REQUESTS="${CANTI_SERVE_REQUESTS:-64}"
    export CANTI_FARM_JOBS="${CANTI_FARM_JOBS:-64}"
    # run_bench_gate <bench> <artifact-stem> <threshold-pct> <min-ns> [ENV=V...]
    # archives target/<stem>.json, keeps the previous run as
    # target/<stem>.prev.json, and gates the new artifact against it
    # through obsctl diff when a baseline exists; <min-ns> is the
    # per-bench absolute noise floor (a regression must exceed the
    # percent threshold AND this many ns to fail the gate)
    run_bench_gate() {
        local bench="$1" stem="$2" default_threshold="$3" default_min_ns="$4"
        shift 4
        echo "-- bench $bench (archiving ${stem}.json)${*:+ [$*]} --"
        # absolute paths: cargo bench runs with cwd = its package dir
        local bench_json="$PWD/target/${stem}.json"
        local bench_prev="$PWD/target/${stem}.prev.json"
        # keep the previous artifact as the diff baseline before overwriting
        [[ -s "$bench_json" ]] && cp "$bench_json" "$bench_prev"
        env "$@" CANTI_BENCH_JSON="$bench_json" \
            cargo bench -q -p canti-bench --bench "$bench"
        [[ -s "$bench_json" ]] || { echo "missing bench artifact $bench_json"; exit 1; }
        if [[ -s "$bench_prev" ]]; then
            echo "-- obsctl perf gate: $stem vs previous run --"
            cargo run --release -q -p canti-obsctl -- diff "$bench_prev" "$bench_json" \
                --threshold-pct "${CANTI_PERF_THRESHOLD_PCT:-$default_threshold}" \
                --min-ns "${CANTI_PERF_MIN_NS:-$default_min_ns}"
        else
            echo "-- obsctl perf gate: no previous $stem artifact, baseline archived --"
        fi
    }
    # the persistent worker pool tightened the farm sweep's run-to-run
    # spread, so its regression threshold drops 50 -> 40, with a 2 ms
    # noise floor that keeps the gate on the dominant queue_wait stage
    # (tens of ms) while forgiving bucket-edge flicker on the ~1 ms
    # precompute/solve stages; the micro-kernel benches stay looser,
    # they are noisier on small machines. The serve bench runs at shard
    # counts 1 and 4 with independently archived + gated artifacts.
    run_bench_gate farm        BENCH_farm         40 2000000
    run_bench_gate experiments BENCH_experiments 100   50000
    run_bench_gate serve       BENCH_serve       100   50000 CANTI_SERVE_SHARDS=1
    run_bench_gate serve       BENCH_serve_shard4 100  50000 CANTI_SERVE_SHARDS=4
    # the cached leg reuses the serve bench with the result cache on and
    # a repeat-heavy mix, so its artifact tracks the cached/coalesced
    # fast path rather than batch formation
    run_bench_gate serve       BENCH_serve_cached 100  50000 CANTI_SERVE_CACHE=1
    phase_end
fi

echo
echo "ci: all green — phase wall times:"
# archive the per-phase wall times (previous run kept as .prev) and
# print an advisory delta; timings are informational, never a gate
phases_json=target/ci_phases.json
phases_prev=target/ci_phases.prev.json
mkdir -p target
[[ -s "$phases_json" ]] && cp "$phases_json" "$phases_prev"
{
    printf '{"record":"ci_phases","phases":['
    for i in "${!phase_names[@]}"; do
        [[ $i -gt 0 ]] && printf ','
        printf '\n  {"name":"%s","secs":%d}' "${phase_names[$i]}" "${phase_secs[$i]}"
    done
    printf '\n]}\n'
} > "$phases_json"
for i in "${!phase_names[@]}"; do
    line=$(printf '  %-48s %4ds' "${phase_names[$i]}" "${phase_secs[$i]}")
    if [[ -s "$phases_prev" ]]; then
        prev_secs=$(grep -F "\"name\":\"${phase_names[$i]}\"" "$phases_prev" \
            | head -1 | sed -n 's/.*"secs":\([0-9]*\).*/\1/p')
        if [[ -n "$prev_secs" ]]; then
            line="$line  (prev ${prev_secs}s, $((phase_secs[i] - prev_secs))s delta)"
        fi
    fi
    echo "$line"
done
echo "phase timings archived to $phases_json"
