#!/usr/bin/env bash
# CI gate for the canti workspace: build, full test suite, pedantic lints,
# and a farm smoke run.
#
#   scripts/ci.sh          # build + test + clippy
#   scripts/ci.sh smoke    # the above, then a 16-job sensor_farm batch
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace -- -D warnings

if [[ "${1:-}" == "smoke" ]]; then
    echo "== farm smoke (16-job batch, telemetry on) =="
    # --telemetry exits non-zero itself if any stage histogram is empty
    cargo run --release --example sensor_farm 16 --telemetry
    artifact=target/farm_telemetry.ndjson
    [[ -s "$artifact" ]] || { echo "missing telemetry artifact $artifact"; exit 1; }
    grep -q '"record":"farm_stage"' "$artifact" || { echo "no stage records in $artifact"; exit 1; }
    grep -q '"kind":"span_start"'   "$artifact" || { echo "no trace events in $artifact"; exit 1; }
    echo "telemetry artifact: $(wc -l < "$artifact") NDJSON records"
fi

echo "ci: all green"
