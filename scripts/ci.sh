#!/usr/bin/env bash
# CI gate for the canti workspace: build, full test suite, pedantic lints,
# a farm smoke run, and the perf-regression gate.
#
#   scripts/ci.sh          # build + test + clippy
#   scripts/ci.sh smoke    # the above, then a 16-job sensor_farm batch,
#                          # obsctl artifact-health gate, a supervised
#                          # chaos (fault-injection) batch gated through
#                          # obsctl summary, farm bench with archived
#                          # BENCH_farm.json, and obsctl diff against the
#                          # previous archive when present
#
# Perf gate knobs (smoke only):
#   CANTI_PERF_THRESHOLD_PCT  relative slack for obsctl diff (default 50)
#   CANTI_PERF_MIN_NS         absolute noise floor in ns (default 50000)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace -- -D warnings

if [[ "${1:-}" == "smoke" ]]; then
    echo "== farm smoke (16-job batch, telemetry on) =="
    # --telemetry exits non-zero itself if any stage histogram is empty
    cargo run --release --example sensor_farm 16 --telemetry
    artifact=target/farm_telemetry.ndjson
    [[ -s "$artifact" ]] || { echo "missing telemetry artifact $artifact"; exit 1; }
    grep -q '"record":"farm_stage"' "$artifact" || { echo "no stage records in $artifact"; exit 1; }
    grep -q '"kind":"span_start"'   "$artifact" || { echo "no trace events in $artifact"; exit 1; }
    echo "telemetry artifact: $(wc -l < "$artifact") NDJSON records"

    echo "== obsctl artifact-health gate =="
    # fails (exit 1) on an empty span tree or trace sequence gaps
    cargo run --release -q -p canti-obsctl -- summary "$artifact"

    echo "== chaos smoke (supervised fault-injection batch) =="
    # the example itself asserts the supervised report is bit-identical
    # to a 1-thread oracle before it exits 0
    cargo run --release --example sensor_farm -- --chaos 7341 --telemetry
    chaos_artifact=target/chaos_telemetry.ndjson
    [[ -s "$chaos_artifact" ]] || { echo "missing chaos artifact $chaos_artifact"; exit 1; }

    echo "== obsctl chaos artifact-health gate =="
    # gates on span-tree health + zero trace sequence gaps, and must see
    # actual fault/recovery activity in the fault-health section
    chaos_summary=$(cargo run --release -q -p canti-obsctl -- summary "$chaos_artifact")
    echo "$chaos_summary"
    echo "$chaos_summary" | grep -q "fault_injected" \
        || { echo "chaos artifact shows no fault_injected events"; exit 1; }

    echo "== farm bench (archiving BENCH_farm.json) =="
    # absolute paths: cargo bench runs the bench with cwd = its package dir
    bench_json="$PWD/target/BENCH_farm.json"
    bench_prev="$PWD/target/BENCH_farm.prev.json"
    # keep the previous artifact as the diff baseline before overwriting
    [[ -s "$bench_json" ]] && cp "$bench_json" "$bench_prev"
    CANTI_BENCH_JSON="$bench_json" CANTI_FARM_JOBS="${CANTI_FARM_JOBS:-64}" \
        cargo bench -q -p canti-bench --bench farm
    [[ -s "$bench_json" ]] || { echo "missing bench artifact $bench_json"; exit 1; }

    if [[ -s "$bench_prev" ]]; then
        echo "== obsctl perf-regression gate (vs previous run) =="
        cargo run --release -q -p canti-obsctl -- diff "$bench_prev" "$bench_json" \
            --threshold-pct "${CANTI_PERF_THRESHOLD_PCT:-50}" \
            --min-ns "${CANTI_PERF_MIN_NS:-50000}"
    else
        echo "== obsctl perf-regression gate: no previous artifact, baseline archived =="
    fi
fi

echo "ci: all green"
