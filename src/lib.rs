//! Umbrella crate re-exporting the canti workspace.
pub use canti_analog as analog;
pub use canti_bio as bio;
pub use canti_core as system;
pub use canti_digital as digital;
pub use canti_fab as fab;
pub use canti_farm as farm;
pub use canti_fault as fault;
pub use canti_mems as mems;
pub use canti_obs as obs;
pub use canti_serve as serve;
pub use canti_units as units;
