//! Fabrication study: why the electrochemical etch-stop matters.
//!
//! Runs the post-CMOS micromachining flow (Figure 3) through a Monte-Carlo
//! process spread, comparing the n-well etch-stop route against a timed
//! KOH etch, then runs the combined CMOS+MEMS DRC deck over the cantilever
//! layout — the paper's design-flow-integration claim.
//!
//! Run with: `cargo run --release --example process_monte_carlo`

use canti::fab::drc::{full_deck, Violation};
use canti::fab::layout::cantilever_cell;
use canti::fab::process::{PostCmosFlow, WaferSpec};
use canti::fab::variation::{Distribution, MonteCarlo, Stats};
use canti::mems::beam::CompositeBeam;
use canti::units::Meters;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- cross-section before/after (Figure 3) ------------------------
    let result = PostCmosFlow::paper().run(&WaferSpec::nominal())?;
    println!("cross-section BEFORE post-processing:");
    print!("{}", result.before.render());
    println!("\ncross-section of the released beam AFTER post-processing:");
    print!("{}", result.after_release_beam.render());
    println!(
        "released: {}, beam thickness {:.2} um\n",
        result.released,
        result.beam_thickness.as_micrometers()
    );

    // ----- thickness spread: etch-stop vs timed etch ---------------------
    let mc = MonteCarlo::new(0xFAB, 2000)?;
    let nwell_depth = Distribution::Normal {
        mean: 5.0e-6,
        sigma: 0.1e-6, // implant/diffusion control: +/- 2 %
    };
    let wafer_thickness = Distribution::Normal {
        mean: 525.0e-6,
        sigma: 10.0e-6, // wafer spec: +/- 10 um
    };
    let etch_rate_rel = Distribution::Normal {
        mean: 1.0,
        sigma: 0.03, // KOH bath: +/- 3 %
    };

    let stop_thickness = mc.run(|rng, _| {
        let mut wafer = WaferSpec::nominal();
        wafer.nwell_depth = Meters::new(nwell_depth.sample(rng));
        wafer.wafer_thickness = Meters::new(wafer_thickness.sample(rng));
        PostCmosFlow::paper()
            .run(&wafer)
            .expect("flow runs")
            .beam_thickness
            .as_micrometers()
    });
    let timed_thickness = mc.run(|rng, _| {
        let mut wafer = WaferSpec::nominal();
        wafer.nwell_depth = Meters::new(nwell_depth.sample(rng));
        wafer.wafer_thickness = Meters::new(wafer_thickness.sample(rng));
        let mut flow = PostCmosFlow::timed_baseline();
        if let canti::fab::process::EtchStop::Timed { rate, duration } = flow.etch_stop {
            flow.etch_stop = canti::fab::process::EtchStop::Timed {
                rate: rate * etch_rate_rel.sample(rng),
                duration,
            };
        }
        flow.run(&wafer)
            .map(|r| r.beam_thickness.as_micrometers())
            .unwrap_or(f64::NAN)
    });
    let timed_ok: Vec<f64> = timed_thickness
        .into_iter()
        .filter(|t| t.is_finite())
        .collect();

    let s_stop = Stats::of(&stop_thickness).expect("stats");
    let s_timed = Stats::of(&timed_ok).expect("stats");
    println!("beam thickness over {} Monte-Carlo wafers:", mc.trials());
    println!(
        "  electrochemical etch-stop: {:.2} +/- {:.2} um  (cv {:.1} %)",
        s_stop.mean,
        s_stop.std_dev,
        s_stop.cv().unwrap_or(0.0) * 100.0
    );
    println!(
        "  timed KOH etch:            {:.2} +/- {:.2} um  (cv {:.1} %)",
        s_timed.mean,
        s_timed.std_dev,
        s_timed.cv().unwrap_or(0.0) * 100.0
    );

    // ----- what that does to the resonant frequency ---------------------
    let f0_spread = |thicknesses: &[f64]| {
        let f: Vec<f64> = thicknesses
            .iter()
            .map(|&t_um| {
                let geom = canti::mems::geometry::CantileverGeometry::paper_resonant()
                    .expect("geometry")
                    .with_core_thickness(Meters::from_micrometers(t_um));
                CompositeBeam::new(&geom)
                    .expect("beam")
                    .fundamental_frequency()
                    .as_kilohertz()
            })
            .collect();
        Stats::of(&f).expect("stats")
    };
    let f_stop = f0_spread(&stop_thickness);
    let f_timed = f0_spread(&timed_ok);
    println!("\nresulting resonant-frequency spread:");
    println!(
        "  etch-stop: {:.1} +/- {:.1} kHz;  timed: {:.1} +/- {:.1} kHz",
        f_stop.mean, f_stop.std_dev, f_timed.mean, f_timed.std_dev
    );

    // ----- DRC of the MEMS masks against the CMOS layers -----------------
    let cell = cantilever_cell(150.0, 140.0);
    let violations: Vec<Violation> = full_deck().run(&cell);
    println!(
        "\nDRC (CMOS + MEMS combined deck) on '{}': {} violation(s)",
        cell.name(),
        violations.len()
    );
    for v in &violations {
        println!("  {v}");
    }
    Ok(())
}
