//! The monolithic-integration claim: inject the same external interference
//! into (a) the paper's on-chip readout and (b) a conventional discrete
//! readout, and compare the damage to a microvolt-scale sensor signal.
//!
//! In the discrete topology the weak bridge signal crosses a PCB before
//! its first amplifier, so trace pickup lands on it at full strength. In
//! the monolithic topology the first gain stage sits next to the bridge;
//! the same pickup, referred back to the input, is divided by that gain.
//!
//! Run with: `cargo run --release --example interference_rejection`

use canti::analog::blocks::{Block, ButterworthLowPass, ChopperAmplifier};
use canti::analog::interference::{InterferenceSource, ReadoutTopology};
use canti::analog::noise::CompositeNoise;
use canti::analog::spectrum::snr_db;
use canti::units::Volts;

const FS: f64 = 1e6;
const SIGNAL_FREQ: f64 = 150.0; // slow biosensor signal, Hz
const SIGNAL_AMP: f64 = 10e-6; // 10 uV bridge signal

fn run_chain(pickup_at_input: f64, mains: &InterferenceSource, label: &str) -> f64 {
    let mut amp = ChopperAmplifier::new(
        100.0,
        20e3,
        FS,
        Volts::from_millivolts(2.0),
        CompositeNoise::silent(FS),
        Volts::zero(),
    )
    .expect("valid chopper");
    let mut lpf = ButterworthLowPass::new(500.0, FS).expect("valid filter");
    let n = 1 << 18;
    let out: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / FS;
            let signal = SIGNAL_AMP * (2.0 * std::f64::consts::PI * SIGNAL_FREQ * t).sin();
            let interference = pickup_at_input / mains.amplitude.value() * mains.sample(i, FS);
            lpf.process(amp.process(signal + interference))
        })
        .collect();
    let snr = snr_db(&out[n / 4..], FS, SIGNAL_FREQ).expect("snr");
    println!("  {label:<38} SNR = {snr:6.1} dB");
    snr
}

fn main() {
    // 1 mV of 50 Hz mains pickup on the vulnerable interconnect.
    let mains = InterferenceSource::mains_50hz(Volts::from_millivolts(1.0)).expect("valid source");
    println!(
        "interference: {:.1} mV at {} Hz on the off-chip interconnect\n",
        mains.amplitude.as_millivolts(),
        mains.frequency
    );

    let discrete = ReadoutTopology::conventional_discrete();
    let monolithic = ReadoutTopology::paper_monolithic(100.0);

    let pickup_discrete = discrete.input_referred_pickup(mains.amplitude).value();
    let pickup_mono = monolithic.input_referred_pickup(mains.amplitude).value();
    println!(
        "input-referred pickup: discrete {:.1} uV, monolithic {:.2} uV\n",
        pickup_discrete * 1e6,
        pickup_mono * 1e6
    );

    let snr_discrete = run_chain(pickup_discrete, &mains, "discrete readout (amp off chip):");
    let snr_mono = run_chain(pickup_mono, &mains, "monolithic readout (paper):");

    println!(
        "\nmonolithic advantage: {:.1} dB ({}x in amplitude)",
        snr_mono - snr_discrete,
        monolithic.rejection_vs(&discrete, mains.amplitude).round()
    );
}
