//! Long-lived farm service: runs screening batches in a loop while a
//! live Prometheus exposition endpoint serves the accumulating metrics.
//!
//! Run with:
//! `cargo run --release --example farm_service [jobs] [--batches N] [--addr HOST:PORT]`
//!
//! * `jobs` — jobs per batch (default 24),
//! * `--batches N` — how many batches to run before shutting down
//!   (default 3; the example always terminates so CI can drive it),
//! * `--addr HOST:PORT` — where to bind `/metrics` + `/healthz`
//!   (default `127.0.0.1:0`, an ephemeral port printed at startup).
//!
//! While batches run, scrape the printed address:
//!
//! ```text
//! curl http://127.0.0.1:<port>/metrics
//! curl http://127.0.0.1:<port>/healthz
//! ```
//!
//! The service self-scrapes after the last batch and prints the
//! exposition text, so a plain run (no curl) still shows the format.

use canti::farm::{
    cross_reactivity_panel, dose_response_sweep, process_variation_batch, Farm, FarmConfig,
    FarmObserver, JobSpec,
};

fn usage() -> ! {
    eprintln!(
        "usage: farm_service [jobs] [--batches N] [--addr HOST:PORT]\n\
         serves /metrics and /healthz while running farm batches"
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs_per_batch = 24usize;
    let mut batches = 3usize;
    let mut addr = "127.0.0.1:0".to_owned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--batches" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => batches = n,
                _ => usage(),
            },
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            n => match n.parse() {
                Ok(v) if v >= 3 => jobs_per_batch = v,
                _ => usage(),
            },
        }
    }

    // Wall-clock observer: this is a service, latencies should be real.
    let (observer, _ring) = FarmObserver::profiling(8192);
    let server = observer.serve(&addr).expect("bind exposition server");
    println!(
        "serving /metrics and /healthz on http://{}  ({} batches x {} jobs)",
        server.local_addr(),
        batches,
        jobs_per_batch
    );

    let per_kind = jobs_per_batch / 3;
    let concentrations: Vec<f64> = (0..per_kind)
        .map(|i| 0.5 * 10f64.powf(3.0 * i as f64 / per_kind.max(2) as f64))
        .collect();
    let interferents: Vec<f64> = (0..jobs_per_batch - 2 * per_kind)
        .map(|i| i as f64 * 25.0)
        .collect();

    for batch in 0..batches {
        let mut jobs: Vec<JobSpec> = dose_response_sweep(&concentrations);
        jobs.extend(process_variation_batch(per_kind, 0.04));
        jobs.extend(cross_reactivity_panel(10.0, &interferents));

        let farm = Farm::new(FarmConfig {
            batch_seed: 0xFA12 + batch as u64,
            threads: 0,
        })
        .with_observer(observer.clone());
        let report = farm.run(&jobs);
        println!(
            "batch {batch}: {} ok / {} failed  ({} scrapes served so far)",
            report.ok_count(),
            report.err_count(),
            server.requests_served()
        );
    }

    let health = server.scrape("/healthz").expect("self-scrape /healthz");
    assert_eq!(
        health, "{\"status\":\"ok\",\"shards\":1,\"pool_threads\":0,\"draining\":false}\n",
        "health endpoint answers with the readiness body"
    );
    let exposition = server.scrape("/metrics").expect("self-scrape /metrics");
    println!("\n--- /metrics ---\n{exposition}");

    server.shutdown();
    println!("server drained and shut down");
}
