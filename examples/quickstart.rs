//! Quickstart: build the paper's resonant biosensor chip, start the
//! feedback loop in air, bind some analyte, and watch the resonant
//! frequency drop.
//!
//! Run with: `cargo run --release --example quickstart`

use canti::system::chip::{BiosensorChip, Environment};
use canti::system::resonant_system::{ResonantCantileverSystem, ResonantLoopConfig};
use canti::units::Kilograms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The chip: 150 um x 140 um cantilever released from a 0.8 um CMOS
    //    wafer, PMOS Wheatstone bridge at the clamped edge, Lorentz coil,
    //    package magnet.
    let chip = BiosensorChip::paper_resonant_chip()?;
    println!("chip: {}", chip.geometry());
    println!(
        "beam: f0(vacuum) = {:.1} kHz, k = {:.1} N/m",
        chip.beam().fundamental_frequency().as_kilohertz(),
        chip.beam().spring_constant().value()
    );

    // 2. Close the feedback loop (Figure 5) in air and let it start up
    //    from thermal noise.
    let mut system =
        ResonantCantileverSystem::new(chip, Environment::air(), ResonantLoopConfig::default())?;
    let baseline = system.steady_state(1200)?;
    println!(
        "oscillating at {:.1} kHz, amplitude {:.1} nm, VGA gain {:.1}",
        baseline.frequency.as_kilohertz(),
        baseline.amplitude.as_nanometers(),
        baseline.vga_gain
    );

    // 3. Bind 2 ng of analyte (a dried calibration droplet) and re-measure.
    system.set_added_mass(Kilograms::from_nanograms(2.0));
    let _resettle = system.run(20_000);
    let loaded = system.steady_state(800)?;
    let shift = loaded.frequency - baseline.frequency;
    println!(
        "after 2 ng: {:.1} kHz (shift {:+.2} Hz; analytic model predicts {:+.2} Hz)",
        loaded.frequency.as_kilohertz(),
        shift.value(),
        system
            .mass_loading()
            .frequency_shift(Kilograms::from_nanograms(2.0))
            .value()
    );

    // 4. What mass could this sensor resolve with a 0.1 Hz frequency
    //    readout?
    let min_mass = system
        .mass_loading()
        .min_detectable_mass(canti::units::Hertz::new(0.1))?;
    println!(
        "minimum detectable mass at 0.1 Hz resolution: {:.2} pg",
        min_mass.as_picograms()
    );
    Ok(())
}
