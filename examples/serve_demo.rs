//! Serving-layer demo: concurrent submitters push assay requests through
//! the sharded batching serve layer while a live Prometheus exposition
//! endpoint serves the **merged** per-shard metrics view (queue depth,
//! batch sizes, request latencies, admitted/rejected/expired counters,
//! every series labelled `shard="<i>"`) plus the observability debug
//! routes: a JSON `/healthz` readiness body, the per-request
//! `/debug/requests` log (trace id + latency breakdown), the
//! `/debug/slo` window view, and the per-window `/debug/timeline`
//! NDJSON series. Each shard's trace stream passes through a
//! [`FlightRecorder`] (head-sampled + tail-retained request traces)
//! before landing in the profiling ring.
//!
//! Run with:
//! `cargo run --release --example serve_demo [requests] [--submitters N] [--batch N] [--shards N] [--telemetry] [--addr HOST:PORT]`
//!
//! * `requests` — total requests to push (default 48),
//! * `--submitters N` — concurrent submitter threads (default 4),
//! * `--batch N` — batch size threshold per shard (default 8),
//! * `--shards N` — independent farm shards behind deterministic
//!   request routing (default 1),
//! * `--telemetry` — write shard 0's full trace stream (request spans,
//!   serve_batch/batch/job spans, metrics) to
//!   `target/serve_telemetry.ndjson` for `obsctl trace` / `obsctl slo`,
//!   and the scraped `/debug/timeline` body to
//!   `target/serve_timeline.ndjson` for `obsctl timeline` / `anomaly`,
//! * `--addr HOST:PORT` — where to bind the endpoint
//!   (default `127.0.0.1:0`, an ephemeral port printed at startup).
//!
//! The demo deliberately includes one hopeless deadline (to show an
//! expiry burning SLO budget), prints the per-request latency breakdown
//! table and the SLO window summary, then drains gracefully and
//! self-scrapes every route.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use canti::farm::{FarmObserver, JobSpec, ProbeMode, Receptor};
use canti::obs::{
    merge_windows, Collector, DebugState, ExpositionServer, FlightRecorder, Metrics, ObsClock,
    Readiness, RingCollector, SampleConfig, Tracer, WallClock,
};
use canti::serve::{Disposition, ServeConfig, ServeResponse, ShardedConfig, ShardedService};
use canti::units::{Molar, Seconds};

fn usage() -> ! {
    eprintln!(
        "usage: serve_demo [requests] [--submitters N] [--batch N] [--shards N] [--telemetry] [--addr HOST:PORT]\n\
         pushes concurrent assay requests through the sharded batching serve layer"
    );
    std::process::exit(2);
}

fn request(i: usize) -> JobSpec {
    JobSpec::StaticDoseResponse {
        receptor: Receptor::AntiIgg,
        concentration: Molar::from_nanomolar(0.5 * 10f64.powf(3.0 * (i % 16) as f64 / 15.0)),
        baseline: Seconds::new(30.0),
        association: Seconds::new(120.0),
        wash: Seconds::new(60.0),
        dt: Seconds::new(1.0),
        averaging: 32,
    }
}

fn main() {
    let mut requests = 48usize;
    let mut submitters = 4usize;
    let mut batch = 8usize;
    let mut shards = 1usize;
    let mut telemetry = false;
    let mut addr = "127.0.0.1:0".to_owned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--submitters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => submitters = n,
                _ => usage(),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => usage(),
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => shards = n,
                _ => usage(),
            },
            "--telemetry" => telemetry = true,
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            n => match n.parse() {
                Ok(v) if v > 0 => requests = v,
                _ => usage(),
            },
        }
    }

    // Wall-clock observers (one per shard): this is a service, latencies
    // should be real. Each shard records into its own registry; the
    // exposition endpoint merges them under per-shard labels. The trace
    // stream routes through a flight recorder (head sampling + tail
    // retention of SLO breaches and error traces) before the ring, so
    // the full stream stays available for --telemetry while the kept
    // set stays bounded.
    let mut observers = Vec::with_capacity(shards);
    let mut rings = Vec::with_capacity(shards);
    let mut flights = Vec::with_capacity(shards);
    let mut sources: Vec<(String, Arc<Metrics>)> = Vec::with_capacity(shards);
    for s in 0..shards {
        let ring = Arc::new(RingCollector::new(1 << 15));
        let flight = Arc::new(FlightRecorder::new(
            SampleConfig::default(),
            Some(Arc::clone(&ring) as Arc<dyn Collector>),
        ));
        let clock: Arc<dyn ObsClock> = Arc::new(WallClock::new());
        let tracer = Tracer::new(
            Arc::clone(&flight) as Arc<dyn Collector>,
            Arc::clone(&clock),
        );
        let observer = FarmObserver::from_parts(Arc::new(Metrics::new()), tracer, clock);
        sources.push((s.to_string(), Arc::clone(observer.metrics())));
        observers.push(observer);
        rings.push(ring);
        flights.push(flight);
    }

    let service = Arc::new(ShardedService::start_observed(
        ShardedConfig {
            shards,
            base: ServeConfig {
                max_batch: batch,
                linger_ns: 500_000, // 0.5 ms
                threads: 0,
                ..ServeConfig::default()
            },
        },
        observers,
    ));

    // The debug routes read the live serve state: per-shard SLO trackers
    // and request logs, plus the readiness snapshot behind /healthz.
    let readiness = Readiness {
        shards,
        pool_threads: service.pool_threads().first().copied().unwrap_or(0),
        ..Readiness::default()
    };
    let draining = Arc::clone(&readiness.draining);
    let debug = DebugState {
        slos: service
            .slos()
            .into_iter()
            .enumerate()
            .filter_map(|(s, slo)| slo.map(|slo| (s.to_string(), slo)))
            .collect(),
        requests: service
            .request_logs()
            .into_iter()
            .enumerate()
            .filter_map(|(s, log)| log.map(|log| (s.to_string(), log)))
            .collect(),
        timelines: service
            .timelines()
            .into_iter()
            .enumerate()
            .filter_map(|(s, tl)| tl.map(|tl| (s.to_string(), tl)))
            .collect(),
        readiness: Some(readiness),
    };
    let shard0_metrics = Arc::clone(&sources[0].1);
    let server = ExpositionServer::bind_sharded_debug(&addr, sources, debug)
        .expect("bind exposition server");
    println!(
        "serving /metrics /healthz /debug/requests /debug/slo /debug/timeline on http://{}  \
         ({requests} requests, {submitters} submitters, batch<={batch}, {shards} shard(s))",
        server.local_addr()
    );

    let workers: Vec<_> = (0..submitters)
        .map(|w| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut answered: Vec<ServeResponse> = Vec::new();
                for i in (w..requests).step_by(submitters) {
                    match service.submit(request(i)) {
                        Ok(ticket) => {
                            let response = ticket.wait();
                            assert!(response.disposition.is_ok(), "{response}");
                            answered.push(response);
                        }
                        Err(reason) => println!("request {i} rejected: {reason}"),
                    }
                }
                answered
            })
        })
        .collect();
    let mut answered: Vec<ServeResponse> = workers
        .into_iter()
        .flat_map(|h| h.join().expect("submitter"))
        .collect();
    answered.sort_by_key(|r| r.request_id);
    println!("{}/{requests} requests completed", answered.len());

    // Per-request latency attribution: where each request's time went.
    println!(
        "\n{:>7} {:>18} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "request", "trace", "batch", "latency_ns", "queue_ns", "form_ns", "exec_ns", "respond_ns"
    );
    for r in &answered {
        if let Disposition::Completed {
            batch,
            latency_ns,
            breakdown,
            ..
        } = &r.disposition
        {
            assert_eq!(breakdown.total_ns(), *latency_ns, "phases tile the latency");
            println!(
                "{:>7} {:>18x} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
                r.request_id,
                r.trace,
                batch,
                latency_ns,
                breakdown.queue_ns,
                breakdown.form_ns,
                breakdown.exec_ns,
                breakdown.respond_ns
            );
        }
    }

    // One hopeless deadline so the expiry path shows up in the metrics
    // and burns SLO budget: 1 ns is unmeetable on the wall clock.
    let ticket = service
        .submit_with_deadline(JobSpec::Probe(ProbeMode::Draws(2)), 1)
        .expect("admitted");
    println!(
        "\ndeadline demo: request {} routed to shard {}",
        ticket.id(),
        ticket.shard()
    );
    match ticket.wait().disposition {
        Disposition::Expired { waited_ns, .. } => {
            println!("deadline demo: request expired after {waited_ns} ns");
        }
        Disposition::Completed { .. } => println!("deadline demo: raced the batcher and won"),
    }

    // SLO window summary: merged across shards.
    let per_shard_windows: Vec<_> = service
        .slos()
        .into_iter()
        .flatten()
        .map(|slo| slo.windows())
        .collect();
    let merged = merge_windows(&per_shard_windows);
    println!("\nslo windows (merged across {shards} shard(s)):");
    for w in &merged {
        println!(
            "  window {}: good={} breached={} breach={:.3}",
            w.index,
            w.good,
            w.breached,
            w.breach_fraction()
        );
    }
    assert!(
        !merged.is_empty(),
        "completed requests must fill slo windows"
    );

    // The debug endpoints serve the same state over HTTP.
    let debug_requests = server
        .scrape("/debug/requests")
        .expect("self-scrape /debug/requests");
    println!(
        "\n--- /debug/requests (first lines of {}) ---",
        debug_requests.lines().count()
    );
    for line in debug_requests.lines().take(4) {
        println!("{line}");
    }
    let debug_slo = server.scrape("/debug/slo").expect("self-scrape /debug/slo");
    println!("\n--- /debug/slo ---\n{debug_slo}");
    assert!(
        debug_slo.contains("merged:"),
        "slo route serves the merged view"
    );

    // The per-window timeline: per-shard series followed by the merged
    // view, one fixed-field NDJSON record per (series, window).
    let debug_timeline = server
        .scrape("/debug/timeline")
        .expect("self-scrape /debug/timeline");
    println!(
        "\n--- /debug/timeline (first lines of {}) ---",
        debug_timeline.lines().count()
    );
    for line in debug_timeline.lines().take(6) {
        println!("{line}");
    }
    assert!(
        debug_timeline.contains("\"shard\":\"merged\"")
            && debug_timeline.contains("\"series\":\"serve.completed\""),
        "timeline route serves merged serve series"
    );

    // Flight-recorder verdicts: deterministic head samples plus every
    // SLO breach or errored trace, bounded per shard.
    for (s, flight) in flights.iter().enumerate() {
        let (decided, kept, discarded, evicted) = flight.stats();
        println!(
            "shard {s} flight recorder: {decided} decided, {kept} kept, \
             {discarded} discarded, {evicted} evicted"
        );
    }

    let health = server.scrape("/healthz").expect("self-scrape /healthz");
    println!("--- /healthz ---\n{health}");
    assert!(
        health.starts_with("{\"status\":\"ok\"")
            && health.contains(&format!("\"shards\":{shards}")),
        "health endpoint answers with the readiness body: {health}"
    );

    // Flip the draining flag before shutdown so scrapers see it: the
    // route answers 503 with the draining body, so inspect the raw
    // response instead of the 200-only `scrape`.
    draining.store(true, Ordering::SeqCst);
    let (head, health) = server
        .scrape_response("/healthz")
        .expect("self-scrape /healthz while draining");
    assert!(
        head.contains(" 503 ") && health.starts_with("{\"status\":\"draining\""),
        "draining flag reaches /healthz as a 503: {head} {health}"
    );

    let per_shard = Arc::try_unwrap(service)
        .expect("submitters have exited")
        .shutdown();
    for (s, stats) in per_shard.iter().enumerate() {
        println!("shard {s}: {}", stats.render());
    }

    if telemetry {
        // shard 0's stream is self-contained (its own seq sequence), so
        // obsctl trace/slo can gate on it without cross-shard stitching
        let mut ndjson = rings[0].to_ndjson();
        ndjson.push_str(&shard0_metrics.to_ndjson());
        let path = "target/serve_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write serve telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            rings[0].dropped()
        );

        // The timeline artifact is the scraped route body verbatim, so
        // `obsctl timeline` / `obsctl anomaly` gate exactly what a live
        // scraper would have seen.
        let timeline_path = "target/serve_timeline.ndjson";
        std::fs::write(timeline_path, &debug_timeline).expect("write serve timeline artifact");
        println!(
            "telemetry: {} timeline records -> {timeline_path}",
            debug_timeline.lines().count()
        );
    }

    let exposition = server.scrape("/metrics").expect("self-scrape /metrics");
    let serve_lines: Vec<&str> = exposition
        .lines()
        .filter(|l| l.starts_with("serve_") || l.starts_with("slo_"))
        .collect();
    println!("\n--- /metrics (serve_* and slo_* series, per shard) ---");
    for line in serve_lines {
        println!("{line}");
    }

    server.shutdown();
    println!("server drained and shut down");
}
