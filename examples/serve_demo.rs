//! Serving-layer demo: concurrent submitters push assay requests through
//! the sharded batching serve layer while a live Prometheus exposition
//! endpoint serves the **merged** per-shard metrics view (queue depth,
//! batch sizes, request latencies, admitted/rejected/expired counters,
//! every series labelled `shard="<i>"`).
//!
//! Run with:
//! `cargo run --release --example serve_demo [requests] [--submitters N] [--batch N] [--shards N] [--addr HOST:PORT]`
//!
//! * `requests` — total requests to push (default 48),
//! * `--submitters N` — concurrent submitter threads (default 4),
//! * `--batch N` — batch size threshold per shard (default 8),
//! * `--shards N` — independent farm shards behind deterministic
//!   request routing (default 1),
//! * `--addr HOST:PORT` — where to bind `/metrics` + `/healthz`
//!   (default `127.0.0.1:0`, an ephemeral port printed at startup).
//!
//! The demo deliberately includes one hopeless deadline (to show an
//! expiry), then drains gracefully and self-scrapes `/metrics`.

use std::sync::Arc;

use canti::farm::{FarmObserver, JobSpec, ProbeMode, Receptor};
use canti::obs::{ExpositionServer, Metrics};
use canti::serve::{Disposition, ServeConfig, ShardedConfig, ShardedService};
use canti::units::{Molar, Seconds};

fn usage() -> ! {
    eprintln!(
        "usage: serve_demo [requests] [--submitters N] [--batch N] [--shards N] [--addr HOST:PORT]\n\
         pushes concurrent assay requests through the sharded batching serve layer"
    );
    std::process::exit(2);
}

fn request(i: usize) -> JobSpec {
    JobSpec::StaticDoseResponse {
        receptor: Receptor::AntiIgg,
        concentration: Molar::from_nanomolar(0.5 * 10f64.powf(3.0 * (i % 16) as f64 / 15.0)),
        baseline: Seconds::new(30.0),
        association: Seconds::new(120.0),
        wash: Seconds::new(60.0),
        dt: Seconds::new(1.0),
        averaging: 32,
    }
}

fn main() {
    let mut requests = 48usize;
    let mut submitters = 4usize;
    let mut batch = 8usize;
    let mut shards = 1usize;
    let mut addr = "127.0.0.1:0".to_owned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--submitters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => submitters = n,
                _ => usage(),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => usage(),
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => shards = n,
                _ => usage(),
            },
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            n => match n.parse() {
                Ok(v) if v > 0 => requests = v,
                _ => usage(),
            },
        }
    }

    // Wall-clock observers (one per shard): this is a service, latencies
    // should be real. Each shard records into its own registry; the
    // exposition endpoint merges them under per-shard labels.
    let mut observers = Vec::with_capacity(shards);
    let mut rings = Vec::with_capacity(shards);
    let mut sources: Vec<(String, Arc<Metrics>)> = Vec::with_capacity(shards);
    for s in 0..shards {
        let (observer, ring) = FarmObserver::profiling(1 << 14);
        sources.push((s.to_string(), Arc::clone(observer.metrics())));
        observers.push(observer);
        rings.push(ring);
    }
    let server = ExpositionServer::bind_sharded(&addr, sources).expect("bind exposition server");
    println!(
        "serving /metrics and /healthz on http://{}  ({requests} requests, \
         {submitters} submitters, batch<={batch}, {shards} shard(s))",
        server.local_addr()
    );

    let service = Arc::new(ShardedService::start_observed(
        ShardedConfig {
            shards,
            base: ServeConfig {
                max_batch: batch,
                linger_ns: 500_000, // 0.5 ms
                threads: 0,
                ..ServeConfig::default()
            },
        },
        observers,
    ));

    let workers: Vec<_> = (0..submitters)
        .map(|w| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                for i in (w..requests).step_by(submitters) {
                    match service.submit(request(i)) {
                        Ok(ticket) => {
                            let response = ticket.wait();
                            assert!(response.disposition.is_ok(), "{response}");
                            ok += 1;
                        }
                        Err(reason) => println!("request {i} rejected: {reason}"),
                    }
                }
                ok
            })
        })
        .collect();
    let ok: usize = workers
        .into_iter()
        .map(|h| h.join().expect("submitter"))
        .sum();
    println!("{ok}/{requests} requests completed");

    // One hopeless deadline so the expiry path shows up in the metrics:
    // 1 ns is unmeetable on the wall clock, the batcher expires it.
    let ticket = service
        .submit_with_deadline(JobSpec::Probe(ProbeMode::Draws(2)), 1)
        .expect("admitted");
    println!(
        "deadline demo: request {} routed to shard {}",
        ticket.id(),
        ticket.shard()
    );
    match ticket.wait().disposition {
        Disposition::Expired { waited_ns, .. } => {
            println!("deadline demo: request expired after {waited_ns} ns");
        }
        Disposition::Completed { .. } => println!("deadline demo: raced the batcher and won"),
    }

    let per_shard = Arc::try_unwrap(service)
        .expect("submitters have exited")
        .shutdown();
    for (s, stats) in per_shard.iter().enumerate() {
        println!("shard {s}: {}", stats.render());
    }

    let health = server.scrape("/healthz").expect("self-scrape /healthz");
    assert_eq!(health, "ok\n", "health endpoint answers");
    let exposition = server.scrape("/metrics").expect("self-scrape /metrics");
    let serve_lines: Vec<&str> = exposition
        .lines()
        .filter(|l| l.starts_with("serve_"))
        .collect();
    println!("\n--- /metrics (serve_* series, per shard) ---");
    for line in serve_lines {
        println!("{line}");
    }

    server.shutdown();
    println!("server drained and shut down");
}
