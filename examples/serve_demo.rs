//! Serving-layer demo: concurrent submitters push assay requests through
//! the sharded batching serve layer while a live Prometheus exposition
//! endpoint serves the **merged** per-shard metrics view (queue depth,
//! batch sizes, request latencies, admitted/rejected/expired counters,
//! every series labelled `shard="<i>"`) plus the observability debug
//! routes: a JSON `/healthz` readiness body, the per-request
//! `/debug/requests` log (trace id + latency breakdown), the
//! `/debug/slo` window view, and the per-window `/debug/timeline`
//! NDJSON series. Each shard's trace stream passes through a
//! [`FlightRecorder`] (head-sampled + tail-retained request traces)
//! before landing in the profiling ring.
//!
//! Run with:
//! `cargo run --release --example serve_demo [requests] [--submitters N] [--batch N] [--shards N] [--chaos-serve SEED] [--telemetry] [--addr HOST:PORT]`
//!
//! * `requests` — total requests to push (default 48),
//! * `--submitters N` — concurrent submitter threads (default 4),
//! * `--batch N` — batch size threshold per shard (default 8),
//! * `--shards N` — independent farm shards behind deterministic
//!   request routing (default 1),
//! * `--chaos-serve SEED` — self-healing drill: arm a seeded
//!   [`ServeFaultPlan`] that kills one shard on its first batch, then
//!   prove the failure answered every ticket terminally (watchdogged —
//!   a hung waiter fails the run), traffic failed over to the
//!   survivors, the supervisor restarted the dead shard, and the
//!   revived shard served again. Forces ≥ 2 shards,
//! * `--cache` — result-cache drill: run a repeat-heavy workload through
//!   a service with the content-addressed result cache on, prove that
//!   concurrent identical requests coalesce onto one in-flight leader,
//!   that repeats are answered from the cache, and that every answer is
//!   bit-identical; under `--telemetry` writes shard 0's stream to
//!   `target/serve_cache_telemetry.ndjson` for the CI cache gate,
//! * `--telemetry` — write shard 0's full trace stream (request spans,
//!   serve_batch/batch/job spans, metrics) to
//!   `target/serve_telemetry.ndjson` for `obsctl trace` / `obsctl slo`
//!   (`target/serve_chaos_telemetry.ndjson` under `--chaos-serve`), and
//!   — outside chaos mode — the scraped `/debug/timeline` body to
//!   `target/serve_timeline.ndjson` for `obsctl timeline` / `anomaly`,
//! * `--addr HOST:PORT` — where to bind the endpoint
//!   (default `127.0.0.1:0`, an ephemeral port printed at startup).
//!
//! The demo deliberately includes one hopeless deadline (to show an
//! expiry burning SLO budget), prints the per-request latency breakdown
//! table and the SLO window summary, then drains gracefully and
//! self-scrapes every route.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use canti::farm::{FarmObserver, JobSpec, ProbeMode, Receptor};
use canti::obs::{
    merge_windows, Collector, DebugState, ExpositionServer, FlightRecorder, Metrics, ObsClock,
    Readiness, RingCollector, SampleConfig, Tracer, WallClock,
};
use canti::serve::{
    CacheConfig, Disposition, RejectReason, ServeConfig, ServeFaultPlan, ServeResponse,
    ShardTicket, ShardedConfig, ShardedService, SupervisorConfig,
};
use canti::units::{Molar, Seconds};

fn usage() -> ! {
    eprintln!(
        "usage: serve_demo [requests] [--submitters N] [--batch N] [--shards N] [--chaos-serve SEED] [--cache] [--telemetry] [--addr HOST:PORT]\n\
         pushes concurrent assay requests through the sharded batching serve layer"
    );
    std::process::exit(2);
}

fn request(i: usize) -> JobSpec {
    JobSpec::StaticDoseResponse {
        receptor: Receptor::AntiIgg,
        concentration: Molar::from_nanomolar(0.5 * 10f64.powf(3.0 * (i % 16) as f64 / 15.0)),
        baseline: Seconds::new(30.0),
        association: Seconds::new(120.0),
        wash: Seconds::new(60.0),
        dt: Seconds::new(1.0),
        averaging: 32,
    }
}

/// One ring + flight recorder + wall-clock observer per shard, with the
/// per-shard metrics sources for the merged exposition view.
#[allow(clippy::type_complexity)]
fn build_observers(
    shards: usize,
) -> (
    Vec<FarmObserver>,
    Vec<Arc<RingCollector>>,
    Vec<Arc<FlightRecorder>>,
    Vec<(String, Arc<Metrics>)>,
) {
    let mut observers = Vec::with_capacity(shards);
    let mut rings = Vec::with_capacity(shards);
    let mut flights = Vec::with_capacity(shards);
    let mut sources: Vec<(String, Arc<Metrics>)> = Vec::with_capacity(shards);
    for s in 0..shards {
        let ring = Arc::new(RingCollector::new(1 << 15));
        let flight = Arc::new(FlightRecorder::new(
            SampleConfig::default(),
            Some(Arc::clone(&ring) as Arc<dyn Collector>),
        ));
        let clock: Arc<dyn ObsClock> = Arc::new(WallClock::new());
        let tracer = Tracer::new(
            Arc::clone(&flight) as Arc<dyn Collector>,
            Arc::clone(&clock),
        );
        let observer = FarmObserver::from_parts(Arc::new(Metrics::new()), tracer, clock);
        sources.push((s.to_string(), Arc::clone(observer.metrics())));
        observers.push(observer);
        rings.push(ring);
        flights.push(flight);
    }
    (observers, rings, flights, sources)
}

/// Waits every ticket on a helper thread under a hard timeout: in a
/// chaos drill, a hung waiter is exactly the bug the self-healing layer
/// exists to prevent, so a hang fails the run instead of wedging it.
fn wait_all_watchdog(tickets: Vec<ShardTicket>, label: &str) -> Vec<ServeResponse> {
    let (tx, rx) = std::sync::mpsc::channel();
    let waiter = std::thread::spawn(move || {
        let responses: Vec<ServeResponse> = tickets.into_iter().map(ShardTicket::wait).collect();
        let _ = tx.send(responses);
    });
    let responses = rx
        .recv_timeout(Duration::from_secs(60))
        .unwrap_or_else(|_| {
            panic!("{label}: a ticket hung — a waiter never got a terminal answer")
        });
    waiter.join().expect("watchdog waiter thread");
    responses
}

/// The `--chaos-serve` drill: kill one shard under load, prove every
/// ticket still resolves, traffic fails over, the supervisor restarts
/// the shard, and the revived shard serves again.
fn run_chaos(batch: usize, shards: usize, seed: u64, telemetry: bool) {
    let shards = shards.max(2); // failover needs somewhere to go
    let plan = ServeFaultPlan::generate(seed, shards);
    let victim = (0..shards)
        .find(|&s| !plan.for_shard(s).is_empty())
        .expect("generate schedules exactly one kill");
    println!(
        "chaos-serve: seed {seed:#x} kills shard {victim}'s first batch ({shards} shards, batch<={batch})"
    );

    let (observers, rings, _flights, sources) = build_observers(shards);
    let shard0_metrics = Arc::clone(&sources[0].1);
    let service = Arc::new(ShardedService::start_chaos(
        ShardedConfig {
            shards,
            base: ServeConfig {
                max_batch: batch,
                linger_ns: 500_000, // 0.5 ms
                threads: 0,
                ..ServeConfig::default()
            },
        },
        observers,
        &plan,
        SupervisorConfig {
            // long enough that wave 1's remaining completions and the
            // whole failover wave land while the victim is down, short
            // enough to watch it come back
            backoff_base_ns: 1_000_000_000, // 1 s
            backoff_max_shift: 2,
            probation_batches: 1,
        },
    ));

    // Wave 1: flood every shard; the victim forms its first batch and
    // dies under it. Every ticket must still resolve terminally.
    let wave1: Vec<ShardTicket> = (0..2 * shards * batch)
        .filter_map(|i| service.submit(request(i)).ok())
        .collect();
    let admitted1 = wave1.len();
    let responses = wait_all_watchdog(wave1, "chaos-serve wave 1");
    let failed1 = responses
        .iter()
        .filter(|r| matches!(r.disposition, Disposition::Failed { .. }))
        .count();
    println!(
        "chaos-serve wave 1: {admitted1} admitted, {} completed, {failed1} failed terminally",
        responses.len() - failed1
    );
    assert!(
        failed1 > 0,
        "the kill must fail at least the victim's first batch"
    );

    // Wave 2: the victim is down for the whole backoff; keep submitting
    // until the failover rule reroutes at least one victim-primary
    // request onto a survivor.
    let mut wave2 = Vec::new();
    for i in 0..64 * shards {
        if service.failovers() > 0 {
            break;
        }
        match service.submit(request(i)) {
            Ok(t) => wave2.push(t),
            Err(RejectReason::ShardFailed) => {} // raced the failure
            Err(reason) => panic!("chaos-serve wave 2: unexpected rejection: {reason}"),
        }
    }
    assert!(
        service.failovers() > 0,
        "no failover landed while shard {victim} was down"
    );
    let responses = wait_all_watchdog(wave2, "chaos-serve wave 2");
    assert!(
        responses
            .iter()
            .all(|r| !matches!(r.disposition, Disposition::Expired { .. })),
        "failover wave must answer by completion or terminal failure"
    );
    println!(
        "chaos-serve wave 2: {} answered with shard {victim} down, {} failovers",
        responses.len(),
        service.failovers()
    );

    // Recovery: the wall-clock supervisor revives the victim after its
    // backoff; wait for the health cell to leave Down.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !service.healths()[victim].is_live() {
        assert!(
            Instant::now() < deadline,
            "shard {victim} never restarted: {:?}",
            service.healths()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "chaos-serve: shard {victim} restarted ({} restart(s)), healths now {:?}",
        service.restarts(),
        service
            .healths()
            .iter()
            .map(|h| h.label())
            .collect::<Vec<_>>()
    );

    // Wave 3: re-admission — the revived shard takes its routed share
    // and everything completes (the kill event already fired).
    let wave3: Vec<ShardTicket> = (0..2 * shards * batch)
        .map(|i| service.submit(request(i)).expect("revived service admits"))
        .collect();
    let responses = wait_all_watchdog(wave3, "chaos-serve wave 3");
    assert!(
        responses.iter().all(|r| r.disposition.is_ok()),
        "post-restart requests must all complete"
    );
    println!(
        "chaos-serve wave 3: {} completed after restart",
        responses.len()
    );

    let stats = service.stats();
    assert!(stats.failed >= failed1 as u64);
    assert!(service.restarts() >= 1);
    println!(
        "chaos-serve: {} failovers, {} restarts | {}",
        service.failovers(),
        service.restarts(),
        stats.render()
    );

    if telemetry {
        // shard 0 always survives generate()'s kill (the victim is never
        // shard 0), so its stream is gap-free and carries the failover
        // events and counters the CI gate reads
        let mut ndjson = rings[0].to_ndjson();
        ndjson.push_str(&shard0_metrics.to_ndjson());
        let path = "target/serve_chaos_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write chaos telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            rings[0].dropped()
        );
    }

    let per_shard = Arc::try_unwrap(service)
        .expect("all waiters joined")
        .shutdown();
    for (s, stats) in per_shard.iter().enumerate() {
        println!("shard {s}: {}", stats.render());
    }
    println!("chaos-serve: every ticket answered terminally; self-healing drill passed");
}

/// The `--cache` drill: a repeat-heavy workload through a cached sharded
/// service, proving (a) concurrent identical requests coalesce onto one
/// in-flight leader, (b) repeats of an already-served spec are answered
/// from the content-addressed result cache, and (c) every answer —
/// computed, coalesced or cached — carries bit-identical payloads.
fn run_cache(shards: usize, telemetry: bool) {
    let (observers, rings, _flights, sources) = build_observers(shards);
    let shard0_metrics = Arc::clone(&sources[0].1);
    let service = Arc::new(ShardedService::start_observed(
        ShardedConfig {
            shards,
            base: ServeConfig {
                max_batch: 16,
                // long linger: the coalescing burst below must ride one
                // queued leader, so no batch may fire mid-burst
                linger_ns: 20_000_000, // 20 ms
                threads: 0,
                cache: Some(CacheConfig::default()),
                ..ServeConfig::default()
            },
        },
        observers,
    ));

    // /healthz with live result-cache counters, summed across shards.
    let cache_source = Arc::downgrade(&service);
    let readiness = Readiness {
        shards,
        pool_threads: service.pool_threads().first().copied().unwrap_or(0),
        cache: Some(Arc::new(move || {
            cache_source
                .upgrade()
                .and_then(|s| s.cache_stats())
                .map(|c| [c.hits, c.misses, c.insertions, c.evictions, c.entries])
                .unwrap_or_default()
        })),
        ..Readiness::default()
    };
    let debug = DebugState {
        requests: service
            .request_logs()
            .into_iter()
            .enumerate()
            .filter_map(|(s, log)| log.map(|log| (s.to_string(), log)))
            .collect(),
        readiness: Some(readiness),
        ..DebugState::default()
    };
    let server =
        ExpositionServer::bind_sharded_debug("127.0.0.1:0", sources, debug).expect("bind server");
    println!(
        "cache drill: {shards} shard(s), capacity {} per shard, http://{}",
        CacheConfig::default().capacity,
        server.local_addr()
    );

    // Phase 1 — coalescing: a burst of identical deadline-free requests.
    // Each shard's first arrival queues as the leader; every later
    // identical arrival on that shard rides it instead of occupying a
    // queue slot. The linger is far longer than the burst takes to
    // submit, so the leaders are still queued while the burst lands.
    let burst = (4 * shards).max(24);
    let tickets: Vec<ShardTicket> = (0..burst)
        .map(|_| service.submit(request(0)).expect("admitted"))
        .collect();
    let responses = wait_all_watchdog(tickets, "cache drill burst");
    let burst_bits: Vec<Vec<(&'static str, u64)>> = responses
        .iter()
        .map(|r| {
            let out = r
                .disposition
                .output()
                .unwrap_or_else(|| panic!("burst request {} must complete: {r}", r.request_id));
            out.metrics.iter().map(|&(n, v)| (n, v.to_bits())).collect()
        })
        .collect();
    assert!(
        burst_bits.windows(2).all(|w| w[0] == w[1]),
        "every coalesced answer must be bit-identical to its leader's"
    );
    let after_burst = service.stats();
    println!(
        "cache drill burst: {burst} identical requests -> {} coalesced onto {} leader(s)",
        after_burst.coalesced,
        burst as u64 - after_burst.coalesced
    );
    assert!(
        after_burst.coalesced > 0,
        "a {burst}-deep identical burst over {shards} shard(s) must coalesce"
    );

    // Phase 2 — cache hits: sequential repeats of one spec. Each shard
    // misses at most once (warming its own cache); every later repeat
    // routed to a warmed shard is answered at admission, bit-identically
    // to the computed original.
    let repeats = 8 + 2 * shards;
    let mut baseline: Option<Vec<(&'static str, u64)>> = None;
    let mut hits = 0u64;
    for i in 0..repeats {
        let ticket = service.submit(request(1)).expect("admitted");
        let response = ticket.wait();
        let out = response
            .disposition
            .output()
            .unwrap_or_else(|| panic!("repeat {i} must complete: {response}"));
        let bits: Vec<(&'static str, u64)> =
            out.metrics.iter().map(|&(n, v)| (n, v.to_bits())).collect();
        match &baseline {
            None => baseline = Some(bits),
            Some(first) => assert_eq!(
                first, &bits,
                "cached response bits must equal the recomputed original"
            ),
        }
        if matches!(response.disposition, Disposition::CacheHit { .. }) {
            hits += 1;
        }
    }
    println!("cache drill repeats: {repeats} sequential repeats -> {hits} cache hits");
    assert!(
        hits > 0,
        "{repeats} sequential repeats over {shards} warmed shard(s) must hit"
    );

    let stats = service.stats();
    let cache = service.cache_stats().expect("cache is enabled");
    println!(
        "cache drill: hits={} misses={} insertions={} evictions={} entries={} | {}",
        cache.hits,
        cache.misses,
        cache.insertions,
        cache.evictions,
        cache.entries,
        stats.render()
    );
    assert!(stats.cache_hits > 0 && stats.coalesced > 0);

    // The same counters over HTTP: /healthz carries the cache object,
    // /debug/requests the per-request cache_hit / coalesced outcomes.
    let health = server.scrape("/healthz").expect("self-scrape /healthz");
    println!("--- /healthz ---\n{health}");
    assert!(
        health.contains("\"cache\":{\"hits\":"),
        "healthz must carry live cache counters: {health}"
    );
    let debug_requests = server
        .scrape("/debug/requests")
        .expect("self-scrape /debug/requests");
    assert!(
        debug_requests.contains("\"outcome\":\"cache_hit\"")
            && debug_requests.contains("\"outcome\":\"coalesced\""),
        "request log must record cache_hit and coalesced outcomes"
    );

    if telemetry {
        // shard 0's stream is self-contained (its own seq sequence) and
        // carries the cache_hit / cache_miss / coalesced events the CI
        // cache-effectiveness gate reads
        let mut ndjson = rings[0].to_ndjson();
        ndjson.push_str(&shard0_metrics.to_ndjson());
        let path = "target/serve_cache_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write cache telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            rings[0].dropped()
        );
    }

    server.shutdown();
    let per_shard = Arc::try_unwrap(service)
        .expect("all waiters joined")
        .shutdown();
    for (s, stats) in per_shard.iter().enumerate() {
        println!("shard {s}: {}", stats.render());
    }
    println!("cache drill passed: coalesced and cached answers are bit-identical");
}

fn main() {
    let mut requests = 48usize;
    let mut submitters = 4usize;
    let mut batch = 8usize;
    let mut shards = 1usize;
    let mut chaos_serve: Option<u64> = None;
    let mut cache_drill = false;
    let mut telemetry = false;
    let mut addr = "127.0.0.1:0".to_owned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--submitters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => submitters = n,
                _ => usage(),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => usage(),
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => shards = n,
                _ => usage(),
            },
            "--chaos-serve" => match it.next().and_then(|v| v.parse().ok()) {
                Some(seed) => chaos_serve = Some(seed),
                None => usage(),
            },
            "--cache" => cache_drill = true,
            "--telemetry" => telemetry = true,
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            n => match n.parse() {
                Ok(v) if v > 0 => requests = v,
                _ => usage(),
            },
        }
    }

    if let Some(seed) = chaos_serve {
        run_chaos(batch, shards, seed, telemetry);
        return;
    }
    if cache_drill {
        run_cache(shards, telemetry);
        return;
    }

    // Wall-clock observers (one per shard): this is a service, latencies
    // should be real. Each shard records into its own registry; the
    // exposition endpoint merges them under per-shard labels. The trace
    // stream routes through a flight recorder (head sampling + tail
    // retention of SLO breaches and error traces) before the ring, so
    // the full stream stays available for --telemetry while the kept
    // set stays bounded.
    let (observers, rings, flights, sources) = build_observers(shards);

    let service = Arc::new(ShardedService::start_observed(
        ShardedConfig {
            shards,
            base: ServeConfig {
                max_batch: batch,
                linger_ns: 500_000, // 0.5 ms
                threads: 0,
                ..ServeConfig::default()
            },
        },
        observers,
    ));

    // The debug routes read the live serve state: per-shard SLO trackers
    // and request logs, plus the readiness snapshot behind /healthz.
    // live per-shard health in the /healthz body; Weak so the readiness
    // closure doesn't keep the service alive past its shutdown
    let health_source = Arc::downgrade(&service);
    let readiness = Readiness {
        shards,
        pool_threads: service.pool_threads().first().copied().unwrap_or(0),
        shard_health: Some(Arc::new(move || {
            health_source
                .upgrade()
                .map(|s| s.healths().iter().map(|h| h.label()).collect())
                .unwrap_or_default()
        })),
        ..Readiness::default()
    };
    let draining = Arc::clone(&readiness.draining);
    let debug = DebugState {
        slos: service
            .slos()
            .into_iter()
            .enumerate()
            .filter_map(|(s, slo)| slo.map(|slo| (s.to_string(), slo)))
            .collect(),
        requests: service
            .request_logs()
            .into_iter()
            .enumerate()
            .filter_map(|(s, log)| log.map(|log| (s.to_string(), log)))
            .collect(),
        timelines: service
            .timelines()
            .into_iter()
            .enumerate()
            .filter_map(|(s, tl)| tl.map(|tl| (s.to_string(), tl)))
            .collect(),
        readiness: Some(readiness),
    };
    let shard0_metrics = Arc::clone(&sources[0].1);
    let server = ExpositionServer::bind_sharded_debug(&addr, sources, debug)
        .expect("bind exposition server");
    println!(
        "serving /metrics /healthz /debug/requests /debug/slo /debug/timeline on http://{}  \
         ({requests} requests, {submitters} submitters, batch<={batch}, {shards} shard(s))",
        server.local_addr()
    );

    let workers: Vec<_> = (0..submitters)
        .map(|w| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut answered: Vec<ServeResponse> = Vec::new();
                for i in (w..requests).step_by(submitters) {
                    match service.submit(request(i)) {
                        Ok(ticket) => {
                            let response = ticket.wait();
                            assert!(response.disposition.is_ok(), "{response}");
                            answered.push(response);
                        }
                        Err(reason) => println!("request {i} rejected: {reason}"),
                    }
                }
                answered
            })
        })
        .collect();
    let mut answered: Vec<ServeResponse> = workers
        .into_iter()
        .flat_map(|h| h.join().expect("submitter"))
        .collect();
    answered.sort_by_key(|r| r.request_id);
    println!("{}/{requests} requests completed", answered.len());

    // Per-request latency attribution: where each request's time went.
    println!(
        "\n{:>7} {:>18} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "request", "trace", "batch", "latency_ns", "queue_ns", "form_ns", "exec_ns", "respond_ns"
    );
    for r in &answered {
        if let Disposition::Completed {
            batch,
            latency_ns,
            breakdown,
            ..
        } = &r.disposition
        {
            assert_eq!(breakdown.total_ns(), *latency_ns, "phases tile the latency");
            println!(
                "{:>7} {:>18x} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
                r.request_id,
                r.trace,
                batch,
                latency_ns,
                breakdown.queue_ns,
                breakdown.form_ns,
                breakdown.exec_ns,
                breakdown.respond_ns
            );
        }
    }

    // One hopeless deadline so the expiry path shows up in the metrics
    // and burns SLO budget. A relative deadline of 0 makes the absolute
    // deadline the admission instant itself, and every batch-formation
    // path expires the queue first (`now >= deadline`), so this request
    // expires deterministically — it cannot race the batcher.
    let ticket = service
        .submit_with_deadline(JobSpec::Probe(ProbeMode::Draws(2)), 0)
        .expect("admitted");
    println!(
        "\ndeadline demo: request {} routed to shard {}",
        ticket.id(),
        ticket.shard()
    );
    match ticket.wait().disposition {
        Disposition::Expired { waited_ns, .. } => {
            println!("deadline demo: request expired after {waited_ns} ns");
        }
        other => panic!("deadline demo: a 0 ns deadline must expire, got {other:?}"),
    }

    // SLO window summary: merged across shards.
    let per_shard_windows: Vec<_> = service
        .slos()
        .into_iter()
        .flatten()
        .map(|slo| slo.windows())
        .collect();
    let merged = merge_windows(&per_shard_windows);
    println!("\nslo windows (merged across {shards} shard(s)):");
    for w in &merged {
        println!(
            "  window {}: good={} breached={} breach={:.3}",
            w.index,
            w.good,
            w.breached,
            w.breach_fraction()
        );
    }
    assert!(
        !merged.is_empty(),
        "completed requests must fill slo windows"
    );

    // The debug endpoints serve the same state over HTTP.
    let debug_requests = server
        .scrape("/debug/requests")
        .expect("self-scrape /debug/requests");
    println!(
        "\n--- /debug/requests (first lines of {}) ---",
        debug_requests.lines().count()
    );
    for line in debug_requests.lines().take(4) {
        println!("{line}");
    }
    let debug_slo = server.scrape("/debug/slo").expect("self-scrape /debug/slo");
    println!("\n--- /debug/slo ---\n{debug_slo}");
    assert!(
        debug_slo.contains("merged:"),
        "slo route serves the merged view"
    );

    // The per-window timeline: per-shard series followed by the merged
    // view, one fixed-field NDJSON record per (series, window).
    let debug_timeline = server
        .scrape("/debug/timeline")
        .expect("self-scrape /debug/timeline");
    println!(
        "\n--- /debug/timeline (first lines of {}) ---",
        debug_timeline.lines().count()
    );
    for line in debug_timeline.lines().take(6) {
        println!("{line}");
    }
    assert!(
        debug_timeline.contains("\"shard\":\"merged\"")
            && debug_timeline.contains("\"series\":\"serve.completed\""),
        "timeline route serves merged serve series"
    );

    // Flight-recorder verdicts: deterministic head samples plus every
    // SLO breach or errored trace, bounded per shard.
    for (s, flight) in flights.iter().enumerate() {
        let (decided, kept, discarded, evicted) = flight.stats();
        println!(
            "shard {s} flight recorder: {decided} decided, {kept} kept, \
             {discarded} discarded, {evicted} evicted"
        );
    }

    let health = server.scrape("/healthz").expect("self-scrape /healthz");
    println!("--- /healthz ---\n{health}");
    assert!(
        health.starts_with("{\"status\":\"ok\"")
            && health.contains(&format!("\"shards\":{shards}")),
        "health endpoint answers with the readiness body: {health}"
    );

    // Flip the draining flag before shutdown so scrapers see it: the
    // route answers 503 with the draining body, so inspect the raw
    // response instead of the 200-only `scrape`.
    draining.store(true, Ordering::SeqCst);
    let (head, health) = server
        .scrape_response("/healthz")
        .expect("self-scrape /healthz while draining");
    assert!(
        head.contains(" 503 ") && health.starts_with("{\"status\":\"draining\""),
        "draining flag reaches /healthz as a 503: {head} {health}"
    );

    let per_shard = Arc::try_unwrap(service)
        .expect("submitters have exited")
        .shutdown();
    for (s, stats) in per_shard.iter().enumerate() {
        println!("shard {s}: {}", stats.render());
    }

    if telemetry {
        // shard 0's stream is self-contained (its own seq sequence), so
        // obsctl trace/slo can gate on it without cross-shard stitching
        let mut ndjson = rings[0].to_ndjson();
        ndjson.push_str(&shard0_metrics.to_ndjson());
        let path = "target/serve_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write serve telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            rings[0].dropped()
        );

        // The timeline artifact is the scraped route body verbatim, so
        // `obsctl timeline` / `obsctl anomaly` gate exactly what a live
        // scraper would have seen.
        let timeline_path = "target/serve_timeline.ndjson";
        std::fs::write(timeline_path, &debug_timeline).expect("write serve timeline artifact");
        println!(
            "telemetry: {} timeline records -> {timeline_path}",
            debug_timeline.lines().count()
        );
    }

    let exposition = server.scrape("/metrics").expect("self-scrape /metrics");
    let serve_lines: Vec<&str> = exposition
        .lines()
        .filter(|l| l.starts_with("serve_") || l.starts_with("slo_"))
        .collect();
    println!("\n--- /metrics (serve_* and slo_* series, per shard) ---");
    for line in serve_lines {
        println!("{line}");
    }

    server.shutdown();
    println!("server drained and shut down");
}
