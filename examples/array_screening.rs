//! Multiplexed screening: the four-cantilever array as a 3-plex panel.
//!
//! Channels 0–2 carry different capture antibodies (anti-IgG, anti-PSA,
//! anti-CRP); channel 3 is the bare reference. One pass of the analog
//! multiplexer reads the whole panel; baseline subtraction and the
//! per-receptor calibration convert volts back to concentrations.
//!
//! Run with: `cargo run --release --example array_screening`

use canti::bio::kinetics::LangmuirKinetics;
use canti::bio::receptor::ReceptorLayer;
use canti::system::chip::BiosensorChip;
use canti::system::fit::FourParamLogistic;
use canti::system::static_system::{StaticCantileverSystem, StaticReadoutConfig, CHANNELS};
use canti::units::{Molar, SurfaceStress};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let panel = [
        ("IgG", ReceptorLayer::anti_igg()),
        ("PSA", ReceptorLayer::anti_psa()),
        ("CRP", ReceptorLayer::anti_igg()), // same chemistry class, for the demo
    ];
    // the "patient sample": concentrations the panel should recover
    let sample_nm = [5.0_f64, 0.8, 2.5];

    let chip = BiosensorChip::paper_static_chip()?;
    let mut sys = StaticCantileverSystem::new(chip, StaticReadoutConfig::default())?;
    sys.calibrate_offsets()?;

    // ---- calibration: per-receptor 4PL from a titration ----------------
    println!("calibrating panel...");
    let baseline = sys.scan([SurfaceStress::zero(); CHANNELS], 10_000)?;
    let mut curves = Vec::new();
    for (ch, (name, receptor)) in panel.iter().enumerate() {
        let kinetics = LangmuirKinetics::from_receptor(receptor);
        let mut points = Vec::new();
        for c_nm in [0.05, 0.2, 0.8, 3.0, 12.0, 50.0, 400.0] {
            let theta = kinetics.equilibrium_coverage(Molar::from_nanomolar(c_nm));
            let sigma = receptor.surface_stress_at(theta)?;
            let v = sys.measure(ch, sigma, 10_000)?.value() - baseline[ch].value();
            points.push((c_nm, v));
        }
        let curve = FourParamLogistic::fit(&points)?;
        println!(
            "  ch{ch} {name}: EC50 {:.2} nM, span {:.2} mV",
            curve.ec50,
            (curve.top - curve.bottom) * 1e3
        );
        curves.push(curve);
    }

    // ---- the unknown sample: one mux pass over the panel ----------------
    let mut sigmas = [SurfaceStress::zero(); CHANNELS];
    for (ch, (_, receptor)) in panel.iter().enumerate() {
        let kinetics = LangmuirKinetics::from_receptor(receptor);
        let theta = kinetics.equilibrium_coverage(Molar::from_nanomolar(sample_nm[ch]));
        sigmas[ch] = receptor.surface_stress_at(theta)?;
    }
    let readings = sys.scan(sigmas, 10_000)?;

    println!("\n  analyte   true [nM]   V [mV]   readback [nM]");
    for (ch, (name, _)) in panel.iter().enumerate() {
        let v = readings[ch].value() - baseline[ch].value();
        let readback = curves[ch].invert(v).unwrap_or(f64::NAN);
        println!(
            "  {name:<7}   {:>7.2}   {:>6.2}   {:>9.2}",
            sample_nm[ch],
            v * 1e3,
            readback
        );
    }
    let ref_v = (readings[3] - baseline[3]).value();
    println!(
        "  reference channel drift: {:+.3} mV (common-mode check)",
        ref_v * 1e3
    );
    Ok(())
}
