//! Autonomous device operation: the on-chip sequencer FSM running the
//! instrument end to end, no host in the loop.
//!
//! Power-on → self-test → self-calibration (SAR-style bisection on the
//! offset DACs) → scan passes → reports — with fault latching and recovery
//! demonstrated along the way.
//!
//! Run with: `cargo run --release --example autonomous_operation`

use canti::system::autonomous::AutonomousInstrument;
use canti::system::chip::BiosensorChip;
use canti::system::static_system::{StaticCantileverSystem, StaticReadoutConfig, CHANNELS};
use canti::units::SurfaceStress;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = BiosensorChip::paper_static_chip()?;
    let system = StaticCantileverSystem::new(chip, StaticReadoutConfig::default())?;
    let mut instrument = AutonomousInstrument::new(system)?;
    println!("state: {:?}", instrument.state());

    // protocol violation first: a scan before power-on must latch a fault
    match instrument.run_scan([SurfaceStress::zero(); CHANNELS], 2_000) {
        Err(e) => println!("scan before power-on correctly refused: {e}"),
        Ok(_) => unreachable!("sequencer must refuse"),
    }
    println!("state after violation: {:?}", instrument.state());
    instrument.reset();

    // proper power-on: self-test + offset self-calibration
    instrument.power_on()?;
    println!(
        "\npowered on and self-calibrated; state: {:?}",
        instrument.state()
    );

    // a baseline pass and a measurement pass
    let baseline = instrument.run_scan([SurfaceStress::zero(); CHANNELS], 10_000)?;
    let mut sigmas = [SurfaceStress::zero(); CHANNELS];
    sigmas[0] = SurfaceStress::from_millinewtons_per_meter(2.0);
    sigmas[2] = SurfaceStress::from_millinewtons_per_meter(4.0);
    let loaded = instrument.run_scan(sigmas, 10_000)?;

    let responsivity = instrument.system().transfer_volts_per_stress()?;
    println!("\n  ch   V_base [mV]   V_meas [mV]   stress readback [mN/m]");
    for ch in 0..CHANNELS {
        let dv = (loaded.outputs[ch] - baseline.outputs[ch]).value();
        println!(
            "  {ch}     {:+8.3}     {:+8.3}        {:+6.2}",
            baseline.outputs[ch].as_millivolts(),
            loaded.outputs[ch].as_millivolts(),
            dv / responsivity * 1e3
        );
    }
    println!(
        "\nscans completed: {}; final state: {:?}",
        instrument.scans_completed(),
        instrument.state()
    );
    Ok(())
}
