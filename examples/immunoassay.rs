//! The paper's motivating application: "blood analysis for antibodies or
//! other proteins" — an IgG immunoassay on the static cantilever array.
//!
//! Anti-IgG antibodies are immobilized on cantilevers 0–2; cantilever 3 is
//! the bare reference. A 50 nM IgG sample is injected, binding raises the
//! surface stress, the beams bend, and the chopper-stabilized readout
//! chain (Figure 4) reports the sensorgram in volts.
//!
//! Run with: `cargo run --release --example immunoassay`

use canti::bio::analyte::Analyte;
use canti::bio::assay::AssayProtocol;
use canti::bio::kinetics::LangmuirKinetics;
use canti::bio::receptor::ReceptorLayer;
use canti::system::assay::run_static_assay;
use canti::system::chip::BiosensorChip;
use canti::system::static_system::{StaticCantileverSystem, StaticReadoutConfig};
use canti::units::{Molar, Seconds, SurfaceStress};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analyte = Analyte::igg();
    let receptor = ReceptorLayer::anti_igg();
    println!("analyte:  {analyte}");
    println!("receptor: {receptor}");

    // Assemble and calibrate the chip.
    let chip = BiosensorChip::paper_static_chip()?;
    let mut system = StaticCantileverSystem::new(chip, StaticReadoutConfig::default())?;
    system.calibrate_offsets()?;
    println!(
        "responsivity: {:.2} V/(N/m); output noise: {:.0} uV rms",
        system.transfer_volts_per_stress()?,
        system
            .output_noise_rms(0, SurfaceStress::zero(), 16_000)?
            .as_microvolts()
    );

    // The assay: 1 min baseline, 10 min association at 50 nM, 5 min wash.
    let protocol = AssayProtocol::standard(
        Seconds::new(60.0),
        Molar::from_nanomolar(50.0),
        Seconds::new(600.0),
        Seconds::new(300.0),
    );
    let kinetics = LangmuirKinetics::from_receptor(&receptor);
    let sensorgram = protocol.run(&kinetics, Seconds::new(5.0), 0.0)?;
    println!(
        "\nassay: {} s total, peak coverage {:.1} %",
        protocol.total_duration().value(),
        sensorgram.peak_coverage() * 100.0
    );

    // Transduce through the real readout chain and print the sensorgram.
    let trace = run_static_assay(&mut system, &receptor, &sensorgram, 256)?;
    println!("\n   t [s]   coverage   V_out [mV]");
    for point in trace.points.iter().step_by(12) {
        println!(
            "  {:6.0}     {:5.3}     {:+8.3}",
            point.time.value(),
            point.coverage,
            point.output * 1e3
        );
    }
    println!(
        "\npeak signal: {:+.2} mV ({} points)",
        trace.peak_signal() * 1e3,
        trace.points.len()
    );
    Ok(())
}
