//! Sensor-farm screening campaign: a mixed batch of dose-response points,
//! Monte-Carlo process-variation trials and cross-reactivity panels, run
//! in parallel on the deterministic farm engine.
//!
//! Run with: `cargo run --release --example sensor_farm [jobs] [--telemetry] [--serve]`
//! (`jobs` defaults to 48; the CI smoke target uses 16).
//!
//! `--telemetry` attaches a wall-clock [`FarmObserver`]: the run prints
//! per-stage latency histograms, cache counters and per-worker
//! utilization, and writes the full NDJSON dump (stage records, metrics,
//! trace events) to `target/farm_telemetry.ndjson`. Telemetry is strictly
//! additive — the report stays bit-identical to the untelemetered run,
//! which the determinism check at the end re-verifies.
//!
//! `--serve` (implies `--telemetry`) additionally binds a live
//! `/metrics` + `/healthz` exposition server on an ephemeral loopback
//! port for the duration of the run, self-scrapes it after the batch,
//! prints the first Prometheus text lines and shuts the server down.
//! For a long-lived endpoint use `examples/farm_service.rs` instead.
//!
//! `--chaos <seed>` switches to a fault-injection campaign instead: a
//! batch of chaos scans (full autonomous instruments under seeded fault
//! plans, resilient recovery) plus flaky probes, run under the
//! [`FarmSupervisor`] with retries and a circuit breaker. The run prints
//! the degradation summary, with `--telemetry` writes
//! `target/chaos_telemetry.ndjson`, and re-verifies that the supervised
//! report is bit-identical to a single-threaded oracle.

use std::time::Instant;

use canti::farm::{
    chaos_scan_batch, cross_reactivity_panel, dose_response_sweep, process_variation_batch, Farm,
    FarmConfig, FarmObserver, FarmSupervisor, JobSpec, ProbeMode, SupervisorConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let serve_on = args.iter().any(|a| a == "--serve");
    let telemetry_on = serve_on || args.iter().any(|a| a == "--telemetry");
    let chaos_at = args.iter().position(|a| a == "--chaos");
    if let Some(at) = chaos_at {
        let seed: u64 = args
            .get(at + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC405);
        run_chaos(seed, telemetry_on);
        return;
    }
    let total: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .filter(|&n| n >= 3)
        .unwrap_or(48);

    // one third each: dose sweep, process MC, cross-reactivity panel
    let per_kind = total / 3;
    let concentrations: Vec<f64> = (0..per_kind)
        .map(|i| 0.5 * 10f64.powf(3.0 * i as f64 / per_kind.max(2) as f64))
        .collect();
    let interferents: Vec<f64> = (0..total - 2 * per_kind).map(|i| i as f64 * 25.0).collect();

    let mut jobs: Vec<JobSpec> = dose_response_sweep(&concentrations);
    jobs.extend(process_variation_batch(per_kind, 0.04));
    jobs.extend(cross_reactivity_panel(10.0, &interferents));

    let observer = telemetry_on.then(|| FarmObserver::profiling(8192));
    let server = observer.as_ref().filter(|_| serve_on).map(|(obs, _)| {
        let server = obs.serve("127.0.0.1:0").expect("bind exposition server");
        println!("serving /metrics on http://{}", server.local_addr());
        server
    });
    let mut farm = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 0, // machine parallelism
    });
    if let Some((obs, _)) = &observer {
        farm = farm.with_observer(obs.clone());
    }
    println!(
        "running {} jobs on {} worker threads...",
        jobs.len(),
        farm.threads()
    );
    let start = Instant::now();
    let report = farm.run(&jobs);
    println!("done in {:.2?}\n{}", start.elapsed(), report.render());

    let stats = farm.cache_stats();
    println!(
        "precompute cache: {} hits / {} misses",
        stats.hits, stats.misses
    );

    if let Some((observer, ring)) = observer {
        let telemetry = report
            .telemetry
            .as_ref()
            .expect("observed run carries telemetry");
        println!("\n{}", telemetry.render());
        print!("{}", observer.metrics().summary());

        // a stage with zero samples means the instrumentation came unwired
        for (name, snapshot) in telemetry.stages() {
            if snapshot.count == 0 {
                eprintln!("stage histogram '{name}' has zero samples");
                std::process::exit(1);
            }
        }

        let mut ndjson = telemetry.to_ndjson();
        ndjson.push_str(&observer.metrics().to_ndjson());
        ndjson.push_str(&ring.to_ndjson());
        let path = "target/farm_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            ring.dropped()
        );
    }

    if let Some(server) = server {
        assert_eq!(
            server.scrape("/healthz").expect("self-scrape /healthz"),
            "{\"status\":\"ok\",\"shards\":1,\"pool_threads\":0,\"draining\":false}\n"
        );
        let exposition = server.scrape("/metrics").expect("self-scrape /metrics");
        assert!(
            exposition.contains("farm_jobs_ok_total"),
            "live scrape must expose farm counters"
        );
        let preview: Vec<&str> = exposition.lines().take(12).collect();
        println!("\n--- /metrics (first lines) ---\n{}", preview.join("\n"));
        server.shutdown();
        println!("exposition server shut down cleanly");
    }

    // determinism spot-check: a single-threaded rerun must be identical
    let oracle = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 1,
    })
    .run(&jobs);
    assert_eq!(
        report, oracle,
        "parallel run must match the 1-thread oracle"
    );
    println!("determinism check: parallel report bit-identical to 1-thread oracle");
}

/// The `--chaos <seed>` campaign: supervised fault injection across the
/// farm, with a degradation summary and a determinism re-check.
fn run_chaos(seed: u64, telemetry_on: bool) {
    let mut jobs = chaos_scan_batch(6, seed, 4);
    jobs.extend((0..10).map(|_| JobSpec::Probe(ProbeMode::Flaky { p_fail: 0.5 })));

    let observer = telemetry_on.then(|| FarmObserver::profiling(16_384));
    let batch_seed = seed ^ 0xC4A0_5EED;
    let mut farm = Farm::new(FarmConfig {
        batch_seed,
        threads: 0, // machine parallelism
    });
    if let Some((obs, _)) = &observer {
        farm = farm.with_observer(obs.clone());
    }
    let config = SupervisorConfig {
        max_attempts: 3,
        ..SupervisorConfig::default()
    };
    let mut supervisor = FarmSupervisor::new(farm, config);
    println!(
        "chaos campaign: {} jobs (6 chaos scans + 10 flaky probes), fault seed {seed:#x}, {} workers...",
        jobs.len(),
        supervisor.farm().threads()
    );
    let start = Instant::now();
    let run = supervisor.run(&jobs);
    println!("done in {:.2?}\n{}", start.elapsed(), run.render());

    let sum = |name: &str| run.report.metric_values(name).iter().sum::<f64>();
    println!(
        "degradation across chaos scans: {:.0} channels ok, {:.0} retried ({:.0} retry attempts), {:.0} quarantined",
        sum("channels_ok"),
        sum("channels_retried"),
        sum("retry_attempts"),
        sum("channels_quarantined"),
    );
    for (kind, state) in supervisor.breaker_states() {
        println!("breaker[{kind}]: {state:?}");
    }

    if let Some((observer, ring)) = observer {
        let telemetry = run
            .report
            .telemetry
            .as_ref()
            .expect("observed run carries telemetry");
        println!("\n{}", telemetry.render());
        print!("{}", observer.metrics().summary());
        let mut ndjson = telemetry.to_ndjson();
        ndjson.push_str(&observer.metrics().to_ndjson());
        ndjson.push_str(&ring.to_ndjson());
        let path = "target/chaos_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write chaos telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            ring.dropped()
        );
    }

    // determinism spot-check: a fresh single-threaded supervisor must
    // reproduce outcomes, attempts and breaker decisions exactly
    let mut oracle_supervisor = FarmSupervisor::new(
        Farm::new(FarmConfig {
            batch_seed,
            threads: 1,
        }),
        config,
    );
    let oracle = oracle_supervisor.run(&jobs);
    assert_eq!(
        run, oracle,
        "supervised chaos run must match the 1-thread oracle"
    );
    println!("determinism check: supervised chaos report bit-identical to 1-thread oracle");
}
