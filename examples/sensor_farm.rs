//! Sensor-farm screening campaign: a mixed batch of dose-response points,
//! Monte-Carlo process-variation trials and cross-reactivity panels, run
//! in parallel on the deterministic farm engine.
//!
//! Run with: `cargo run --release --example sensor_farm [jobs] [--telemetry] [--serve]`
//! (`jobs` defaults to 48; the CI smoke target uses 16).
//!
//! `--telemetry` attaches a wall-clock [`FarmObserver`]: the run prints
//! per-stage latency histograms, cache counters and per-worker
//! utilization, and writes the full NDJSON dump (stage records, metrics,
//! trace events) to `target/farm_telemetry.ndjson`. Telemetry is strictly
//! additive — the report stays bit-identical to the untelemetered run,
//! which the determinism check at the end re-verifies.
//!
//! `--serve` (implies `--telemetry`) additionally binds a live
//! `/metrics` + `/healthz` exposition server on an ephemeral loopback
//! port for the duration of the run, self-scrapes it after the batch,
//! prints the first Prometheus text lines and shuts the server down.
//! For a long-lived endpoint use `examples/farm_service.rs` instead.

use std::time::Instant;

use canti::farm::{
    cross_reactivity_panel, dose_response_sweep, process_variation_batch, Farm, FarmConfig,
    FarmObserver, JobSpec,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let serve_on = args.iter().any(|a| a == "--serve");
    let telemetry_on = serve_on || args.iter().any(|a| a == "--telemetry");
    let total: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .filter(|&n| n >= 3)
        .unwrap_or(48);

    // one third each: dose sweep, process MC, cross-reactivity panel
    let per_kind = total / 3;
    let concentrations: Vec<f64> = (0..per_kind)
        .map(|i| 0.5 * 10f64.powf(3.0 * i as f64 / per_kind.max(2) as f64))
        .collect();
    let interferents: Vec<f64> = (0..total - 2 * per_kind).map(|i| i as f64 * 25.0).collect();

    let mut jobs: Vec<JobSpec> = dose_response_sweep(&concentrations);
    jobs.extend(process_variation_batch(per_kind, 0.04));
    jobs.extend(cross_reactivity_panel(10.0, &interferents));

    let observer = telemetry_on.then(|| FarmObserver::profiling(8192));
    let server = observer.as_ref().filter(|_| serve_on).map(|(obs, _)| {
        let server = obs.serve("127.0.0.1:0").expect("bind exposition server");
        println!("serving /metrics on http://{}", server.local_addr());
        server
    });
    let mut farm = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 0, // machine parallelism
    });
    if let Some((obs, _)) = &observer {
        farm = farm.with_observer(obs.clone());
    }
    println!(
        "running {} jobs on {} worker threads...",
        jobs.len(),
        farm.threads()
    );
    let start = Instant::now();
    let report = farm.run(&jobs);
    println!("done in {:.2?}\n{}", start.elapsed(), report.render());

    let stats = farm.cache_stats();
    println!(
        "precompute cache: {} hits / {} misses",
        stats.hits, stats.misses
    );

    if let Some((observer, ring)) = observer {
        let telemetry = report
            .telemetry
            .as_ref()
            .expect("observed run carries telemetry");
        println!("\n{}", telemetry.render());
        print!("{}", observer.metrics().summary());

        // a stage with zero samples means the instrumentation came unwired
        for (name, snapshot) in telemetry.stages() {
            if snapshot.count == 0 {
                eprintln!("stage histogram '{name}' has zero samples");
                std::process::exit(1);
            }
        }

        let mut ndjson = telemetry.to_ndjson();
        ndjson.push_str(&observer.metrics().to_ndjson());
        ndjson.push_str(&ring.to_ndjson());
        let path = "target/farm_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            ring.dropped()
        );
    }

    if let Some(server) = server {
        assert_eq!(
            server.scrape("/healthz").expect("self-scrape /healthz"),
            "ok\n"
        );
        let exposition = server.scrape("/metrics").expect("self-scrape /metrics");
        assert!(
            exposition.contains("farm_jobs_ok_total"),
            "live scrape must expose farm counters"
        );
        let preview: Vec<&str> = exposition.lines().take(12).collect();
        println!("\n--- /metrics (first lines) ---\n{}", preview.join("\n"));
        server.shutdown();
        println!("exposition server shut down cleanly");
    }

    // determinism spot-check: a single-threaded rerun must be identical
    let oracle = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 1,
    })
    .run(&jobs);
    assert_eq!(report, oracle, "parallel run must match the 1-thread oracle");
    println!("determinism check: parallel report bit-identical to 1-thread oracle");
}
