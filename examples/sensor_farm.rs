//! Sensor-farm screening campaign: a mixed batch of dose-response points,
//! Monte-Carlo process-variation trials and cross-reactivity panels, run
//! in parallel on the deterministic farm engine.
//!
//! Run with: `cargo run --release --example sensor_farm [jobs]`
//! (`jobs` defaults to 48; the CI smoke target uses 16).

use std::time::Instant;

use canti::farm::{
    cross_reactivity_panel, dose_response_sweep, process_variation_batch, Farm, FarmConfig, JobSpec,
};

fn main() {
    let total: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .filter(|&n| n >= 3)
        .unwrap_or(48);

    // one third each: dose sweep, process MC, cross-reactivity panel
    let per_kind = total / 3;
    let concentrations: Vec<f64> = (0..per_kind)
        .map(|i| 0.5 * 10f64.powf(3.0 * i as f64 / per_kind.max(2) as f64))
        .collect();
    let interferents: Vec<f64> = (0..total - 2 * per_kind).map(|i| i as f64 * 25.0).collect();

    let mut jobs: Vec<JobSpec> = dose_response_sweep(&concentrations);
    jobs.extend(process_variation_batch(per_kind, 0.04));
    jobs.extend(cross_reactivity_panel(10.0, &interferents));

    let farm = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 0, // machine parallelism
    });
    println!(
        "running {} jobs on {} worker threads...",
        jobs.len(),
        farm.threads()
    );
    let start = Instant::now();
    let report = farm.run(&jobs);
    println!("done in {:.2?}\n{}", start.elapsed(), report.render());

    let stats = farm.cache_stats();
    println!(
        "precompute cache: {} hits / {} misses",
        stats.hits, stats.misses
    );

    // determinism spot-check: a single-threaded rerun must be identical
    let oracle = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 1,
    })
    .run(&jobs);
    assert_eq!(report, oracle, "parallel run must match the 1-thread oracle");
    println!("determinism check: parallel report bit-identical to 1-thread oracle");
}
