//! Sensor-farm screening campaign: a mixed batch of dose-response points,
//! Monte-Carlo process-variation trials and cross-reactivity panels, run
//! in parallel on the deterministic farm engine.
//!
//! Run with: `cargo run --release --example sensor_farm [jobs] [--telemetry]`
//! (`jobs` defaults to 48; the CI smoke target uses 16).
//!
//! `--telemetry` attaches a wall-clock [`FarmObserver`]: the run prints
//! per-stage latency histograms, cache counters and per-worker
//! utilization, and writes the full NDJSON dump (stage records, metrics,
//! trace events) to `target/farm_telemetry.ndjson`. Telemetry is strictly
//! additive — the report stays bit-identical to the untelemetered run,
//! which the determinism check at the end re-verifies.

use std::time::Instant;

use canti::farm::{
    cross_reactivity_panel, dose_response_sweep, process_variation_batch, Farm, FarmConfig,
    FarmObserver, JobSpec,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_on = args.iter().any(|a| a == "--telemetry");
    let total: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .filter(|&n| n >= 3)
        .unwrap_or(48);

    // one third each: dose sweep, process MC, cross-reactivity panel
    let per_kind = total / 3;
    let concentrations: Vec<f64> = (0..per_kind)
        .map(|i| 0.5 * 10f64.powf(3.0 * i as f64 / per_kind.max(2) as f64))
        .collect();
    let interferents: Vec<f64> = (0..total - 2 * per_kind).map(|i| i as f64 * 25.0).collect();

    let mut jobs: Vec<JobSpec> = dose_response_sweep(&concentrations);
    jobs.extend(process_variation_batch(per_kind, 0.04));
    jobs.extend(cross_reactivity_panel(10.0, &interferents));

    let observer = telemetry_on.then(|| FarmObserver::profiling(8192));
    let mut farm = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 0, // machine parallelism
    });
    if let Some((obs, _)) = &observer {
        farm = farm.with_observer(obs.clone());
    }
    println!(
        "running {} jobs on {} worker threads...",
        jobs.len(),
        farm.threads()
    );
    let start = Instant::now();
    let report = farm.run(&jobs);
    println!("done in {:.2?}\n{}", start.elapsed(), report.render());

    let stats = farm.cache_stats();
    println!(
        "precompute cache: {} hits / {} misses",
        stats.hits, stats.misses
    );

    if let Some((observer, ring)) = observer {
        let telemetry = report
            .telemetry
            .as_ref()
            .expect("observed run carries telemetry");
        println!("\n{}", telemetry.render());
        print!("{}", observer.metrics().summary());

        // a stage with zero samples means the instrumentation came unwired
        for (name, snapshot) in telemetry.stages() {
            if snapshot.count == 0 {
                eprintln!("stage histogram '{name}' has zero samples");
                std::process::exit(1);
            }
        }

        let mut ndjson = telemetry.to_ndjson();
        ndjson.push_str(&observer.metrics().to_ndjson());
        ndjson.push_str(&ring.to_ndjson());
        let path = "target/farm_telemetry.ndjson";
        std::fs::write(path, &ndjson).expect("write telemetry artifact");
        println!(
            "telemetry: {} NDJSON records ({} trace events dropped) -> {path}",
            ndjson.lines().count(),
            ring.dropped()
        );
    }

    // determinism spot-check: a single-threaded rerun must be identical
    let oracle = Farm::new(FarmConfig {
        batch_seed: 0xFA12,
        threads: 1,
    })
    .run(&jobs);
    assert_eq!(report, oracle, "parallel run must match the 1-thread oracle");
    println!("determinism check: parallel report bit-identical to 1-thread oracle");
}
