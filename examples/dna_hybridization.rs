//! DNA hybridization on the resonant system: capture strands on the
//! cantilever, hybridize the complementary 20-mer, read the bound mass as
//! a resonant-frequency shift through the on-chip counter.
//!
//! Run with: `cargo run --release --example dna_hybridization`

use canti::bio::analyte::Analyte;
use canti::bio::assay::AssayProtocol;
use canti::bio::kinetics::LangmuirKinetics;
use canti::bio::receptor::ReceptorLayer;
use canti::system::assay::{run_resonant_assay, to_frequency_shift};
use canti::system::chip::{BiosensorChip, Environment};
use canti::system::resonant_system::{ResonantCantileverSystem, ResonantLoopConfig};
use canti::units::{Molar, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let probe = ReceptorLayer::dna_probe_20mer();
    let target = Analyte::ssdna_20mer();
    println!("probe:  {probe}");
    println!("target: {target}");

    let chip = BiosensorChip::paper_resonant_chip()?;
    let system =
        ResonantCantileverSystem::new(chip, Environment::air(), ResonantLoopConfig::default())?;
    let loading = system.mass_loading();
    println!(
        "\nresonator: f0 = {:.2} kHz, responsivity {:.2} Hz/pg",
        loading.resonator().resonant_frequency().as_kilohertz(),
        loading.responsivity() * 1e-15
    );

    // Hybridize 100 nM complementary strand for 20 minutes, then wash.
    let protocol = AssayProtocol::standard(
        Seconds::new(60.0),
        Molar::from_nanomolar(100.0),
        Seconds::new(1200.0),
        Seconds::new(300.0),
    );
    let kinetics = LangmuirKinetics::from_receptor(&probe);
    let sensorgram = protocol.run(&kinetics, Seconds::new(10.0), 0.0)?;

    // Counter gate of 10 s -> 0.1 Hz quantization.
    let trace = run_resonant_assay(&system, &probe, &target, &sensorgram, Seconds::new(10.0))?;
    let shifts = to_frequency_shift(&trace);
    println!("\n   t [s]   coverage   df [Hz]");
    for (i, (t, df)) in shifts.iter().enumerate().step_by(15) {
        println!(
            "  {:6.0}     {:5.3}    {:+7.2}",
            t.value(),
            trace.points[i].coverage,
            df
        );
    }

    let full_mass = probe.bound_mass(&target, system.chip().geometry().plan_area(), 1.0)?;
    println!(
        "\npeak shift {:+.2} Hz; a full monolayer would be {:.1} pg -> {:+.2} Hz",
        trace.peak_signal(),
        full_mass.as_picograms(),
        loading.frequency_shift(full_mass).value()
    );
    Ok(())
}
