//! Minimal in-workspace reimplementation of the `rand` 0.8 API surface
//! used by the canti workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually relies on: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), and [`SeedableRng`]
//! with the SplitMix64-based `seed_from_u64` construction. Generators are
//! fully deterministic per seed; no OS entropy source exists here by
//! design — every simulation in this repository must be reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of upstream `rand`, collapsed into one trait).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Lemire-style widening multiply: cheap and unbiased enough
                // for simulation workloads (bias < 2^-64 * span).
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as $wide).wrapping_add(hi as $wide) as $t
            }
        }
    )*};
}

int_sample_range!(u64 => u64, i64 => u64, u32 => u64, i32 => u64, usize => u64, u16 => u64, u8 => u64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; integers: full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it through
    /// SplitMix64 exactly like upstream `rand` 0.8 does, so seeds are
    /// well-decorrelated even for small consecutive integers.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea, Flood 2014)
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Lcg(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let k = rng.gen_range(3u64..17);
            assert!((3..17).contains(&k));
            let i = rng.gen_range(-20i64..-3);
            assert!((-20..-3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Lcg(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
