//! Composite Euler–Bernoulli beam mechanics.
//!
//! The released cantilever is a multilayer laminate. The transformed-section
//! method gives its effective neutral axis and flexural rigidity, from which
//! everything mechanical follows: spring constant, modal frequencies, mode
//! shapes and curvatures.
//!
//! Clamped-free mode shapes use the classic eigenfunctions
//! φₙ(ξ) = cosh(λₙξ) − cos(λₙξ) − σₙ(sinh(λₙξ) − sin(λₙξ)) with the first
//! six eigenvalues λₙ of `cosh λ · cos λ = −1`.

use canti_units::{Hertz, Kilograms, Meters, Pascals, SpringConstant};

use crate::geometry::CantileverGeometry;
use crate::MemsError;

/// First six eigenvalues of the clamped-free beam equation
/// `cosh λ · cos λ = −1`.
pub const CLAMPED_FREE_EIGENVALUES: [f64; 6] = [
    1.875_104_068_711_961,
    4.694_091_132_974_175,
    7.854_757_438_237_613,
    10.995_540_734_875_467,
    14.137_168_391_046_47,
    17.278_759_657_399_5,
];

/// Choice of elastic modulus for the laminate.
///
/// Biosensor cantilevers are wide plates (w ≫ t); the plate modulus
/// E/(1 − ν²) is then the physically correct stiffness and is the default
/// everywhere in this suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElasticModel {
    /// Narrow-beam model: plain Young's modulus E.
    Beam,
    /// Wide-plate model: E/(1 − ν²).
    #[default]
    Plate,
}

/// A composite cantilever reduced to its section properties.
///
/// # Examples
///
/// ```
/// use canti_mems::beam::CompositeBeam;
/// use canti_mems::geometry::CantileverGeometry;
/// use canti_mems::material::Material;
/// use canti_units::Meters;
///
/// // textbook check: k = E' w t^3 / (4 L^3) for a uniform beam
/// let g = CantileverGeometry::uniform(
///     Meters::from_micrometers(200.0),
///     Meters::from_micrometers(50.0),
///     Meters::from_micrometers(2.0),
///     Material::silicon_110(),
/// )?;
/// let beam = CompositeBeam::new(&g)?;
/// assert!(beam.spring_constant().value() > 0.0);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeBeam {
    geometry: CantileverGeometry,
    model: ElasticModel,
    /// Distance of the neutral axis from the stack bottom, m.
    neutral_axis: f64,
    /// Flexural rigidity EI of the full-width section, N·m².
    flexural_rigidity: f64,
    /// Mass per unit length, kg/m.
    mass_per_length: f64,
}

impl CompositeBeam {
    /// Reduces a geometry to section properties with the default
    /// ([`ElasticModel::Plate`]) stiffness model.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::EmptyStack`] for an empty layer stack (already
    /// prevented by [`CantileverGeometry`]'s own validation).
    pub fn new(geometry: &CantileverGeometry) -> Result<Self, MemsError> {
        Self::with_model(geometry, ElasticModel::default())
    }

    /// Reduces a geometry with an explicit elastic model.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::EmptyStack`] for an empty layer stack.
    pub fn with_model(
        geometry: &CantileverGeometry,
        model: ElasticModel,
    ) -> Result<Self, MemsError> {
        if geometry.layers().is_empty() {
            return Err(MemsError::EmptyStack);
        }
        let modulus = |m: &crate::material::Material| -> f64 {
            match model {
                ElasticModel::Beam => m.youngs_modulus().value(),
                ElasticModel::Plate => m.plate_modulus().value(),
            }
        };

        // Transformed-section neutral axis: z_n = sum(E t z) / sum(E t).
        let mut z_bottom = 0.0;
        let mut et_sum = 0.0;
        let mut etz_sum = 0.0;
        for layer in geometry.layers() {
            let t = layer.thickness.value();
            let e = modulus(&layer.material);
            let zc = z_bottom + t / 2.0;
            et_sum += e * t;
            etz_sum += e * t * zc;
            z_bottom += t;
        }
        let z_n = etz_sum / et_sum;

        // Flexural rigidity per unit width, then x width.
        let mut z = 0.0;
        let mut d_per_width = 0.0;
        for layer in geometry.layers() {
            let t = layer.thickness.value();
            let e = modulus(&layer.material);
            let zc = z + t / 2.0;
            d_per_width += e * (t.powi(3) / 12.0 + t * (zc - z_n).powi(2));
            z += t;
        }
        let ei = d_per_width * geometry.width().value();

        let mass_per_length = geometry.areal_mass().value() * geometry.width().value();

        Ok(Self {
            geometry: geometry.clone(),
            model,
            neutral_axis: z_n,
            flexural_rigidity: ei,
            mass_per_length,
        })
    }

    /// The geometry this beam was built from.
    #[must_use]
    pub fn geometry(&self) -> &CantileverGeometry {
        &self.geometry
    }

    /// The elastic model used.
    #[must_use]
    pub fn elastic_model(&self) -> ElasticModel {
        self.model
    }

    /// Neutral-axis height above the stack bottom.
    #[must_use]
    pub fn neutral_axis(&self) -> Meters {
        Meters::new(self.neutral_axis)
    }

    /// Flexural rigidity EI of the full-width section in N·m².
    #[must_use]
    pub fn flexural_rigidity(&self) -> f64 {
        self.flexural_rigidity
    }

    /// Mass per unit length in kg/m.
    #[must_use]
    pub fn mass_per_length(&self) -> f64 {
        self.mass_per_length
    }

    /// Total beam mass.
    #[must_use]
    pub fn mass(&self) -> Kilograms {
        Kilograms::new(self.mass_per_length * self.geometry.length().value())
    }

    /// Static tip spring constant k = 3EI/L³.
    #[must_use]
    pub fn spring_constant(&self) -> SpringConstant {
        let l = self.geometry.length().value();
        SpringConstant::new(3.0 * self.flexural_rigidity / l.powi(3))
    }

    /// Vacuum resonant frequency of mode `n` (1-based):
    /// fₙ = (λₙ²/2π)·√(EI/(µ·L⁴)).
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::ModeOutOfRange`] for `n` outside `1..=6`.
    pub fn mode_frequency(&self, n: usize) -> Result<Hertz, MemsError> {
        let lambda = self.eigenvalue(n)?;
        let l = self.geometry.length().value();
        let omega =
            lambda.powi(2) * (self.flexural_rigidity / (self.mass_per_length * l.powi(4))).sqrt();
        Ok(Hertz::from_angular(omega))
    }

    /// Fundamental (mode-1) vacuum frequency.
    #[must_use]
    pub fn fundamental_frequency(&self) -> Hertz {
        self.mode_frequency(1).expect("mode 1 always valid")
    }

    /// Effective lumped mass of mode `n` referred to the tip, chosen so
    /// that k/m_eff = ωₙ². For mode 1: m_eff = 3m/λ₁⁴ ≈ 0.2427·m.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::ModeOutOfRange`] for `n` outside `1..=6`.
    pub fn effective_mass(&self, n: usize) -> Result<Kilograms, MemsError> {
        let lambda = self.eigenvalue(n)?;
        Ok(Kilograms::new(3.0 * self.mass().value() / lambda.powi(4)))
    }

    /// Clamped-free eigenvalue λₙ.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError::ModeOutOfRange`] for `n` outside `1..=6`.
    pub fn eigenvalue(&self, n: usize) -> Result<f64, MemsError> {
        CLAMPED_FREE_EIGENVALUES
            .get(n.wrapping_sub(1))
            .copied()
            .ok_or(MemsError::ModeOutOfRange {
                requested: n,
                max: CLAMPED_FREE_EIGENVALUES.len(),
            })
    }

    /// Mode-`n` shape φₙ(ξ) at normalized position ξ ∈ [0, 1], normalized
    /// to φₙ(1) = 1.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for an invalid mode or position.
    pub fn mode_shape(&self, n: usize, xi: f64) -> Result<f64, MemsError> {
        crate::error::ensure_position(xi)?;
        let lambda = self.eigenvalue(n)?;
        Ok(raw_mode_shape(lambda, xi) / raw_mode_shape(lambda, 1.0))
    }

    /// Mode-`n` curvature φₙ''(ξ)/L² (per meter of tip displacement) at
    /// normalized position ξ, for tip-normalized shapes. Maximum magnitude
    /// is at the clamp (ξ = 0) — which is why the paper puts the resonant
    /// readout bridge there.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for an invalid mode or position.
    pub fn mode_curvature(&self, n: usize, xi: f64) -> Result<f64, MemsError> {
        crate::error::ensure_position(xi)?;
        let lambda = self.eigenvalue(n)?;
        let l = self.geometry.length().value();
        Ok(raw_mode_curvature(lambda, xi) / raw_mode_shape(lambda, 1.0) / l.powi(2))
    }

    /// Static deflection profile under a tip force `f`: w(ξ) = F·L³/(6EI)·(3ξ² − ξ³).
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for a position outside `[0, 1]`.
    pub fn tip_load_deflection(
        &self,
        f: canti_units::Newtons,
        xi: f64,
    ) -> Result<Meters, MemsError> {
        crate::error::ensure_position(xi)?;
        let l = self.geometry.length().value();
        let w =
            f.value() * l.powi(3) / (6.0 * self.flexural_rigidity) * (3.0 * xi * xi - xi.powi(3));
        Ok(Meters::new(w))
    }

    /// Curvature κ(ξ) = F·L·(1 − ξ)/EI under a tip force `f` — linear,
    /// maximal at the clamp.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for a position outside `[0, 1]`.
    pub fn tip_load_curvature(&self, f: canti_units::Newtons, xi: f64) -> Result<f64, MemsError> {
        crate::error::ensure_position(xi)?;
        let l = self.geometry.length().value();
        Ok(f.value() * l * (1.0 - xi) / self.flexural_rigidity)
    }

    /// Bending stress in the beam axis at height `z` above the stack
    /// bottom, inside the layer with modulus `e_layer`, for curvature
    /// `kappa` (1/m): σ = E·κ·(z − z_n).
    #[must_use]
    pub fn bending_stress_at(&self, e_layer: Pascals, z: Meters, kappa: f64) -> Pascals {
        Pascals::new(e_layer.value() * kappa * (z.value() - self.neutral_axis))
    }
}

/// Unnormalized clamped-free mode shape.
fn raw_mode_shape(lambda: f64, xi: f64) -> f64 {
    let s = (lambda.cosh() + lambda.cos()) / (lambda.sinh() + lambda.sin());
    let a = lambda * xi;
    (a.cosh() - a.cos()) - s * (a.sinh() - a.sin())
}

/// Second derivative of the unnormalized mode shape w.r.t. ξ.
fn raw_mode_curvature(lambda: f64, xi: f64) -> f64 {
    let s = (lambda.cosh() + lambda.cos()) / (lambda.sinh() + lambda.sin());
    let a = lambda * xi;
    lambda * lambda * ((a.cosh() + a.cos()) - s * (a.sinh() + a.sin()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Layer;
    use crate::material::Material;
    use canti_units::Newtons;

    fn uniform_si(l_um: f64, w_um: f64, t_um: f64) -> CompositeBeam {
        let g = CantileverGeometry::uniform(
            Meters::from_micrometers(l_um),
            Meters::from_micrometers(w_um),
            Meters::from_micrometers(t_um),
            Material::silicon_110(),
        )
        .unwrap();
        CompositeBeam::with_model(&g, ElasticModel::Beam).unwrap()
    }

    #[test]
    fn uniform_spring_constant_matches_textbook() {
        // k = E w t^3 / (4 L^3)
        let b = uniform_si(200.0, 50.0, 2.0);
        let e = Material::silicon_110().youngs_modulus().value();
        let expected = e * 50e-6 * (2e-6f64).powi(3) / (4.0 * (200e-6f64).powi(3));
        let k = b.spring_constant().value();
        assert!(
            (k - expected).abs() / expected < 1e-12,
            "k = {k}, expected {expected}"
        );
    }

    #[test]
    fn uniform_fundamental_matches_textbook() {
        // f1 = 0.16154 * (t/L^2) * sqrt(E/rho)
        let b = uniform_si(100.0, 50.0, 2.0);
        let e = 169e9f64;
        let rho = 2330.0f64;
        let expected = 0.161_537 * (2e-6 / (100e-6f64).powi(2)) * (e / rho).sqrt();
        let f1 = b.fundamental_frequency().value();
        assert!(
            (f1 - expected).abs() / expected < 1e-3,
            "f1 = {f1}, expected ~{expected}"
        );
        // order of magnitude: a few hundred kHz
        assert!(f1 > 1e5 && f1 < 1e6);
    }

    #[test]
    fn mode_frequency_ratios() {
        // f2/f1 = (lambda2/lambda1)^2 = 6.2669
        let b = uniform_si(150.0, 60.0, 3.0);
        let f1 = b.mode_frequency(1).unwrap().value();
        let f2 = b.mode_frequency(2).unwrap().value();
        let f3 = b.mode_frequency(3).unwrap().value();
        assert!((f2 / f1 - 6.2669).abs() < 1e-3);
        assert!((f3 / f1 - 17.547).abs() < 1e-2);
        assert!(b.mode_frequency(0).is_err());
        assert!(b.mode_frequency(7).is_err());
    }

    #[test]
    fn neutral_axis_centered_for_uniform() {
        let b = uniform_si(100.0, 50.0, 4.0);
        assert!((b.neutral_axis().as_micrometers() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neutral_axis_pulls_toward_stiffer_layer() {
        // Si (bottom) much stiffer than oxide (top) -> z_n below mid-plane
        let g = CantileverGeometry::new(
            Meters::from_micrometers(100.0),
            Meters::from_micrometers(50.0),
            vec![
                Layer::new(Material::silicon_110(), Meters::from_micrometers(2.0)).unwrap(),
                Layer::new(Material::silicon_dioxide(), Meters::from_micrometers(2.0)).unwrap(),
            ],
        )
        .unwrap();
        let b = CompositeBeam::new(&g).unwrap();
        assert!(b.neutral_axis().as_micrometers() < 2.0);
        assert!(b.neutral_axis().as_micrometers() > 1.0);
    }

    #[test]
    fn splitting_a_layer_changes_nothing() {
        // One 4 um Si layer == two stacked 2 um Si layers.
        let one = uniform_si(100.0, 50.0, 4.0);
        let g2 = CantileverGeometry::new(
            Meters::from_micrometers(100.0),
            Meters::from_micrometers(50.0),
            vec![
                Layer::new(Material::silicon_110(), Meters::from_micrometers(2.0)).unwrap(),
                Layer::new(Material::silicon_110(), Meters::from_micrometers(2.0)).unwrap(),
            ],
        )
        .unwrap();
        let two = CompositeBeam::with_model(&g2, ElasticModel::Beam).unwrap();
        let rel =
            (one.flexural_rigidity() - two.flexural_rigidity()).abs() / one.flexural_rigidity();
        assert!(rel < 1e-12, "EI must be invariant under layer splitting");
        assert!((one.neutral_axis().value() - two.neutral_axis().value()).abs() < 1e-18);
    }

    #[test]
    fn plate_model_is_stiffer() {
        let g = CantileverGeometry::paper_resonant().unwrap();
        let beam = CompositeBeam::with_model(&g, ElasticModel::Beam).unwrap();
        let plate = CompositeBeam::with_model(&g, ElasticModel::Plate).unwrap();
        assert!(plate.flexural_rigidity() > beam.flexural_rigidity());
        assert!(plate.fundamental_frequency().value() > beam.fundamental_frequency().value());
    }

    #[test]
    fn effective_mass_fraction() {
        let b = uniform_si(100.0, 50.0, 2.0);
        let frac = b.effective_mass(1).unwrap().value() / b.mass().value();
        // 3/lambda1^4 = 0.2427
        assert!((frac - 0.2427).abs() < 1e-3, "m_eff/m = {frac}");
        // consistency: k/m_eff == omega1^2
        let w1 = b.fundamental_frequency().angular();
        let check = b.spring_constant().value() / b.effective_mass(1).unwrap().value();
        assert!((check - w1 * w1).abs() / (w1 * w1) < 1e-12);
    }

    #[test]
    fn mode_shape_boundary_conditions() {
        let b = uniform_si(100.0, 50.0, 2.0);
        for n in 1..=6 {
            // clamped end: zero deflection
            assert!(b.mode_shape(n, 0.0).unwrap().abs() < 1e-12, "mode {n}");
            // tip-normalized
            assert!(
                (b.mode_shape(n, 1.0).unwrap().abs() - 1.0).abs() < 1e-9,
                "mode {n}"
            );
            // free end: zero curvature
            let l = b.geometry().length().value();
            let tip_curv = b.mode_curvature(n, 1.0).unwrap() * l * l;
            assert!(tip_curv.abs() < 1e-6, "mode {n} tip curvature {tip_curv}");
        }
        assert!(b.mode_shape(1, 1.5).is_err());
    }

    #[test]
    fn mode1_curvature_max_at_clamp() {
        let b = uniform_si(100.0, 50.0, 2.0);
        let at_clamp = b.mode_curvature(1, 0.0).unwrap().abs();
        for i in 1..=10 {
            let xi = f64::from(i) / 10.0;
            assert!(
                b.mode_curvature(1, xi).unwrap().abs() <= at_clamp + 1e-9,
                "curvature must peak at clamp"
            );
        }
    }

    #[test]
    fn tip_load_statics() {
        let b = uniform_si(100.0, 50.0, 2.0);
        let f = Newtons::new(1e-9);
        // tip deflection equals F/k
        let tip = b.tip_load_deflection(f, 1.0).unwrap().value();
        let expected = f.value() / b.spring_constant().value();
        assert!((tip - expected).abs() / expected < 1e-12);
        // clamp deflection zero
        assert_eq!(b.tip_load_deflection(f, 0.0).unwrap().value(), 0.0);
        // curvature linear, zero at tip
        assert_eq!(b.tip_load_curvature(f, 1.0).unwrap(), 0.0);
        let k0 = b.tip_load_curvature(f, 0.0).unwrap();
        let k_half = b.tip_load_curvature(f, 0.5).unwrap();
        assert!((k_half / k0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bending_stress_antisymmetric_about_neutral_axis() {
        let b = uniform_si(100.0, 50.0, 2.0);
        let e = Material::silicon_110().youngs_modulus();
        let kappa = 10.0; // 1/m
        let top = b.bending_stress_at(e, Meters::from_micrometers(2.0), kappa);
        let bottom = b.bending_stress_at(e, Meters::zero(), kappa);
        assert!((top.value() + bottom.value()).abs() < 1e-6);
        assert!(top.value() > 0.0);
        let mid = b.bending_stress_at(e, Meters::from_micrometers(1.0), kappa);
        assert!(mid.value().abs() < 1e-9);
    }
}
