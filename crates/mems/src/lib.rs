//! # canti-mems — micromechanical cantilever physics
//!
//! The transducer half of the cantilever-biosensor simulation: everything
//! between "a force/stress acts on the beam" and "the piezoresistive bridge
//! resistance changes". Models the paper's device physics:
//!
//! * [`material`] — elastic, density and piezoresistive constants of the
//!   CMOS layer materials (crystalline Si, oxide, nitride, metal, poly),
//! * [`geometry`] — the multilayer cantilever stack released by the
//!   post-CMOS etch,
//! * [`beam`] — composite Euler–Bernoulli mechanics: neutral axis, flexural
//!   rigidity, spring constant, modal frequencies,
//! * [`surface_stress`] — static bending from differential surface stress
//!   (the paper's Figure 1 operating mode),
//! * [`piezo`] — piezoresistive transduction: stress → ΔR/R for diffused
//!   resistors and PMOS-in-triode gauges,
//! * [`actuation`] — the on-chip Lorentz-force coil driven against the
//!   package magnet (Figure 5's actuation path),
//! * [`damping`] — quality factor and added fluid mass in gas/liquid
//!   (hydrodynamic function approximation),
//! * [`dynamics`] — the lumped resonator: transfer function, RK4 time
//!   stepping, thermomechanical noise,
//! * [`mass_loading`] — resonant-mode responsivity: Δf per bound mass
//!   (Figure 2's operating mode).
//!
//! # Examples
//!
//! ```
//! use canti_mems::geometry::CantileverGeometry;
//! use canti_mems::beam::CompositeBeam;
//!
//! let geom = CantileverGeometry::paper_resonant()?;
//! let beam = CompositeBeam::new(&geom)?;
//! let f0 = beam.mode_frequency(1)?;
//! // etch-stop-defined silicon beams of this size resonate in the 10s-100s of kHz:
//! assert!(f0.as_kilohertz() > 10.0 && f0.as_kilohertz() < 2000.0);
//! # Ok::<(), canti_mems::MemsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuation;
pub mod beam;
pub mod damping;
pub mod dynamics;
pub mod geometry;
pub mod mass_loading;
pub mod material;
pub mod piezo;
pub mod surface_stress;
pub mod thermal;

mod error;

pub use error::MemsError;
