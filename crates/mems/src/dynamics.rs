//! Lumped resonator dynamics: transfer function, time stepping and
//! thermomechanical noise.
//!
//! The fundamental mode of the fluid-loaded cantilever is a damped harmonic
//! oscillator
//!
//! ```text
//! m·ẍ + (m·ω₀/Q)·ẋ + k·x = F(t)
//! ```
//!
//! with m = k/ω₀² the effective modal mass. [`Resonator`] holds the three
//! lumped parameters; [`Resonator::step`] advances an explicit RK4 state
//! for closed-loop (oscillator) simulation, and the frequency-domain
//! helpers serve open-loop response sweeps.

use canti_bio::liquid::Liquid;
use canti_units::{consts, Hertz, Kelvin, Kilograms, Meters, Newtons, Seconds, SpringConstant};

use crate::beam::CompositeBeam;
use crate::damping::fluid_loading;
use crate::error::ensure_positive;
use crate::MemsError;

/// A damped harmonic oscillator with lumped (f₀, Q, k).
///
/// # Examples
///
/// ```
/// use canti_mems::dynamics::Resonator;
/// use canti_units::{Hertz, SpringConstant};
///
/// let r = Resonator::new(Hertz::from_kilohertz(100.0), 500.0, SpringConstant::new(10.0))?;
/// // at resonance the response is Q times the static compliance:
/// let h0 = r.transfer_magnitude(Hertz::new(1.0));
/// let hr = r.transfer_magnitude(r.resonant_frequency());
/// assert!((hr / h0 - 500.0).abs() / 500.0 < 1e-3);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resonator {
    f0: Hertz,
    q: f64,
    k: SpringConstant,
}

/// Kinematic state of a resonator being time-stepped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResonatorState {
    /// Displacement, m.
    pub x: f64,
    /// Velocity, m/s.
    pub v: f64,
}

impl Resonator {
    /// Creates a resonator from lumped parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] unless f₀, Q and k are strictly positive.
    pub fn new(f0: Hertz, q: f64, k: SpringConstant) -> Result<Self, MemsError> {
        ensure_positive("resonant frequency", f0.value())?;
        ensure_positive("quality factor", q)?;
        ensure_positive("spring constant", k.value())?;
        Ok(Self { f0, q, k })
    }

    /// Builds the fundamental-mode resonator of `beam` immersed in
    /// `medium`, folding in the fluid frequency shift and Q.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] unless `intrinsic_q` is strictly positive.
    pub fn from_beam_in_fluid(
        beam: &CompositeBeam,
        medium: &Liquid,
        intrinsic_q: f64,
    ) -> Result<Self, MemsError> {
        let loading = fluid_loading(beam, medium, intrinsic_q)?;
        Self::new(
            loading.frequency,
            loading.quality_factor,
            beam.spring_constant(),
        )
    }

    /// Resonant frequency f₀.
    #[must_use]
    pub fn resonant_frequency(&self) -> Hertz {
        self.f0
    }

    /// Quality factor Q.
    #[must_use]
    pub fn quality_factor(&self) -> f64 {
        self.q
    }

    /// Spring constant k.
    #[must_use]
    pub fn spring_constant(&self) -> SpringConstant {
        self.k
    }

    /// Effective modal mass m = k/ω₀².
    #[must_use]
    pub fn effective_mass(&self) -> Kilograms {
        let w0 = self.f0.angular();
        Kilograms::new(self.k.value() / (w0 * w0))
    }

    /// Damping coefficient c = m·ω₀/Q in kg/s.
    #[must_use]
    pub fn damping_coefficient(&self) -> f64 {
        self.effective_mass().value() * self.f0.angular() / self.q
    }

    /// Returns a copy with extra point mass added at the tip (lowers f₀,
    /// keeps k).
    #[must_use]
    pub fn with_added_tip_mass(&self, dm: Kilograms) -> Self {
        let m_new = self.effective_mass().value() + dm.value();
        let w_new = (self.k.value() / m_new).sqrt();
        Self {
            f0: Hertz::from_angular(w_new),
            q: self.q,
            k: self.k,
        }
    }

    /// |H(f)| in m/N: displacement amplitude per unit drive force at
    /// frequency `f`.
    #[must_use]
    pub fn transfer_magnitude(&self, f: Hertz) -> f64 {
        let r = f.value() / self.f0.value();
        let denom = ((1.0 - r * r).powi(2) + (r / self.q).powi(2)).sqrt();
        1.0 / (self.k.value() * denom)
    }

    /// Phase of H(f) in radians, 0 at DC → −π far above resonance,
    /// −π/2 exactly at f₀.
    #[must_use]
    pub fn transfer_phase(&self, f: Hertz) -> f64 {
        let r = f.value() / self.f0.value();
        (-(r / self.q)).atan2(1.0 - r * r)
    }

    /// Steady-state amplitude at resonance for drive amplitude `f`:
    /// x = Q·F/k.
    #[must_use]
    pub fn resonant_amplitude(&self, f: Newtons) -> Meters {
        Meters::new(self.q * f.value() / self.k.value())
    }

    /// −3 dB bandwidth f₀/Q.
    #[must_use]
    pub fn bandwidth(&self) -> Hertz {
        Hertz::new(self.f0.value() / self.q)
    }

    /// One-sided thermomechanical force-noise density √(4·k_B·T·m·ω₀/Q)
    /// in N/√Hz.
    #[must_use]
    pub fn thermal_force_noise_density(&self, temperature: Kelvin) -> f64 {
        (4.0 * consts::thermal_energy(temperature) * self.damping_coefficient()).sqrt()
    }

    /// RMS thermal displacement √(k_B·T/k) — equipartition.
    #[must_use]
    pub fn thermal_displacement_rms(&self, temperature: Kelvin) -> Meters {
        Meters::new((consts::thermal_energy(temperature) / self.k.value()).sqrt())
    }

    /// Advances the state by `dt` under external force `force` using RK4.
    ///
    /// For accurate oscillation, `dt` should resolve the period
    /// (dt ≲ 1/(20·f₀)).
    #[must_use]
    pub fn step(&self, state: ResonatorState, force: Newtons, dt: Seconds) -> ResonatorState {
        let m = self.effective_mass().value();
        let c = self.damping_coefficient();
        let k = self.k.value();
        let f = force.value();
        let h = dt.value();
        let acc = |x: f64, v: f64| (f - c * v - k * x) / m;

        let (x0, v0) = (state.x, state.v);
        let a1 = acc(x0, v0);
        let a2 = acc(x0 + 0.5 * h * v0, v0 + 0.5 * h * a1);
        let a3 = acc(x0 + 0.5 * h * v0 + 0.25 * h * h * a1, v0 + 0.5 * h * a2);
        let a4 = acc(x0 + h * v0 + 0.5 * h * h * a2, v0 + h * a3);

        ResonatorState {
            x: x0 + h * v0 + h * h / 6.0 * (a1 + a2 + a3),
            v: v0 + h / 6.0 * (a1 + 2.0 * a2 + 2.0 * a3 + a4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CantileverGeometry;

    fn res() -> Resonator {
        Resonator::new(
            Hertz::from_kilohertz(100.0),
            200.0,
            SpringConstant::new(20.0),
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Resonator::new(Hertz::zero(), 10.0, SpringConstant::new(1.0)).is_err());
        assert!(Resonator::new(Hertz::new(1e5), -1.0, SpringConstant::new(1.0)).is_err());
        assert!(Resonator::new(Hertz::new(1e5), 10.0, SpringConstant::zero()).is_err());
    }

    #[test]
    fn effective_mass_consistent() {
        let r = res();
        let m = r.effective_mass().value();
        let w0 = r.resonant_frequency().angular();
        assert!((r.spring_constant().value() / m - w0 * w0).abs() / (w0 * w0) < 1e-12);
    }

    #[test]
    fn transfer_function_landmarks() {
        let r = res();
        // DC: 1/k
        let h0 = r.transfer_magnitude(Hertz::new(0.001));
        assert!((h0 - 1.0 / 20.0).abs() / (1.0 / 20.0) < 1e-6);
        // resonance: Q/k
        let hr = r.transfer_magnitude(r.resonant_frequency());
        assert!((hr - 200.0 / 20.0).abs() / 10.0 < 1e-9);
        // phase: ~0 at DC, -pi/2 at f0, -> -pi far above
        assert!(r.transfer_phase(Hertz::new(1.0)).abs() < 1e-3);
        assert!(
            (r.transfer_phase(r.resonant_frequency()) + std::f64::consts::FRAC_PI_2).abs() < 1e-9
        );
        assert!(r.transfer_phase(Hertz::from_megahertz(10.0)) < -3.0);
    }

    #[test]
    fn bandwidth_from_half_power_points() {
        let r = res();
        let bw = r.bandwidth().value();
        assert!((bw - 500.0).abs() < 1e-9);
        // |H| at f0 +/- bw/2 is ~ 1/sqrt(2) of peak
        let peak = r.transfer_magnitude(r.resonant_frequency());
        let edge = r.transfer_magnitude(Hertz::new(1e5 + 250.0));
        let ratio = edge / peak;
        assert!(
            (ratio - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01,
            "ratio {ratio}"
        );
    }

    #[test]
    fn added_mass_lowers_frequency() {
        let r = res();
        let m = r.effective_mass();
        // adding m_eff halves omega^2 -> f0/sqrt(2)
        let shifted = r.with_added_tip_mass(m);
        let expect = 1e5 / 2f64.sqrt();
        assert!((shifted.resonant_frequency().value() - expect).abs() / expect < 1e-12);
        assert_eq!(shifted.spring_constant(), r.spring_constant());
    }

    #[test]
    fn free_decay_matches_q() {
        // release from x0, count amplitude decay: envelope ~ exp(-w0 t / 2Q)
        let r = res();
        let w0 = r.resonant_frequency().angular();
        let dt = Seconds::new(1.0 / (100.0 * r.resonant_frequency().value()));
        let mut s = ResonatorState { x: 1e-9, v: 0.0 };
        let cycles = 50.0;
        let steps = (cycles * 100.0) as usize;
        for _ in 0..steps {
            s = r.step(s, Newtons::zero(), dt);
        }
        let t = dt.value() * steps as f64;
        let expected_env = 1e-9 * (-w0 * t / (2.0 * r.quality_factor())).exp();
        // total energy-equivalent amplitude from x and v:
        let amp = (s.x * s.x + (s.v / w0).powi(2)).sqrt();
        assert!(
            (amp - expected_env).abs() / expected_env < 0.02,
            "amp {amp} vs envelope {expected_env}"
        );
    }

    #[test]
    fn driven_at_resonance_reaches_q_times_static() {
        let r =
            Resonator::new(Hertz::from_kilohertz(50.0), 40.0, SpringConstant::new(5.0)).unwrap();
        let f0 = r.resonant_frequency().value();
        let w0 = r.resonant_frequency().angular();
        let drive = 1e-9; // N amplitude
        let dt = Seconds::new(1.0 / (200.0 * f0));
        let mut s = ResonatorState::default();
        // run for ~ 8 Q cycles to settle (tau = Q/pi cycles)
        let steps = (8.0 * 40.0 * 200.0) as usize;
        let mut peak: f64 = 0.0;
        for i in 0..steps {
            let t = dt.value() * i as f64;
            let force = Newtons::new(drive * (w0 * t).sin());
            s = r.step(s, force, dt);
            if i > steps - 400 {
                peak = peak.max(s.x.abs());
            }
        }
        let expected = r.resonant_amplitude(Newtons::new(drive)).value();
        assert!(
            (peak - expected).abs() / expected < 0.05,
            "peak {peak} vs Q*F/k {expected}"
        );
    }

    #[test]
    fn thermal_noise_scales() {
        let r = res();
        let t300 = r.thermal_force_noise_density(Kelvin::new(300.0));
        let t600 = r.thermal_force_noise_density(Kelvin::new(600.0));
        assert!((t600 / t300 - 2f64.sqrt()).abs() < 1e-12);
        // realistic scale: fN-pN per sqrt(Hz) for MEMS
        assert!(t300 > 1e-16 && t300 < 1e-9, "S_F = {t300}");
        let x_rms = r.thermal_displacement_rms(Kelvin::new(300.0));
        // sqrt(kT/k) = sqrt(4.14e-21/20) ~ 1.4e-11 m
        assert!((x_rms.value() - (4.141947e-21f64 / 20.0).sqrt()).abs() / x_rms.value() < 1e-3);
    }

    #[test]
    fn from_beam_in_fluid_consistent_with_damping_module() {
        let beam = CompositeBeam::new(&CantileverGeometry::paper_resonant().unwrap()).unwrap();
        let r = Resonator::from_beam_in_fluid(&beam, &Liquid::air(), 1e5).unwrap();
        assert!(r.resonant_frequency().value() < beam.fundamental_frequency().value());
        assert!(r.quality_factor() > 100.0);
        assert_eq!(r.spring_constant(), beam.spring_constant());
    }
}
