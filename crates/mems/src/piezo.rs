//! Piezoresistive transduction: beam stress → fractional resistance change.
//!
//! Both of the paper's systems read the cantilever with a piezoresistive
//! Wheatstone bridge; only the placement differs:
//!
//! * **resonant mode** — the bridge sits *at the clamped edge*, "where the
//!   maximum mechanical stress is induced" (the mode-1 curvature peaks at
//!   ξ = 0);
//! * **static mode** — the bridge is *distributed over the cantilever
//!   length*: surface-stress loading produces uniform curvature, so every
//!   segment contributes equal signal and a longer gauge just lowers 1/f
//!   noise.
//!
//! This module turns a mechanical load case into the four ΔR/R values of a
//! bridge; the electrical network (bias, offset, noise) lives in
//! `canti-analog`.

use canti_units::{Meters, Newtons, Pascals, SurfaceStress};

use crate::beam::CompositeBeam;
use crate::error::ensure_position;
use crate::material::PiezoCoefficients;
use crate::surface_stress::SurfaceStressLoad;
use crate::MemsError;

/// Current direction of a gauge relative to the beam axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeOrientation {
    /// Current flows along the beam axis — couples through π_l.
    Longitudinal,
    /// Current flows across the beam — couples through π_t.
    Transverse,
}

/// A mechanical load case the gauge can be asked about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadCase {
    /// Static point force at the tip.
    TipForce(Newtons),
    /// Uniform differential surface stress on the top face (static
    /// biosensing).
    UniformSurfaceStress(SurfaceStress),
    /// Mode-1 vibration with the given tip amplitude (resonant
    /// biosensing); the returned ΔR/R is the *amplitude* of the sinusoidal
    /// resistance modulation.
    Mode1TipAmplitude(Meters),
}

/// One piezoresistive gauge on the beam.
///
/// # Examples
///
/// ```
/// use canti_mems::beam::CompositeBeam;
/// use canti_mems::geometry::CantileverGeometry;
/// use canti_mems::piezo::{GaugeOrientation, LoadCase, PiezoGauge};
/// use canti_units::{Meters, SurfaceStress};
///
/// let geom = CantileverGeometry::paper_static()?;
/// let beam = CompositeBeam::new(&geom)?;
/// let gauge = PiezoGauge::diffused_at_silicon_surface(
///     &beam, GaugeOrientation::Longitudinal, (0.0, 1.0))?;
/// let dr = gauge.delta_r(&beam, LoadCase::UniformSurfaceStress(
///     SurfaceStress::from_millinewtons_per_meter(5.0)))?;
/// assert!(dr.abs() > 0.0);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiezoGauge {
    coefficients: PiezoCoefficients,
    orientation: GaugeOrientation,
    /// Normalized span `[start, end]` along the beam the gauge occupies.
    span: (f64, f64),
    /// Height of the gauge plane above the stack bottom.
    z: Meters,
    /// Young's modulus of the layer the gauge lives in.
    layer_modulus: Pascals,
}

impl PiezoGauge {
    /// Creates a gauge at an explicit stack height.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] if the span is not a nondegenerate subinterval
    /// of `[0, 1]`.
    pub fn new(
        coefficients: PiezoCoefficients,
        orientation: GaugeOrientation,
        span: (f64, f64),
        z: Meters,
        layer_modulus: Pascals,
    ) -> Result<Self, MemsError> {
        ensure_position(span.0)?;
        ensure_position(span.1)?;
        if span.1 <= span.0 {
            return Err(MemsError::PositionOutOfRange { value: span.1 });
        }
        Ok(Self {
            coefficients,
            orientation,
            span,
            z,
            layer_modulus,
        })
    }

    /// A p-type diffused resistor just below the top surface of the silicon
    /// core (the stack's first layer), the paper's static-readout gauge.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for an invalid span.
    pub fn diffused_at_silicon_surface(
        beam: &CompositeBeam,
        orientation: GaugeOrientation,
        span: (f64, f64),
    ) -> Result<Self, MemsError> {
        let core = &beam.geometry().layers()[0];
        Self::new(
            PiezoCoefficients::p_silicon_110(),
            orientation,
            span,
            core.thickness,
            core.material.youngs_modulus(),
        )
    }

    /// A PMOS transistor biased in the triode region used as a gauge — the
    /// paper's resonant-readout choice ("higher resistivity and lower power
    /// consumption compared to diffusion-type silicon resistors").
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for an invalid span.
    pub fn pmos_at_silicon_surface(
        beam: &CompositeBeam,
        orientation: GaugeOrientation,
        span: (f64, f64),
    ) -> Result<Self, MemsError> {
        let core = &beam.geometry().layers()[0];
        Self::new(
            PiezoCoefficients::pmos_triode_110(),
            orientation,
            span,
            core.thickness,
            core.material.youngs_modulus(),
        )
    }

    /// The gauge's orientation.
    #[must_use]
    pub fn orientation(&self) -> GaugeOrientation {
        self.orientation
    }

    /// The gauge's normalized span.
    #[must_use]
    pub fn span(&self) -> (f64, f64) {
        self.span
    }

    /// The piezoresistive coefficients in use.
    #[must_use]
    pub fn coefficients(&self) -> PiezoCoefficients {
        self.coefficients
    }

    /// Average curvature over the gauge span for a load case.
    fn average_curvature(&self, beam: &CompositeBeam, load: LoadCase) -> Result<f64, MemsError> {
        let (a, b) = self.span;
        match load {
            LoadCase::TipForce(f) => {
                // kappa(xi) linear -> average at span midpoint
                beam.tip_load_curvature(f, (a + b) / 2.0)
            }
            LoadCase::UniformSurfaceStress(sigma) => {
                Ok(SurfaceStressLoad::new(beam).curvature(sigma))
            }
            LoadCase::Mode1TipAmplitude(amp) => {
                // Simpson integration of the mode-1 curvature over the span.
                let n = 32; // even
                let h = (b - a) / f64::from(n);
                let mut sum = 0.0;
                for i in 0..=n {
                    let xi = a + h * f64::from(i);
                    let w = if i == 0 || i == n {
                        1.0
                    } else if i % 2 == 1 {
                        4.0
                    } else {
                        2.0
                    };
                    sum += w * beam.mode_curvature(1, xi)?;
                }
                let integral = sum * h / 3.0;
                Ok(integral / (b - a) * amp.value())
            }
        }
    }

    /// Fractional resistance change ΔR/R for a load case.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] if the load case evaluates a position outside
    /// the beam (cannot happen for a validated gauge).
    pub fn delta_r(&self, beam: &CompositeBeam, load: LoadCase) -> Result<f64, MemsError> {
        let kappa = self.average_curvature(beam, load)?;
        let sigma = beam.bending_stress_at(self.layer_modulus, self.z, kappa);
        Ok(match self.orientation {
            GaugeOrientation::Longitudinal => {
                self.coefficients.delta_r_over_r(sigma, Pascals::zero())
            }
            GaugeOrientation::Transverse => {
                self.coefficients.delta_r_over_r(Pascals::zero(), sigma)
            }
        })
    }
}

/// The four gauges of a full-bridge arrangement, ordered so that adjacent
/// bridge arms alternate orientation: `[L, T, L, T]`. With π_l and π_t of
/// opposite sign this makes all four arms add constructively.
///
/// # Errors
///
/// Returns [`MemsError`] for an invalid span.
pub fn full_bridge_gauges(
    beam: &CompositeBeam,
    pmos: bool,
    span: (f64, f64),
) -> Result<[PiezoGauge; 4], MemsError> {
    let make = |orientation| {
        if pmos {
            PiezoGauge::pmos_at_silicon_surface(beam, orientation, span)
        } else {
            PiezoGauge::diffused_at_silicon_surface(beam, orientation, span)
        }
    };
    Ok([
        make(GaugeOrientation::Longitudinal)?,
        make(GaugeOrientation::Transverse)?,
        make(GaugeOrientation::Longitudinal)?,
        make(GaugeOrientation::Transverse)?,
    ])
}

/// Computes the four ΔR/R values of a bridge for a load case.
///
/// # Errors
///
/// Propagates any [`MemsError`] from gauge evaluation.
pub fn bridge_deltas(
    gauges: &[PiezoGauge; 4],
    beam: &CompositeBeam,
    load: LoadCase,
) -> Result<[f64; 4], MemsError> {
    Ok([
        gauges[0].delta_r(beam, load)?,
        gauges[1].delta_r(beam, load)?,
        gauges[2].delta_r(beam, load)?,
        gauges[3].delta_r(beam, load)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CantileverGeometry;

    fn static_beam() -> CompositeBeam {
        CompositeBeam::new(&CantileverGeometry::paper_static().unwrap()).unwrap()
    }

    fn resonant_beam() -> CompositeBeam {
        CompositeBeam::new(&CantileverGeometry::paper_resonant().unwrap()).unwrap()
    }

    #[test]
    fn span_validation() {
        let beam = static_beam();
        assert!(PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.5, 0.5)
        )
        .is_err());
        assert!(PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.2, 0.1)
        )
        .is_err());
        assert!(PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.0, 1.2)
        )
        .is_err());
    }

    #[test]
    fn surface_stress_signal_independent_of_span() {
        // Uniform curvature: a clamp-edge gauge and a full-length gauge see
        // the same DR/R — the physics behind the paper's distributed bridge.
        let beam = static_beam();
        let sigma = SurfaceStress::from_millinewtons_per_meter(5.0);
        let clamp = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.0, 0.1),
        )
        .unwrap();
        let full = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.0, 1.0),
        )
        .unwrap();
        let a = clamp
            .delta_r(&beam, LoadCase::UniformSurfaceStress(sigma))
            .unwrap();
        let b = full
            .delta_r(&beam, LoadCase::UniformSurfaceStress(sigma))
            .unwrap();
        assert!((a - b).abs() < 1e-15, "{a} vs {b}");
        assert!(a.abs() > 1e-8, "signal must be nonzero");
    }

    #[test]
    fn tip_force_signal_largest_at_clamp() {
        let beam = static_beam();
        let f = LoadCase::TipForce(Newtons::new(1e-8));
        let clamp = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.0, 0.1),
        )
        .unwrap();
        let tip = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.8, 0.9),
        )
        .unwrap();
        assert!(
            clamp.delta_r(&beam, f).unwrap().abs() > tip.delta_r(&beam, f).unwrap().abs() * 5.0
        );
    }

    #[test]
    fn mode1_signal_largest_at_clamp() {
        let beam = resonant_beam();
        let load = LoadCase::Mode1TipAmplitude(Meters::from_nanometers(10.0));
        let clamp =
            PiezoGauge::pmos_at_silicon_surface(&beam, GaugeOrientation::Longitudinal, (0.0, 0.1))
                .unwrap();
        let outer =
            PiezoGauge::pmos_at_silicon_surface(&beam, GaugeOrientation::Longitudinal, (0.5, 0.6))
                .unwrap();
        let at_clamp = clamp.delta_r(&beam, load).unwrap().abs();
        let at_mid = outer.delta_r(&beam, load).unwrap().abs();
        assert!(
            at_clamp > at_mid,
            "clamp {at_clamp} must beat mid-beam {at_mid} — the paper's placement"
        );
    }

    #[test]
    fn longitudinal_and_transverse_have_opposite_sign() {
        let beam = static_beam();
        let sigma = LoadCase::UniformSurfaceStress(SurfaceStress::from_millinewtons_per_meter(5.0));
        let l = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.0, 1.0),
        )
        .unwrap();
        let t = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Transverse,
            (0.0, 1.0),
        )
        .unwrap();
        let dl = l.delta_r(&beam, sigma).unwrap();
        let dt = t.delta_r(&beam, sigma).unwrap();
        assert!(dl * dt < 0.0, "bridge arms must move oppositely: {dl} {dt}");
    }

    #[test]
    fn signal_linear_in_load() {
        let beam = static_beam();
        let g = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.0, 1.0),
        )
        .unwrap();
        let d1 = g
            .delta_r(
                &beam,
                LoadCase::UniformSurfaceStress(SurfaceStress::from_millinewtons_per_meter(1.0)),
            )
            .unwrap();
        let d10 = g
            .delta_r(
                &beam,
                LoadCase::UniformSurfaceStress(SurfaceStress::from_millinewtons_per_meter(10.0)),
            )
            .unwrap();
        assert!((d10 / d1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bridge_deltas_alternate_sign() {
        let beam = resonant_beam();
        let gauges = full_bridge_gauges(&beam, true, (0.0, 0.15)).unwrap();
        let deltas = bridge_deltas(
            &gauges,
            &beam,
            LoadCase::Mode1TipAmplitude(Meters::from_nanometers(50.0)),
        )
        .unwrap();
        assert!(deltas[0] * deltas[1] < 0.0);
        assert!(deltas[1] * deltas[2] < 0.0);
        assert!(deltas[2] * deltas[3] < 0.0);
        assert_eq!(deltas[0], deltas[2]);
        assert_eq!(deltas[1], deltas[3]);
    }

    #[test]
    fn pmos_gauge_slightly_less_sensitive_than_diffused() {
        let beam = resonant_beam();
        let load = LoadCase::Mode1TipAmplitude(Meters::from_nanometers(10.0));
        let pmos =
            PiezoGauge::pmos_at_silicon_surface(&beam, GaugeOrientation::Longitudinal, (0.0, 0.1))
                .unwrap();
        let diff = PiezoGauge::diffused_at_silicon_surface(
            &beam,
            GaugeOrientation::Longitudinal,
            (0.0, 0.1),
        )
        .unwrap();
        let p = pmos.delta_r(&beam, load).unwrap().abs();
        let d = diff.delta_r(&beam, load).unwrap().abs();
        assert!(p < d, "pmos {p} vs diffused {d}");
        assert!(p > d * 0.5, "but within a factor of two");
    }
}
