//! Fluid damping and added mass: quality factor in gas and liquid.
//!
//! The feedback circuit's variable-gain amplifier exists because "different
//! liquids presented to the biosensor" change the mechanical damping. This
//! module quantifies that: given a beam and a surrounding medium it returns
//! the fluid-loaded resonant frequency, the quality factor and the added
//! fluid mass.
//!
//! The model is the standard hydrodynamic-function description of a
//! rectangular beam vibrating in a viscous fluid, using Maali's two-term
//! approximation of the hydrodynamic function Γ(ω) = Γ_r + iΓ_i:
//!
//! ```text
//! Γ_r = a₁ + a₂·δ/w          a₁ = 1.0553,  a₂ = 3.7997
//! Γ_i = b₁·δ/w + b₂·(δ/w)²   b₁ = 3.8018,  b₂ = 2.7364
//! δ   = √(2µ/(ρ_f ω))        (viscous boundary-layer thickness)
//! ```
//!
//! Added fluid mass per length: m_a = (π/4)·ρ_f·w²·Γ_r. The fluid-loaded
//! frequency follows from mass loading, solved by fixed-point iteration
//! (Γ depends on ω); the fluid Q is
//! Q = (4µ_L/(π·ρ_f·w²) + Γ_r)/Γ_i, combined in parallel with the
//! intrinsic (anchor/material) Q.

use canti_bio::liquid::Liquid;
use canti_units::Hertz;

use crate::beam::CompositeBeam;
use crate::error::ensure_positive;
use crate::MemsError;

const A1: f64 = 1.0553;
const A2: f64 = 3.7997;
const B1: f64 = 3.8018;
const B2: f64 = 2.7364;

/// Result of evaluating fluid loading on a beam.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidLoading {
    /// Fluid-loaded resonant frequency.
    pub frequency: Hertz,
    /// Total quality factor (fluid ∥ intrinsic).
    pub quality_factor: f64,
    /// Real part of the hydrodynamic function at the solution frequency.
    pub gamma_r: f64,
    /// Imaginary part of the hydrodynamic function.
    pub gamma_i: f64,
    /// Added fluid mass per unit length, kg/m.
    pub added_mass_per_length: f64,
    /// Viscous boundary-layer thickness at the solution frequency, m.
    pub boundary_layer: f64,
}

/// Evaluates fluid loading of `beam`'s fundamental mode in `medium`.
///
/// `intrinsic_q` is the vacuum quality factor (anchor + material losses),
/// typically 10³–10⁵ for single-crystal silicon beams.
///
/// # Errors
///
/// Returns [`MemsError`] unless `intrinsic_q` is strictly positive.
///
/// # Examples
///
/// ```
/// use canti_bio::liquid::Liquid;
/// use canti_mems::beam::CompositeBeam;
/// use canti_mems::damping::fluid_loading;
/// use canti_mems::geometry::CantileverGeometry;
/// use canti_units::Kelvin;
///
/// let beam = CompositeBeam::new(&CantileverGeometry::paper_resonant()?)?;
/// let air = fluid_loading(&beam, &Liquid::air(), 10_000.0)?;
/// let water = fluid_loading(&beam, &Liquid::water(Kelvin::from_celsius(25.0)), 10_000.0)?;
/// // liquid collapses Q by orders of magnitude and pulls the frequency down:
/// assert!(air.quality_factor > 20.0 * water.quality_factor);
/// assert!(water.frequency.value() < air.frequency.value());
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
pub fn fluid_loading(
    beam: &CompositeBeam,
    medium: &Liquid,
    intrinsic_q: f64,
) -> Result<FluidLoading, MemsError> {
    ensure_positive("intrinsic quality factor", intrinsic_q)?;
    let f_vac = beam.fundamental_frequency();

    if medium.is_vacuum() {
        return Ok(FluidLoading {
            frequency: f_vac,
            quality_factor: intrinsic_q,
            gamma_r: 0.0,
            gamma_i: 0.0,
            added_mass_per_length: 0.0,
            boundary_layer: 0.0,
        });
    }

    let w = beam.geometry().width().value();
    let mu_l = beam.mass_per_length();
    let rho = medium.density().value();
    let visc = medium.viscosity().value();
    // T = (pi/4) rho_f w^2: the cylinder-of-fluid reference mass per length.
    let t_ref = std::f64::consts::FRAC_PI_4 * rho * w * w;

    // Fixed-point iteration: omega depends on Gamma_r(omega).
    let omega_vac = f_vac.angular();
    let mut omega = omega_vac;
    for _ in 0..60 {
        let delta = (2.0 * visc / (rho * omega)).sqrt();
        let gamma_r = A1 + A2 * delta / w;
        let next = omega_vac / (1.0 + t_ref * gamma_r / mu_l).sqrt();
        if (next - omega).abs() / omega < 1e-12 {
            omega = next;
            break;
        }
        omega = next;
    }
    let delta = (2.0 * visc / (rho * omega)).sqrt();
    let gamma_r = A1 + A2 * delta / w;
    let gamma_i = B1 * delta / w + B2 * (delta / w).powi(2);

    let q_fluid = (4.0 * mu_l / (std::f64::consts::PI * rho * w * w) + gamma_r) / gamma_i;
    let q_total = 1.0 / (1.0 / q_fluid + 1.0 / intrinsic_q);

    Ok(FluidLoading {
        frequency: Hertz::from_angular(omega),
        quality_factor: q_total,
        gamma_r,
        gamma_i,
        added_mass_per_length: t_ref * gamma_r,
        boundary_layer: delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CantileverGeometry;
    use canti_units::Kelvin;

    fn beam() -> CompositeBeam {
        CompositeBeam::new(&CantileverGeometry::paper_resonant().unwrap()).unwrap()
    }

    #[test]
    fn vacuum_is_lossless_reference() {
        let b = beam();
        let l = fluid_loading(&b, &Liquid::vacuum(), 12_000.0).unwrap();
        assert_eq!(l.quality_factor, 12_000.0);
        assert_eq!(l.frequency, b.fundamental_frequency());
        assert_eq!(l.added_mass_per_length, 0.0);
    }

    #[test]
    fn air_q_in_hundreds() {
        let l = fluid_loading(&beam(), &Liquid::air(), 100_000.0).unwrap();
        assert!(
            l.quality_factor > 100.0 && l.quality_factor < 5000.0,
            "air Q = {}",
            l.quality_factor
        );
        // air barely shifts the frequency (<2%)
        let f_vac = beam().fundamental_frequency().value();
        assert!((f_vac - l.frequency.value()) / f_vac < 0.02);
    }

    #[test]
    fn water_q_single_digits_to_tens() {
        let l = fluid_loading(
            &beam(),
            &Liquid::water(Kelvin::from_celsius(25.0)),
            100_000.0,
        )
        .unwrap();
        assert!(
            l.quality_factor > 1.0 && l.quality_factor < 50.0,
            "water Q = {}",
            l.quality_factor
        );
        // water pulls the frequency down by tens of percent
        let f_vac = beam().fundamental_frequency().value();
        let drop = (f_vac - l.frequency.value()) / f_vac;
        assert!(drop > 0.2 && drop < 0.8, "frequency drop {drop}");
    }

    #[test]
    fn serum_damps_more_than_water() {
        let t = Kelvin::from_celsius(25.0);
        let water = fluid_loading(&beam(), &Liquid::water(t), 1e5).unwrap();
        let serum = fluid_loading(&beam(), &Liquid::serum(t), 1e5).unwrap();
        assert!(serum.quality_factor < water.quality_factor);
    }

    #[test]
    fn intrinsic_q_caps_total_q() {
        // with a terrible intrinsic Q, even vacuum-like media can't help
        let air_good = fluid_loading(&beam(), &Liquid::air(), 1e5).unwrap();
        let air_bad = fluid_loading(&beam(), &Liquid::air(), 50.0).unwrap();
        assert!(air_bad.quality_factor < 50.0);
        assert!(air_good.quality_factor > air_bad.quality_factor);
        assert!(fluid_loading(&beam(), &Liquid::air(), 0.0).is_err());
    }

    #[test]
    fn added_mass_positive_and_larger_in_water() {
        let t = Kelvin::from_celsius(25.0);
        let air = fluid_loading(&beam(), &Liquid::air(), 1e5).unwrap();
        let water = fluid_loading(&beam(), &Liquid::water(t), 1e5).unwrap();
        assert!(air.added_mass_per_length > 0.0);
        assert!(water.added_mass_per_length > 100.0 * air.added_mass_per_length);
        // in water the added mass is comparable to the beam mass itself
        let ratio = water.added_mass_per_length / beam().mass_per_length();
        assert!(ratio > 1.0 && ratio < 50.0, "added-mass ratio {ratio}");
    }

    #[test]
    fn boundary_layer_scale() {
        let l = fluid_loading(&beam(), &Liquid::water(Kelvin::from_celsius(25.0)), 1e5).unwrap();
        // ~ a few microns at 100 kHz-scale frequencies in water
        assert!(
            l.boundary_layer > 0.5e-6 && l.boundary_layer < 20e-6,
            "delta = {}",
            l.boundary_layer
        );
    }
}
