//! Resonant-mode mass sensing: frequency shift per bound analyte mass.
//!
//! "The additional mass of the analyte molecules causes a shift in the
//! resonant frequency upon binding" (the paper's Figure 2). For a lumped
//! resonator with effective mass m_eff, adding Δm_eff gives exactly
//!
//! ```text
//! f' = f₀ · √(m_eff / (m_eff + Δm_eff))        (≈ f₀·(1 − Δm_eff/2m_eff))
//! ```
//!
//! Where the mass lands matters: a point mass at the tip counts fully;
//! analyte spread uniformly over the beam counts with the modal weighting
//! 3/λ₁⁴ ≈ 0.2427 (the same factor that maps beam mass to m_eff).

use canti_units::{Hertz, Kilograms};

use crate::beam::{CompositeBeam, CLAMPED_FREE_EIGENVALUES};
use crate::dynamics::Resonator;
use crate::error::ensure_positive;
use crate::MemsError;

/// Modal weighting of uniformly distributed added mass for mode 1:
/// 3/λ₁⁴ ≈ 0.2427.
#[must_use]
pub fn distributed_mass_fraction() -> f64 {
    3.0 / CLAMPED_FREE_EIGENVALUES[0].powi(4)
}

/// Where the added mass sits on the beam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MassPlacement {
    /// Concentrated at the free end (weighting 1).
    Tip,
    /// Spread uniformly over the beam (weighting 3/λ₁⁴ ≈ 0.2427) — how a
    /// bound analyte monolayer actually loads the beam.
    #[default]
    Distributed,
}

impl MassPlacement {
    /// Modal weighting factor α such that Δm_eff = α·Δm.
    #[must_use]
    pub fn modal_weight(self) -> f64 {
        match self {
            Self::Tip => 1.0,
            Self::Distributed => distributed_mass_fraction(),
        }
    }
}

/// Mass-loading response of a resonator.
///
/// # Examples
///
/// ```
/// use canti_mems::dynamics::Resonator;
/// use canti_mems::mass_loading::{MassLoading, MassPlacement};
/// use canti_units::{Hertz, Kilograms, SpringConstant};
///
/// let r = Resonator::new(Hertz::from_kilohertz(100.0), 300.0, SpringConstant::new(15.0))?;
/// let loading = MassLoading::new(r, MassPlacement::Distributed);
/// // 10 pg of bound protein shifts the resonance down:
/// let df = loading.frequency_shift(Kilograms::from_picograms(10.0));
/// assert!(df.value() < 0.0);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MassLoading {
    resonator: Resonator,
    placement: MassPlacement,
}

impl MassLoading {
    /// Creates a mass-loading model.
    #[must_use]
    pub fn new(resonator: Resonator, placement: MassPlacement) -> Self {
        Self {
            resonator,
            placement,
        }
    }

    /// The unloaded resonator.
    #[must_use]
    pub fn resonator(&self) -> Resonator {
        self.resonator
    }

    /// The mass placement in use.
    #[must_use]
    pub fn placement(&self) -> MassPlacement {
        self.placement
    }

    /// Exact loaded frequency for added mass `dm`.
    #[must_use]
    pub fn loaded_frequency(&self, dm: Kilograms) -> Hertz {
        let m_eff = self.resonator.effective_mass().value();
        let dm_eff = self.placement.modal_weight() * dm.value().max(0.0);
        Hertz::new(self.resonator.resonant_frequency().value() * (m_eff / (m_eff + dm_eff)).sqrt())
    }

    /// Exact frequency shift Δf = f' − f₀ (negative for added mass).
    #[must_use]
    pub fn frequency_shift(&self, dm: Kilograms) -> Hertz {
        self.loaded_frequency(dm) - self.resonator.resonant_frequency()
    }

    /// Small-mass responsivity |df/dm| = α·f₀/(2·m_eff) in Hz/kg.
    #[must_use]
    pub fn responsivity(&self) -> f64 {
        self.placement.modal_weight() * self.resonator.resonant_frequency().value()
            / (2.0 * self.resonator.effective_mass().value())
    }

    /// Minimum detectable mass for a frequency noise floor `freq_noise`
    /// (e.g. the Allan-deviation-derived resolution of the on-chip
    /// counter): δm = δf / responsivity.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] unless `freq_noise` is strictly positive.
    pub fn min_detectable_mass(&self, freq_noise: Hertz) -> Result<Kilograms, MemsError> {
        ensure_positive("frequency noise", freq_noise.value())?;
        Ok(Kilograms::new(freq_noise.value() / self.responsivity()))
    }

    /// Inverts a measured frequency shift back to bound mass (small-shift
    /// linearization).
    #[must_use]
    pub fn mass_from_shift(&self, df: Hertz) -> Kilograms {
        Kilograms::new(df.value().abs() / self.responsivity())
    }
}

/// Frequency shift of mode `n` for *uniformly distributed* added mass
/// `dm` on `beam`.
///
/// A uniform layer scales the mass per length µ without changing the mode
/// shape, so **every** mode shifts by the same relative amount:
/// Δfₙ/fₙ = −Δm/(2m). Because fₙ grows as λₙ², the *absolute* responsivity
/// |Δfₙ|/Δm = fₙ/(2m) grows with mode number — the classic argument for
/// operating mass sensors in higher modes.
///
/// # Errors
///
/// Returns [`MemsError::ModeOutOfRange`] for an unsupported mode.
pub fn uniform_mass_mode_shift(
    beam: &CompositeBeam,
    n: usize,
    dm: Kilograms,
) -> Result<Hertz, MemsError> {
    let f_n = beam.mode_frequency(n)?;
    let m = beam.mass().value();
    // exact: f' = f * sqrt(m/(m+dm))
    let loaded = f_n.value() * (m / (m + dm.value().max(0.0))).sqrt();
    Ok(Hertz::new(loaded - f_n.value()))
}

/// Mode-`n` responsivity to uniformly distributed mass, |dfₙ/dm| = fₙ/(2m)
/// in Hz/kg.
///
/// # Errors
///
/// Returns [`MemsError::ModeOutOfRange`] for an unsupported mode.
pub fn uniform_mass_mode_responsivity(beam: &CompositeBeam, n: usize) -> Result<f64, MemsError> {
    Ok(beam.mode_frequency(n)?.value() / (2.0 * beam.mass().value()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_units::SpringConstant;

    fn loading(placement: MassPlacement) -> MassLoading {
        let r = Resonator::new(
            Hertz::from_kilohertz(100.0),
            300.0,
            SpringConstant::new(15.0),
        )
        .unwrap();
        MassLoading::new(r, placement)
    }

    #[test]
    fn distributed_fraction_value() {
        assert!((distributed_mass_fraction() - 0.242_67).abs() < 1e-4);
        assert_eq!(MassPlacement::Tip.modal_weight(), 1.0);
    }

    #[test]
    fn shift_is_negative_and_monotonic() {
        let l = loading(MassPlacement::Tip);
        let d1 = l.frequency_shift(Kilograms::from_picograms(1.0)).value();
        let d10 = l.frequency_shift(Kilograms::from_picograms(10.0)).value();
        assert!(d1 < 0.0);
        assert!(d10 < d1, "more mass, more (negative) shift");
        // zero mass, zero shift
        assert_eq!(l.frequency_shift(Kilograms::zero()).value(), 0.0);
    }

    #[test]
    fn exact_vs_linearized_small_mass() {
        let l = loading(MassPlacement::Tip);
        let dm = Kilograms::from_femtograms(100.0);
        let exact = -l.frequency_shift(dm).value();
        let linear = l.responsivity() * dm.value();
        // truncation error is O(dm/m_eff) ~ 2.6e-6 for this mass
        assert!(
            (exact - linear).abs() / linear < 1e-5,
            "exact {exact}, linear {linear}"
        );
    }

    #[test]
    fn tip_mass_counts_about_four_times_distributed() {
        let tip = loading(MassPlacement::Tip);
        let dist = loading(MassPlacement::Distributed);
        let dm = Kilograms::from_picograms(5.0);
        let ratio = tip.frequency_shift(dm).value() / dist.frequency_shift(dm).value();
        assert!(
            (ratio - 1.0 / distributed_mass_fraction()).abs() < 0.01,
            "ratio {ratio}"
        );
    }

    #[test]
    fn doubling_m_eff_gives_sqrt2_drop() {
        let l = loading(MassPlacement::Tip);
        let m_eff = l.resonator().effective_mass();
        let f = l.loaded_frequency(m_eff);
        let expected = 100e3 / 2f64.sqrt();
        assert!((f.value() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn min_detectable_mass_roundtrip() {
        let l = loading(MassPlacement::Distributed);
        let dm_min = l.min_detectable_mass(Hertz::new(0.1)).unwrap();
        let shift = l.frequency_shift(dm_min).value().abs();
        assert!((shift - 0.1).abs() / 0.1 < 1e-3, "shift {shift}");
        assert!(l.min_detectable_mass(Hertz::zero()).is_err());
        // mass_from_shift inverts
        let back = l.mass_from_shift(Hertz::new(-0.1));
        assert!((back.value() - dm_min.value()).abs() / dm_min.value() < 1e-9);
    }

    #[test]
    fn higher_modes_more_responsive_same_relative_shift() {
        use crate::geometry::CantileverGeometry;
        let beam = CompositeBeam::new(&CantileverGeometry::paper_resonant().unwrap()).unwrap();
        let dm = Kilograms::from_nanograms(1.0);
        let mut prev_resp = 0.0;
        let rel1 = uniform_mass_mode_shift(&beam, 1, dm).unwrap().value()
            / beam.mode_frequency(1).unwrap().value();
        for n in 1..=4 {
            let resp = uniform_mass_mode_responsivity(&beam, n).unwrap();
            assert!(resp > prev_resp, "mode {n} must be more responsive");
            prev_resp = resp;
            // relative shift identical across modes (uniform layer)
            let rel = uniform_mass_mode_shift(&beam, n, dm).unwrap().value()
                / beam.mode_frequency(n).unwrap().value();
            assert!((rel - rel1).abs() < 1e-12, "mode {n}: {rel} vs {rel1}");
        }
        // responsivity ratio mode2/mode1 = (lambda2/lambda1)^2 = 6.27
        let r1 = uniform_mass_mode_responsivity(&beam, 1).unwrap();
        let r2 = uniform_mass_mode_responsivity(&beam, 2).unwrap();
        assert!((r2 / r1 - 6.2669).abs() < 1e-3);
        assert!(uniform_mass_mode_responsivity(&beam, 9).is_err());
    }

    #[test]
    fn picogram_sensitivity_scale() {
        // MEMS resonators resolve picograms with sub-Hz counters.
        let l = loading(MassPlacement::Distributed);
        let dm = l.min_detectable_mass(Hertz::new(1.0)).unwrap();
        assert!(
            dm.as_picograms() > 1e-3 && dm.as_picograms() < 1e3,
            "min mass {} pg",
            dm.as_picograms()
        );
    }
}
