//! Thermal effects: bimorph bending and resonant-frequency drift.
//!
//! Temperature is the biosensor's main systematic error source, and the
//! reason the paper's array has a *reference* cantilever:
//!
//! * a multilayer beam with mismatched thermal expansion is a **bimorph**:
//!   ΔT bends it exactly like a differential surface stress does, at
//!   mN/m-per-kelvin scale — easily swamping a biological signal;
//! * silicon's modulus softens with temperature, drifting the resonant
//!   frequency at roughly −30 ppm/K.
//!
//! Both effects are *common* to sensing and reference beams on the same
//! die, which is what differential readout exploits.

use canti_units::{Hertz, Kelvin, SurfaceStress};

use crate::beam::CompositeBeam;
use crate::error::ensure_positive;
use crate::MemsError;

/// Linear coefficient of thermal expansion, 1/K, looked up by material
/// name as used in [`crate::material::Material`].
#[must_use]
pub fn thermal_expansion(material_name: &str) -> f64 {
    match material_name {
        name if name.starts_with("Si <") => 2.6e-6,
        "SiO2" => 0.5e-6,
        "Si3N4" => 3.3e-6,
        "Al" => 23.1e-6,
        "Au" => 14.2e-6,
        "poly-Si" => 2.8e-6,
        _ => 3.0e-6,
    }
}

/// Temperature coefficient of silicon's Young's modulus, 1/K
/// (dE/dT / E ≈ −60 ppm/K ⇒ df/dT / f ≈ −30 ppm/K).
pub const SILICON_MODULUS_TC: f64 = -60e-6;

/// Thermal response of a composite beam.
///
/// # Examples
///
/// ```
/// use canti_mems::beam::CompositeBeam;
/// use canti_mems::geometry::CantileverGeometry;
/// use canti_mems::thermal::ThermalModel;
/// use canti_units::Kelvin;
///
/// let beam = CompositeBeam::new(&CantileverGeometry::paper_resonant()?)?;
/// let thermal = ThermalModel::new(&beam);
/// // 1 K of drift produces an mN/m-scale equivalent surface stress:
/// let sigma = thermal.equivalent_surface_stress(1.0);
/// assert!(sigma.value().abs() > 1e-5);
/// let _ = Kelvin::new(300.0);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel<'a> {
    beam: &'a CompositeBeam,
}

impl<'a> ThermalModel<'a> {
    /// Creates a thermal model for `beam`.
    #[must_use]
    pub fn new(beam: &'a CompositeBeam) -> Self {
        Self { beam }
    }

    /// Bimorph curvature per kelvin, 1/(m·K).
    ///
    /// Transformed-section result: each layer carries a thermal force
    /// N_i = E_i·t_i·α_i·ΔT per unit width; the net moment about the
    /// neutral axis is M' = Σ N_i·(z_i − z_n), giving
    /// κ = M'·w/EI per kelvin. A single-material beam gives exactly zero.
    #[must_use]
    pub fn bimorph_curvature_per_kelvin(&self) -> f64 {
        let z_n = self.beam.neutral_axis().value();
        let mut z = 0.0;
        let mut moment_per_width = 0.0;
        for layer in self.beam.geometry().layers() {
            let t = layer.thickness.value();
            let e = layer.material.youngs_modulus().value();
            let alpha = thermal_expansion(layer.material.name());
            let zc = z + t / 2.0;
            moment_per_width += e * t * alpha * (zc - z_n);
            z += t;
        }
        moment_per_width * self.beam.geometry().width().value() / self.beam.flexural_rigidity()
    }

    /// Tip deflection per kelvin: κ/K · L²/2.
    #[must_use]
    pub fn tip_deflection_per_kelvin(&self) -> f64 {
        let l = self.beam.geometry().length().value();
        self.bimorph_curvature_per_kelvin() * l * l / 2.0
    }

    /// The differential surface stress that would produce the same bending
    /// as a temperature change `delta_t` (K) — the "disguise" thermal
    /// drift wears when it reaches the static readout.
    #[must_use]
    pub fn equivalent_surface_stress(&self, delta_t: f64) -> SurfaceStress {
        // kappa = sigma * arm * w / EI  =>  sigma = kappa * EI / (arm * w)
        let arm = self.beam.geometry().total_thickness().value() - self.beam.neutral_axis().value();
        let w = self.beam.geometry().width().value();
        let kappa = self.bimorph_curvature_per_kelvin() * delta_t;
        SurfaceStress::new(kappa * self.beam.flexural_rigidity() / (arm * w))
    }

    /// Fractional resonant-frequency drift per kelvin,
    /// (df/dT)/f ≈ TC_E/2 for a silicon-dominated beam.
    #[must_use]
    pub fn frequency_tc_per_kelvin(&self) -> f64 {
        SILICON_MODULUS_TC / 2.0
    }

    /// Resonant frequency at temperature `t`, relative to a nominal
    /// frequency `f0` quoted at `t0`.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for non-positive temperatures.
    pub fn frequency_at(&self, f0: Hertz, t0: Kelvin, t: Kelvin) -> Result<Hertz, MemsError> {
        ensure_positive("reference temperature", t0.value())?;
        ensure_positive("temperature", t.value())?;
        let dt = t.value() - t0.value();
        Ok(Hertz::new(
            f0.value() * (1.0 + self.frequency_tc_per_kelvin() * dt),
        ))
    }

    /// The mass error a naive (non-referenced) resonant readout makes when
    /// the temperature drifts by `delta_t`: the frequency TC shift read as
    /// if it were mass. `responsivity` in Hz/kg.
    #[must_use]
    pub fn apparent_mass_from_drift(&self, f0: Hertz, delta_t: f64, responsivity: f64) -> f64 {
        (f0.value() * self.frequency_tc_per_kelvin() * delta_t).abs() / responsivity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CantileverGeometry;
    use crate::material::Material;
    use canti_units::Meters;

    fn composite() -> CompositeBeam {
        CompositeBeam::new(&CantileverGeometry::paper_resonant().unwrap()).unwrap()
    }

    fn uniform() -> CompositeBeam {
        CompositeBeam::new(
            &CantileverGeometry::uniform(
                Meters::from_micrometers(500.0),
                Meters::from_micrometers(100.0),
                Meters::from_micrometers(5.0),
                Material::silicon_110(),
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn single_material_beam_has_no_bimorph() {
        let beam = uniform();
        let thermal = ThermalModel::new(&beam);
        assert!(
            thermal.bimorph_curvature_per_kelvin().abs() < 1e-12,
            "uniform beams do not bend with temperature"
        );
    }

    #[test]
    fn composite_beam_bends_with_temperature() {
        let beam = composite();
        let thermal = ThermalModel::new(&beam);
        let kappa = thermal.bimorph_curvature_per_kelvin();
        // aluminum coil on top (alpha 23 ppm) vs silicon core (2.6 ppm):
        // heating expands the top more -> bends down (negative by our sign)
        assert!(kappa.abs() > 1e-4, "kappa/K = {kappa}");
        let defl = thermal.tip_deflection_per_kelvin();
        // nm-scale per kelvin for this stack
        assert!(defl.abs() > 1e-10 && defl.abs() < 1e-6, "defl/K = {defl}");
    }

    #[test]
    fn thermal_drift_swamps_biosignal_without_referencing() {
        // the reason reference cantilevers exist: 0.1 K of drift produces
        // an equivalent surface stress comparable to protein binding.
        let beam = composite();
        let thermal = ThermalModel::new(&beam);
        let sigma_01k = thermal.equivalent_surface_stress(0.1).value().abs();
        assert!(
            sigma_01k > 0.1e-3,
            "0.1 K should fake >0.1 mN/m, got {sigma_01k}"
        );
    }

    #[test]
    fn equivalent_stress_roundtrips_through_curvature() {
        let beam = composite();
        let thermal = ThermalModel::new(&beam);
        let dt = 2.5;
        let sigma = thermal.equivalent_surface_stress(dt);
        let kappa_from_stress =
            crate::surface_stress::SurfaceStressLoad::new(&beam).curvature(sigma);
        let kappa_direct = thermal.bimorph_curvature_per_kelvin() * dt;
        assert!(
            (kappa_from_stress - kappa_direct).abs() / kappa_direct.abs() < 1e-9,
            "{kappa_from_stress} vs {kappa_direct}"
        );
    }

    #[test]
    fn frequency_tc_is_minus_30ppm_per_kelvin() {
        let beam = composite();
        let thermal = ThermalModel::new(&beam);
        assert!((thermal.frequency_tc_per_kelvin() + 30e-6).abs() < 1e-9);
        let f0 = Hertz::from_kilohertz(340.0);
        let f_hot = thermal
            .frequency_at(f0, Kelvin::new(300.0), Kelvin::new(310.0))
            .unwrap();
        // -30 ppm/K x 10 K = -0.03 % = -102 Hz
        assert!((f0.value() - f_hot.value() - 102.0).abs() < 1.0);
        assert!(thermal
            .frequency_at(f0, Kelvin::zero(), Kelvin::new(300.0))
            .is_err());
    }

    #[test]
    fn apparent_mass_from_one_kelvin_is_significant() {
        let beam = composite();
        let thermal = ThermalModel::new(&beam);
        let f0 = Hertz::from_kilohertz(340.0);
        let responsivity = 0.5e15; // Hz/kg (0.5 Hz/pg)
        let fake_mass = thermal.apparent_mass_from_drift(f0, 1.0, responsivity);
        // -30 ppm of 340 kHz = 10.2 Hz -> 20.4 pg of phantom mass
        assert!(
            (fake_mass * 1e15 - 20.4).abs() < 0.5,
            "1 K fakes {} pg",
            fake_mass * 1e15
        );
    }
}
