use std::fmt;

/// Error raised by `canti-mems` on physically invalid inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MemsError {
    /// A quantity that must be strictly positive was zero or negative.
    NonPositive {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A value that must be finite was NaN or infinite.
    NotFinite {
        /// Human-readable name of the offending parameter.
        what: &'static str,
    },
    /// A cantilever stack with no layers.
    EmptyStack,
    /// A mode index outside the supported range.
    ModeOutOfRange {
        /// The requested mode number (1-based).
        requested: usize,
        /// Highest supported mode number.
        max: usize,
    },
    /// A position outside the beam (normalized coordinate not in `[0, 1]`).
    PositionOutOfRange {
        /// The rejected normalized position.
        value: f64,
    },
}

impl fmt::Display for MemsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            Self::NotFinite { what } => write!(f, "{what} must be finite"),
            Self::EmptyStack => write!(f, "cantilever stack must contain at least one layer"),
            Self::ModeOutOfRange { requested, max } => {
                write!(f, "mode {requested} out of range (1..={max})")
            }
            Self::PositionOutOfRange { value } => {
                write!(
                    f,
                    "normalized beam position must lie in [0, 1], got {value}"
                )
            }
        }
    }
}

impl std::error::Error for MemsError {}

pub(crate) fn ensure_positive(what: &'static str, value: f64) -> Result<(), MemsError> {
    if !value.is_finite() {
        return Err(MemsError::NotFinite { what });
    }
    if value <= 0.0 {
        return Err(MemsError::NonPositive { what, value });
    }
    Ok(())
}

pub(crate) fn ensure_position(value: f64) -> Result<(), MemsError> {
    if !value.is_finite() {
        return Err(MemsError::NotFinite {
            what: "normalized beam position",
        });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(MemsError::PositionOutOfRange { value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MemsError>();
    }

    #[test]
    fn messages() {
        assert_eq!(
            MemsError::EmptyStack.to_string(),
            "cantilever stack must contain at least one layer"
        );
        assert_eq!(
            MemsError::ModeOutOfRange {
                requested: 9,
                max: 6
            }
            .to_string(),
            "mode 9 out of range (1..=6)"
        );
    }

    #[test]
    fn validators() {
        assert!(ensure_positive("x", 1.0).is_ok());
        assert!(ensure_positive("x", -1.0).is_err());
        assert!(ensure_position(0.5).is_ok());
        assert!(ensure_position(1.01).is_err());
    }
}
