//! Materials of the 0.8 µm CMOS stack and their mechanical / piezoresistive
//! constants.
//!
//! The cantilever released by the paper's post-CMOS micromachining is mostly
//! n-well crystalline silicon (the electrochemical etch-stop lands on the
//! n-well junction), optionally carrying dielectric and metal layers on top
//! (the actuation coil, passivation) and a functionalization coating (gold)
//! on the active face.

use canti_units::{KgPerM3, Pascals};

use crate::error::ensure_positive;
use crate::MemsError;

/// An isotropic (or effective-orientation) structural material.
///
/// # Examples
///
/// ```
/// use canti_mems::material::Material;
///
/// let si = Material::silicon_110();
/// assert!(si.youngs_modulus().value() > 1e11);
/// // plate modulus E/(1-nu^2) always exceeds E:
/// assert!(si.plate_modulus().value() > si.youngs_modulus().value());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    name: String,
    youngs_modulus: Pascals,
    density: KgPerM3,
    poisson: f64,
}

impl Material {
    /// Creates a custom material.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] unless modulus and density are strictly
    /// positive and the Poisson ratio lies in `[0, 0.5)`.
    pub fn new(
        name: impl Into<String>,
        youngs_modulus: Pascals,
        density: KgPerM3,
        poisson: f64,
    ) -> Result<Self, MemsError> {
        ensure_positive("Young's modulus", youngs_modulus.value())?;
        ensure_positive("density", density.value())?;
        if !poisson.is_finite() || !(0.0..0.5).contains(&poisson) {
            return Err(MemsError::NonPositive {
                what: "Poisson ratio (must be in [0, 0.5))",
                value: poisson,
            });
        }
        Ok(Self {
            name: name.into(),
            youngs_modulus,
            density,
            poisson,
        })
    }

    /// Single-crystal silicon along ⟨100⟩ (E = 130 GPa).
    #[must_use]
    pub fn silicon_100() -> Self {
        Self {
            name: "Si <100>".to_owned(),
            youngs_modulus: Pascals::from_gigapascals(130.0),
            density: KgPerM3::new(2330.0),
            poisson: 0.28,
        }
    }

    /// Single-crystal silicon along ⟨110⟩ (E = 169 GPa) — the usual beam
    /// axis for KOH-etched cantilevers on (100) wafers.
    #[must_use]
    pub fn silicon_110() -> Self {
        Self {
            name: "Si <110>".to_owned(),
            youngs_modulus: Pascals::from_gigapascals(169.0),
            density: KgPerM3::new(2330.0),
            poisson: 0.064,
        }
    }

    /// Thermal/deposited silicon dioxide.
    #[must_use]
    pub fn silicon_dioxide() -> Self {
        Self {
            name: "SiO2".to_owned(),
            youngs_modulus: Pascals::from_gigapascals(70.0),
            density: KgPerM3::new(2200.0),
            poisson: 0.17,
        }
    }

    /// LPCVD silicon nitride (passivation).
    #[must_use]
    pub fn silicon_nitride() -> Self {
        Self {
            name: "Si3N4".to_owned(),
            youngs_modulus: Pascals::from_gigapascals(250.0),
            density: KgPerM3::new(3100.0),
            poisson: 0.23,
        }
    }

    /// Sputtered aluminum interconnect metal.
    #[must_use]
    pub fn aluminum() -> Self {
        Self {
            name: "Al".to_owned(),
            youngs_modulus: Pascals::from_gigapascals(70.0),
            density: KgPerM3::new(2700.0),
            poisson: 0.35,
        }
    }

    /// Evaporated gold — the functionalization layer thiol chemistry binds to.
    #[must_use]
    pub fn gold() -> Self {
        Self {
            name: "Au".to_owned(),
            youngs_modulus: Pascals::from_gigapascals(79.0),
            density: KgPerM3::new(19_300.0),
            poisson: 0.44,
        }
    }

    /// LPCVD polysilicon (gate/resistor material).
    #[must_use]
    pub fn polysilicon() -> Self {
        Self {
            name: "poly-Si".to_owned(),
            youngs_modulus: Pascals::from_gigapascals(160.0),
            density: KgPerM3::new(2330.0),
            poisson: 0.22,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Young's modulus E.
    #[must_use]
    pub fn youngs_modulus(&self) -> Pascals {
        self.youngs_modulus
    }

    /// Mass density ρ.
    #[must_use]
    pub fn density(&self) -> KgPerM3 {
        self.density
    }

    /// Poisson ratio ν.
    #[must_use]
    pub fn poisson(&self) -> f64 {
        self.poisson
    }

    /// Plate (biaxial) modulus E/(1 − ν²), appropriate for wide beams
    /// (w ≫ t), which biosensor cantilevers are.
    #[must_use]
    pub fn plate_modulus(&self) -> Pascals {
        Pascals::new(self.youngs_modulus.value() / (1.0 - self.poisson * self.poisson))
    }

    /// Biaxial modulus E/(1 − ν) used in Stoney-type surface-stress
    /// formulas.
    #[must_use]
    pub fn biaxial_modulus(&self) -> Pascals {
        Pascals::new(self.youngs_modulus.value() / (1.0 - self.poisson))
    }
}

impl std::fmt::Display for Material {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (E = {:.0} GPa, rho = {:.0} kg/m^3)",
            self.name,
            self.youngs_modulus.value() / 1e9,
            self.density.value()
        )
    }
}

/// Piezoresistive coefficients of a silicon resistor, 1/Pa.
///
/// `pi_l` couples to stress along the current direction, `pi_t` to stress
/// transverse to it: ΔR/R = π_l·σ_l + π_t·σ_t.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiezoCoefficients {
    /// Longitudinal coefficient π_l in 1/Pa.
    pub pi_l: f64,
    /// Transverse coefficient π_t in 1/Pa.
    pub pi_t: f64,
}

impl PiezoCoefficients {
    /// p-type diffused resistor along ⟨110⟩ on a (100) wafer — the standard
    /// high-sensitivity choice: π_l = +71.8·10⁻¹¹, π_t = −66.3·10⁻¹¹ 1/Pa.
    #[must_use]
    pub fn p_silicon_110() -> Self {
        Self {
            pi_l: 71.8e-11,
            pi_t: -66.3e-11,
        }
    }

    /// n-type diffused resistor along ⟨100⟩: π_l = −102.2·10⁻¹¹,
    /// π_t = +53.4·10⁻¹¹ 1/Pa.
    #[must_use]
    pub fn n_silicon_100() -> Self {
        Self {
            pi_l: -102.2e-11,
            pi_t: 53.4e-11,
        }
    }

    /// Effective coefficients of a PMOS channel in the triode region used
    /// as a stress gauge (mobility piezo-effect, ⟨110⟩ channel). Roughly
    /// the p-resistor values attenuated by the inversion-layer confinement.
    #[must_use]
    pub fn pmos_triode_110() -> Self {
        Self {
            pi_l: 60.0e-11,
            pi_t: -55.0e-11,
        }
    }

    /// Fractional resistance change for the given longitudinal and
    /// transverse stresses.
    #[must_use]
    pub fn delta_r_over_r(&self, sigma_l: Pascals, sigma_t: Pascals) -> f64 {
        self.pi_l * sigma_l.value() + self.pi_t * sigma_t.value()
    }

    /// Effective gauge factor K = (ΔR/R)/ε for uniaxial longitudinal stress
    /// in a material with Young's modulus `e` (ε = σ/E).
    #[must_use]
    pub fn gauge_factor(&self, e: Pascals) -> f64 {
        self.pi_l * e.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_sane() {
        for m in [
            Material::silicon_100(),
            Material::silicon_110(),
            Material::silicon_dioxide(),
            Material::silicon_nitride(),
            Material::aluminum(),
            Material::gold(),
            Material::polysilicon(),
        ] {
            assert!(m.youngs_modulus().value() > 1e10, "{}", m.name());
            assert!(m.density().value() > 1000.0, "{}", m.name());
            assert!((0.0..0.5).contains(&m.poisson()), "{}", m.name());
            assert!(m.plate_modulus().value() >= m.youngs_modulus().value());
            assert!(m.biaxial_modulus().value() >= m.plate_modulus().value());
        }
    }

    #[test]
    fn custom_material_validation() {
        let e = Pascals::from_gigapascals(100.0);
        let rho = KgPerM3::new(2000.0);
        assert!(Material::new("x", Pascals::zero(), rho, 0.2).is_err());
        assert!(Material::new("x", e, KgPerM3::new(-1.0), 0.2).is_err());
        assert!(Material::new("x", e, rho, 0.5).is_err());
        assert!(Material::new("x", e, rho, -0.1).is_err());
        assert!(Material::new("x", e, rho, 0.3).is_ok());
    }

    #[test]
    fn p_silicon_gauge_factor_is_textbook_scale() {
        // K = pi_l * E ~ 71.8e-11 * 169e9 ~ 121 — silicon gauges are
        // famously ~2 orders above metal-foil gauges (K ~ 2).
        let k = PiezoCoefficients::p_silicon_110()
            .gauge_factor(Material::silicon_110().youngs_modulus());
        assert!(k > 100.0 && k < 140.0, "gauge factor {k}");
    }

    #[test]
    fn delta_r_sign_conventions() {
        let p = PiezoCoefficients::p_silicon_110();
        // tensile longitudinal stress raises R for p-type
        assert!(p.delta_r_over_r(Pascals::from_megapascals(10.0), Pascals::zero()) > 0.0);
        // tensile transverse stress lowers R for p-type
        assert!(p.delta_r_over_r(Pascals::zero(), Pascals::from_megapascals(10.0)) < 0.0);
        let n = PiezoCoefficients::n_silicon_100();
        assert!(n.delta_r_over_r(Pascals::from_megapascals(10.0), Pascals::zero()) < 0.0);
    }

    #[test]
    fn longitudinal_transverse_pair_cancels_in_sum_for_matched_stress() {
        // The Wheatstone bridge exploits pi_l ~ -pi_t: longitudinal and
        // transverse resistors move oppositely under the same stress.
        let p = PiezoCoefficients::p_silicon_110();
        let s = Pascals::from_megapascals(5.0);
        let dl = p.delta_r_over_r(s, Pascals::zero());
        let dt = p.delta_r_over_r(Pascals::zero(), s);
        assert!(dl * dt < 0.0);
        assert!((dl + dt).abs() < dl.abs() * 0.1, "near-cancellation");
    }
}
