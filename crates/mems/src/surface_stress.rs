//! Static bending from differential surface stress — the paper's Figure 1
//! operating mode.
//!
//! When analyte adsorbs on the functionalized (top) face only, it changes
//! that face's surface stress by Δσₛ (N/m). For a thin beam this is
//! equivalent to a bending moment per unit width
//!
//! ```text
//! M' = Δσₛ · (z_top − z_n)
//! ```
//!
//! applied uniformly along the beam, producing **uniform curvature**
//!
//! ```text
//! κ = Δσₛ · (z_top − z_n) · w / EI
//! ```
//!
//! and a tip deflection δ = κL²/2. For a single-layer beam this reduces to
//! the classic Stoney-type cantilever result δ = 3·Δσₛ·(1 − ν)·L²/(E·t²)
//! (with the biaxial modulus). Because the curvature is uniform, the paper
//! distributes the static-mode Wheatstone bridge along the whole beam
//! length — every segment contributes equal signal.

use canti_units::{Meters, SurfaceStress};

use crate::beam::CompositeBeam;
use crate::error::ensure_position;
use crate::MemsError;

/// Static surface-stress loading of a composite cantilever.
///
/// # Examples
///
/// ```
/// use canti_mems::beam::CompositeBeam;
/// use canti_mems::geometry::CantileverGeometry;
/// use canti_mems::surface_stress::SurfaceStressLoad;
/// use canti_units::SurfaceStress;
///
/// let geom = CantileverGeometry::paper_static()?;
/// let beam = CompositeBeam::new(&geom)?;
/// let load = SurfaceStressLoad::new(&beam);
/// // 5 mN/m (a typical full protein monolayer) bends this beam by ~1 nm —
/// // well within reach of the piezoresistive bridge + chopper amplifier:
/// let tip = load.tip_deflection(SurfaceStress::from_millinewtons_per_meter(5.0));
/// assert!(tip.as_nanometers() > 0.1);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SurfaceStressLoad<'a> {
    beam: &'a CompositeBeam,
}

impl<'a> SurfaceStressLoad<'a> {
    /// Creates a surface-stress load model for `beam`. The stressed face is
    /// the top of the layer stack (the functionalized face).
    #[must_use]
    pub fn new(beam: &'a CompositeBeam) -> Self {
        Self { beam }
    }

    /// Moment arm of the stressed face: z_top − z_n.
    #[must_use]
    pub fn moment_arm(&self) -> Meters {
        self.beam.geometry().total_thickness() - self.beam.neutral_axis()
    }

    /// Uniform curvature κ (1/m) induced by differential surface stress
    /// `sigma` on the top face. Positive stress (tensile on top) bends the
    /// beam upward in this sign convention.
    #[must_use]
    pub fn curvature(&self, sigma: SurfaceStress) -> f64 {
        let w = self.beam.geometry().width().value();
        sigma.value() * self.moment_arm().value() * w / self.beam.flexural_rigidity()
    }

    /// Deflection profile w(ξ) = κ·(ξL)²/2 at normalized position ξ.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for ξ outside `[0, 1]`.
    pub fn deflection(&self, sigma: SurfaceStress, xi: f64) -> Result<Meters, MemsError> {
        ensure_position(xi)?;
        let l = self.beam.geometry().length().value();
        Ok(Meters::new(self.curvature(sigma) * (xi * l).powi(2) / 2.0))
    }

    /// Tip deflection δ = κL²/2.
    #[must_use]
    pub fn tip_deflection(&self, sigma: SurfaceStress) -> Meters {
        let l = self.beam.geometry().length().value();
        Meters::new(self.curvature(sigma) * l * l / 2.0)
    }

    /// Deflection responsivity dδ/dσₛ in meters per (N/m) — a single
    /// figure of merit for static-mode beam design.
    #[must_use]
    pub fn responsivity(&self) -> f64 {
        self.tip_deflection(SurfaceStress::new(1.0)).value()
    }

    /// Minimum detectable surface stress for a given deflection noise
    /// floor.
    #[must_use]
    pub fn min_detectable_stress(&self, deflection_noise: Meters) -> SurfaceStress {
        SurfaceStress::new(deflection_noise.value() / self.responsivity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beam::ElasticModel;
    use crate::geometry::CantileverGeometry;
    use crate::material::Material;

    fn uniform_beam(l_um: f64, w_um: f64, t_um: f64) -> CompositeBeam {
        let g = CantileverGeometry::uniform(
            Meters::from_micrometers(l_um),
            Meters::from_micrometers(w_um),
            Meters::from_micrometers(t_um),
            Material::silicon_110(),
        )
        .unwrap();
        CompositeBeam::with_model(&g, ElasticModel::Beam).unwrap()
    }

    #[test]
    fn stoney_cantilever_formula_single_layer() {
        // Beam model: delta = 3 sigma L^2 / (E t^2)
        let beam = uniform_beam(500.0, 100.0, 5.0);
        let load = SurfaceStressLoad::new(&beam);
        let sigma = SurfaceStress::from_millinewtons_per_meter(5.0);
        let e = Material::silicon_110().youngs_modulus().value();
        let expected = 3.0 * sigma.value() * (500e-6f64).powi(2) / (e * (5e-6f64).powi(2));
        let tip = load.tip_deflection(sigma).value();
        assert!(
            (tip - expected).abs() / expected < 1e-12,
            "tip {tip}, Stoney {expected}"
        );
    }

    #[test]
    fn deflection_quadratic_in_position() {
        let beam = uniform_beam(500.0, 100.0, 5.0);
        let load = SurfaceStressLoad::new(&beam);
        let sigma = SurfaceStress::from_millinewtons_per_meter(1.0);
        let half = load.deflection(sigma, 0.5).unwrap().value();
        let full = load.deflection(sigma, 1.0).unwrap().value();
        assert!((full / half - 4.0).abs() < 1e-12, "w ~ xi^2");
        assert_eq!(load.deflection(sigma, 0.0).unwrap().value(), 0.0);
        assert!(load.deflection(sigma, 1.1).is_err());
    }

    #[test]
    fn deflection_linear_in_stress() {
        let beam = uniform_beam(500.0, 100.0, 5.0);
        let load = SurfaceStressLoad::new(&beam);
        let d1 = load
            .tip_deflection(SurfaceStress::from_millinewtons_per_meter(1.0))
            .value();
        let d5 = load
            .tip_deflection(SurfaceStress::from_millinewtons_per_meter(5.0))
            .value();
        assert!((d5 / d1 - 5.0).abs() < 1e-12);
        // negative (compressive) stress bends the other way
        let dn = load
            .tip_deflection(SurfaceStress::from_millinewtons_per_meter(-1.0))
            .value();
        assert!((dn + d1).abs() < 1e-18);
    }

    #[test]
    fn longer_thinner_beams_are_more_responsive() {
        let short = uniform_beam(200.0, 100.0, 5.0);
        let long = uniform_beam(500.0, 100.0, 5.0);
        let thick = uniform_beam(500.0, 100.0, 8.0);
        assert!(
            SurfaceStressLoad::new(&long).responsivity()
                > SurfaceStressLoad::new(&short).responsivity()
        );
        assert!(
            SurfaceStressLoad::new(&long).responsivity()
                > SurfaceStressLoad::new(&thick).responsivity()
        );
    }

    #[test]
    fn responsivity_independent_of_width_for_uniform_beam() {
        // sigma enters per width; EI ~ width -> width cancels.
        let narrow = uniform_beam(500.0, 50.0, 5.0);
        let wide = uniform_beam(500.0, 150.0, 5.0);
        let rn = SurfaceStressLoad::new(&narrow).responsivity();
        let rw = SurfaceStressLoad::new(&wide).responsivity();
        assert!((rn - rw).abs() / rn < 1e-12);
    }

    #[test]
    fn min_detectable_stress_inverse_of_responsivity() {
        let beam = uniform_beam(500.0, 100.0, 5.0);
        let load = SurfaceStressLoad::new(&beam);
        let noise = Meters::from_nanometers(1.0);
        let sigma_min = load.min_detectable_stress(noise);
        let check = load.tip_deflection(sigma_min).value();
        assert!((check - 1e-9).abs() / 1e-9 < 1e-12);
        // single-digit mN/m resolution for 1 nm deflection noise on this beam
        assert!(sigma_min.as_millinewtons_per_meter() < 10.0);
    }

    #[test]
    fn moment_arm_for_uniform_beam_is_half_thickness() {
        let beam = uniform_beam(500.0, 100.0, 5.0);
        let load = SurfaceStressLoad::new(&beam);
        assert!((load.moment_arm().as_micrometers() - 2.5).abs() < 1e-12);
    }
}
