//! Lorentz-force actuation: the on-chip coil driven against the package
//! magnet.
//!
//! The paper actuates the resonant cantilever with "a coil along the
//! cantilever edges, driven by a periodic electric current" in the field of
//! "a permanent magnet, integrated in the package". With the magnet's field
//! **B** in the chip plane along the beam axis, the current in the coil's
//! *transverse* segments (the ones running across the beam near the tip)
//! experiences a vertical Lorentz force F = N·B·I·w — exactly the force a
//! tip-load wants to be.

use canti_units::{Amperes, Meters, Newtons, Ohms, Tesla, Volts, Watts};

use crate::error::ensure_positive;
use crate::geometry::CantileverGeometry;
use crate::MemsError;

/// Resistivity of sputtered aluminum interconnect, Ω·m.
const ALUMINUM_RESISTIVITY: f64 = 2.8e-8;

/// Conservative DC electromigration current-density limit for Al, A/m².
const ELECTROMIGRATION_LIMIT: f64 = 2.0e9;

/// A planar rectangular actuation coil routed along the cantilever edges.
///
/// # Examples
///
/// ```
/// use canti_mems::actuation::LorentzCoil;
/// use canti_mems::geometry::CantileverGeometry;
/// use canti_units::{Amperes, Tesla};
///
/// let geom = CantileverGeometry::paper_resonant()?;
/// let coil = LorentzCoil::paper_coil(&geom)?;
/// let f = coil.force(Tesla::new(0.25), Amperes::from_milliamps(1.0));
/// // ~100 nN of drive force:
/// assert!(f.value() > 1e-8 && f.value() < 1e-6);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LorentzCoil {
    turns: u32,
    track_width: Meters,
    track_thickness: Meters,
    transverse_length: Meters,
    total_track_length: Meters,
}

impl LorentzCoil {
    /// Creates a coil from explicit routing numbers.
    ///
    /// `transverse_length` is the force-generating width of one transverse
    /// segment; `total_track_length` the full routed length (for
    /// resistance).
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] if any dimension is not strictly positive or
    /// `turns` is zero.
    pub fn new(
        turns: u32,
        track_width: Meters,
        track_thickness: Meters,
        transverse_length: Meters,
        total_track_length: Meters,
    ) -> Result<Self, MemsError> {
        if turns == 0 {
            return Err(MemsError::NonPositive {
                what: "coil turns",
                value: 0.0,
            });
        }
        ensure_positive("track width", track_width.value())?;
        ensure_positive("track thickness", track_thickness.value())?;
        ensure_positive("transverse length", transverse_length.value())?;
        ensure_positive("total track length", total_track_length.value())?;
        Ok(Self {
            turns,
            track_width,
            track_thickness,
            transverse_length,
            total_track_length,
        })
    }

    /// The coil the paper implies: 3 turns of 2 µm-wide, 0.6 µm-thick metal
    /// routed along the edges of `geometry`, with the transverse segments
    /// spanning 90 % of the beam width.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] for degenerate geometry.
    pub fn paper_coil(geometry: &CantileverGeometry) -> Result<Self, MemsError> {
        let turns = 3u32;
        let transverse = geometry.width() * 0.9;
        let loop_len = 2.0 * (geometry.length().value() + geometry.width().value());
        Self::new(
            turns,
            Meters::from_micrometers(2.0),
            Meters::from_micrometers(0.6),
            transverse,
            Meters::new(f64::from(turns) * loop_len),
        )
    }

    /// Number of turns.
    #[must_use]
    pub fn turns(&self) -> u32 {
        self.turns
    }

    /// Vertical Lorentz force on the beam tip region:
    /// F = N·B·I·L_transverse.
    #[must_use]
    pub fn force(&self, field: Tesla, current: Amperes) -> Newtons {
        Newtons::new(
            f64::from(self.turns)
                * field.value()
                * current.value()
                * self.transverse_length.value(),
        )
    }

    /// Force responsivity dF/dI in N/A at the given field.
    #[must_use]
    pub fn force_per_ampere(&self, field: Tesla) -> f64 {
        f64::from(self.turns) * field.value() * self.transverse_length.value()
    }

    /// DC resistance of the full coil track.
    #[must_use]
    pub fn resistance(&self) -> Ohms {
        let cross_section = self.track_width.value() * self.track_thickness.value();
        Ohms::new(ALUMINUM_RESISTIVITY * self.total_track_length.value() / cross_section)
    }

    /// Ohmic power dissipated at drive current `i`.
    #[must_use]
    pub fn power(&self, i: Amperes) -> Watts {
        (self.resistance() * i) * i
    }

    /// Voltage across the coil at drive current `i` — what the class-AB
    /// output buffer must deliver into this deliberately low resistance.
    #[must_use]
    pub fn voltage(&self, i: Amperes) -> Volts {
        self.resistance() * i
    }

    /// Maximum safe drive current set by the aluminum electromigration
    /// limit.
    #[must_use]
    pub fn max_current(&self) -> Amperes {
        Amperes::new(
            ELECTROMIGRATION_LIMIT * self.track_width.value() * self.track_thickness.value(),
        )
    }

    /// Steady-state self-heating ΔT = P·R_th for a thermal resistance
    /// `r_th_kelvin_per_watt` from the beam to the substrate.
    #[must_use]
    pub fn self_heating_kelvin(&self, i: Amperes, r_th_kelvin_per_watt: f64) -> f64 {
        self.power(i).value() * r_th_kelvin_per_watt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coil() -> LorentzCoil {
        LorentzCoil::paper_coil(&CantileverGeometry::paper_resonant().unwrap()).unwrap()
    }

    #[test]
    fn force_scale_and_linearity() {
        let c = coil();
        let b = Tesla::new(0.25);
        let f1 = c.force(b, Amperes::from_milliamps(1.0));
        // 3 turns x 0.25 T x 1 mA x 126 um = 94.5 nN
        assert!((f1.value() - 9.45e-8).abs() / 9.45e-8 < 1e-9, "{f1}");
        let f2 = c.force(b, Amperes::from_milliamps(2.0));
        assert!((f2.value() / f1.value() - 2.0).abs() < 1e-12);
        // doubling the field doubles the force
        let fb = c.force(Tesla::new(0.5), Amperes::from_milliamps(1.0));
        assert!((fb.value() / f1.value() - 2.0).abs() < 1e-12);
        // force_per_ampere consistent
        assert!((c.force_per_ampere(b) * 1e-3 - f1.value()).abs() < 1e-18);
    }

    #[test]
    fn coil_resistance_is_low() {
        // The paper drives "the low-resistance coil via a class AB output
        // buffer" — tens of ohms, not kiloohms.
        let r = coil().resistance().value();
        assert!(r > 5.0 && r < 100.0, "coil resistance {r} ohm");
    }

    #[test]
    fn electromigration_limit_milliamp_scale() {
        let imax = coil().max_current();
        assert!(
            imax.value() > 1e-3 && imax.value() < 1e-2,
            "EM limit {imax} should be a few mA"
        );
    }

    #[test]
    fn power_quadratic_in_current() {
        let c = coil();
        let p1 = c.power(Amperes::from_milliamps(1.0)).value();
        let p2 = c.power(Amperes::from_milliamps(2.0)).value();
        assert!((p2 / p1 - 4.0).abs() < 1e-12);
        // sub-milliwatt at 1 mA
        assert!(p1 < 1e-3, "power {p1}");
        let v = c.voltage(Amperes::from_milliamps(1.0));
        assert!((v.value() - c.resistance().value() * 1e-3).abs() < 1e-15);
    }

    #[test]
    fn self_heating_sane() {
        // 1 mA through ~30 ohm = 30 uW; with 1e4 K/W thermal resistance
        // that is ~0.3 K — negligible, as a working sensor needs.
        let dt = coil().self_heating_kelvin(Amperes::from_milliamps(1.0), 1e4);
        assert!(dt < 1.0, "self heating {dt} K");
    }

    #[test]
    fn validation() {
        let w = Meters::from_micrometers(2.0);
        let t = Meters::from_micrometers(0.6);
        let tl = Meters::from_micrometers(100.0);
        let total = Meters::from_micrometers(1000.0);
        assert!(LorentzCoil::new(0, w, t, tl, total).is_err());
        assert!(LorentzCoil::new(3, Meters::zero(), t, tl, total).is_err());
        assert!(LorentzCoil::new(3, w, t, tl, Meters::zero()).is_err());
    }
}
