//! Cantilever plan geometry and layer stack.
//!
//! The paper's beams are released from the CMOS wafer: the electrochemical
//! etch-stop on the n-well junction defines a crystalline-silicon core of
//! well-controlled thickness, and the front-side etches free a rectangular
//! plate that may still carry dielectric, metal (the coil) and a gold
//! functionalization film.

use canti_units::{KgPerM2, Meters, SquareMeters};

use crate::error::ensure_positive;
use crate::material::Material;
use crate::MemsError;

/// One layer of the released stack, bottom-up order.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// The layer's structural material.
    pub material: Material,
    /// Layer thickness.
    pub thickness: Meters,
}

impl Layer {
    /// Creates a layer.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] unless the thickness is strictly positive.
    pub fn new(material: Material, thickness: Meters) -> Result<Self, MemsError> {
        ensure_positive("layer thickness", thickness.value())?;
        Ok(Self {
            material,
            thickness,
        })
    }
}

/// The full cantilever description: plan dimensions plus the layer stack.
///
/// # Examples
///
/// ```
/// use canti_mems::geometry::CantileverGeometry;
///
/// let g = CantileverGeometry::paper_static()?;
/// assert!(g.total_thickness().as_micrometers() > 1.0);
/// assert!(g.plan_area().value() > 0.0);
/// # Ok::<(), canti_mems::MemsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CantileverGeometry {
    length: Meters,
    width: Meters,
    layers: Vec<Layer>,
}

impl CantileverGeometry {
    /// Creates a cantilever from plan dimensions and a bottom-up layer
    /// stack.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] if length/width are not strictly positive or
    /// the stack is empty.
    pub fn new(length: Meters, width: Meters, layers: Vec<Layer>) -> Result<Self, MemsError> {
        ensure_positive("cantilever length", length.value())?;
        ensure_positive("cantilever width", width.value())?;
        if layers.is_empty() {
            return Err(MemsError::EmptyStack);
        }
        Ok(Self {
            length,
            width,
            layers,
        })
    }

    /// The paper's static-mode beam: long and soft for maximum
    /// surface-stress deflection. 500 µm × 100 µm, 5 µm n-well silicon core
    /// with a 20 nm gold functionalization film.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` mirrors [`Self::new`].
    pub fn paper_static() -> Result<Self, MemsError> {
        Self::new(
            Meters::from_micrometers(500.0),
            Meters::from_micrometers(100.0),
            vec![
                Layer::new(Material::silicon_110(), Meters::from_micrometers(5.0))?,
                Layer::new(Material::gold(), Meters::from_nanometers(20.0))?,
            ],
        )
    }

    /// The paper's resonant-mode beam: shorter and stiffer for a clean
    /// high-Q resonance. 150 µm × 140 µm, 5 µm silicon core, 1 µm oxide
    /// with the 0.6 µm aluminum coil on top, 20 nm gold film.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` mirrors [`Self::new`].
    pub fn paper_resonant() -> Result<Self, MemsError> {
        Self::new(
            Meters::from_micrometers(150.0),
            Meters::from_micrometers(140.0),
            vec![
                Layer::new(Material::silicon_110(), Meters::from_micrometers(5.0))?,
                Layer::new(Material::silicon_dioxide(), Meters::from_micrometers(1.0))?,
                Layer::new(Material::aluminum(), Meters::from_micrometers(0.6))?,
                Layer::new(Material::gold(), Meters::from_nanometers(20.0))?,
            ],
        )
    }

    /// A bare single-material beam — handy for textbook cross-checks.
    ///
    /// # Errors
    ///
    /// Returns [`MemsError`] on non-positive dimensions.
    pub fn uniform(
        length: Meters,
        width: Meters,
        thickness: Meters,
        material: Material,
    ) -> Result<Self, MemsError> {
        Self::new(length, width, vec![Layer::new(material, thickness)?])
    }

    /// Beam length from clamp to free end.
    #[must_use]
    pub fn length(&self) -> Meters {
        self.length
    }

    /// Beam width.
    #[must_use]
    pub fn width(&self) -> Meters {
        self.width
    }

    /// The layer stack, bottom-up.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total stack thickness.
    #[must_use]
    pub fn total_thickness(&self) -> Meters {
        self.layers.iter().map(|l| l.thickness).sum()
    }

    /// Plan-view area (length × width) — the functionalized face area.
    #[must_use]
    pub fn plan_area(&self) -> SquareMeters {
        self.length * self.width
    }

    /// Mass per unit plan area of the stack, Σ ρᵢ·tᵢ.
    #[must_use]
    pub fn areal_mass(&self) -> KgPerM2 {
        KgPerM2::new(
            self.layers
                .iter()
                .map(|l| l.material.density().value() * l.thickness.value())
                .sum(),
        )
    }

    /// Total beam mass.
    #[must_use]
    pub fn mass(&self) -> canti_units::Kilograms {
        self.areal_mass() * self.plan_area()
    }

    /// Returns a copy with the silicon core thickness replaced — the knob
    /// the electrochemical etch-stop controls. Layers whose material name
    /// starts with `"Si <"` (crystalline silicon) are rescaled.
    #[must_use]
    pub fn with_core_thickness(&self, thickness: Meters) -> Self {
        let mut out = self.clone();
        for layer in &mut out.layers {
            if layer.material.name().starts_with("Si <") {
                layer.thickness = thickness;
            }
        }
        out
    }
}

impl std::fmt::Display for CantileverGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0} um x {:.0} um cantilever, {} layer(s), t = {:.2} um",
            self.length.as_micrometers(),
            self.width.as_micrometers(),
            self.layers.len(),
            self.total_thickness().as_micrometers()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_valid() {
        let s = CantileverGeometry::paper_static().unwrap();
        assert_eq!(s.layers().len(), 2);
        assert!((s.total_thickness().as_micrometers() - 5.02).abs() < 0.01);
        let r = CantileverGeometry::paper_resonant().unwrap();
        assert_eq!(r.layers().len(), 4);
        assert!(r.length() < s.length(), "resonant beam is shorter");
    }

    #[test]
    fn validation() {
        let si = Material::silicon_110();
        assert!(Layer::new(si.clone(), Meters::zero()).is_err());
        assert!(CantileverGeometry::new(
            Meters::from_micrometers(100.0),
            Meters::from_micrometers(50.0),
            vec![]
        )
        .is_err());
        assert!(CantileverGeometry::uniform(
            Meters::zero(),
            Meters::from_micrometers(50.0),
            Meters::from_micrometers(2.0),
            si
        )
        .is_err());
    }

    #[test]
    fn mass_of_uniform_silicon_beam() {
        // 100 x 50 x 2 um Si: V = 1e-14 m^3, m = 2330 * 1e-14 = 2.33e-11 kg
        let g = CantileverGeometry::uniform(
            Meters::from_micrometers(100.0),
            Meters::from_micrometers(50.0),
            Meters::from_micrometers(2.0),
            Material::silicon_110(),
        )
        .unwrap();
        let m = g.mass().value();
        assert!((m - 2.33e-11).abs() / 2.33e-11 < 1e-9, "mass {m}");
    }

    #[test]
    fn areal_mass_sums_layers() {
        let g = CantileverGeometry::paper_resonant().unwrap();
        let expected = 2330.0 * 5e-6 + 2200.0 * 1e-6 + 2700.0 * 0.6e-6 + 19_300.0 * 20e-9;
        assert!((g.areal_mass().value() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn core_thickness_override() {
        let g = CantileverGeometry::paper_resonant().unwrap();
        let thicker = g.with_core_thickness(Meters::from_micrometers(6.5));
        assert!(
            (thicker.total_thickness().value() - g.total_thickness().value() - 1.5e-6).abs()
                < 1e-12
        );
        // non-silicon layers untouched
        assert_eq!(thicker.layers()[1], g.layers()[1]);
    }

    #[test]
    fn display() {
        let g = CantileverGeometry::paper_static().unwrap();
        let s = g.to_string();
        assert!(s.contains("500 um x 100 um"), "{s}");
    }
}
