//! Property-based tests of the beam-mechanics scaling laws.
//!
//! These pin the *structure* of the physics: how outputs must scale when a
//! single geometric knob turns, independent of absolute calibration.

use canti_mems::beam::{CompositeBeam, ElasticModel};
use canti_mems::geometry::CantileverGeometry;
use canti_mems::material::Material;
use canti_mems::surface_stress::SurfaceStressLoad;
use canti_units::{Meters, SurfaceStress};
use proptest::prelude::*;

fn beam(l_um: f64, w_um: f64, t_um: f64) -> CompositeBeam {
    let g = CantileverGeometry::uniform(
        Meters::from_micrometers(l_um),
        Meters::from_micrometers(w_um),
        Meters::from_micrometers(t_um),
        Material::silicon_110(),
    )
    .expect("valid geometry");
    CompositeBeam::with_model(&g, ElasticModel::Beam).expect("valid beam")
}

fn dims() -> impl Strategy<Value = (f64, f64, f64)> {
    (50.0f64..1000.0, 20.0f64..300.0, 1.0f64..10.0)
}

proptest! {
    #[test]
    fn spring_constant_scales_with_cube_of_thickness((l, w, t) in dims()) {
        let k1 = beam(l, w, t).spring_constant().value();
        let k2 = beam(l, w, 2.0 * t).spring_constant().value();
        prop_assert!((k2 / k1 - 8.0).abs() < 1e-9, "k ~ t^3: ratio {}", k2 / k1);
    }

    #[test]
    fn spring_constant_scales_inverse_cube_of_length((l, w, t) in dims()) {
        let k1 = beam(l, w, t).spring_constant().value();
        let k2 = beam(2.0 * l, w, t).spring_constant().value();
        prop_assert!((k1 / k2 - 8.0).abs() < 1e-9, "k ~ 1/L^3");
    }

    #[test]
    fn spring_constant_linear_in_width((l, w, t) in dims()) {
        let k1 = beam(l, w, t).spring_constant().value();
        let k2 = beam(l, 2.0 * w, t).spring_constant().value();
        prop_assert!((k2 / k1 - 2.0).abs() < 1e-9, "k ~ w");
    }

    #[test]
    fn frequency_scales_with_thickness_over_length_squared((l, w, t) in dims()) {
        let f1 = beam(l, w, t).fundamental_frequency().value();
        let f2 = beam(l, w, 2.0 * t).fundamental_frequency().value();
        prop_assert!((f2 / f1 - 2.0).abs() < 1e-9, "f ~ t");
        let f3 = beam(2.0 * l, w, t).fundamental_frequency().value();
        prop_assert!((f1 / f3 - 4.0).abs() < 1e-9, "f ~ 1/L^2");
        // width cancels entirely
        let f4 = beam(l, 3.0 * w, t).fundamental_frequency().value();
        prop_assert!((f4 / f1 - 1.0).abs() < 1e-9, "f independent of w");
    }

    #[test]
    fn stoney_responsivity_scales((l, w, t) in dims()) {
        let sigma = SurfaceStress::from_millinewtons_per_meter(1.0);
        let b1 = beam(l, w, t);
        let b2 = beam(2.0 * l, w, t);
        let b3 = beam(l, w, 2.0 * t);
        let d1 = SurfaceStressLoad::new(&b1).tip_deflection(sigma).value();
        let d2 = SurfaceStressLoad::new(&b2).tip_deflection(sigma).value();
        let d3 = SurfaceStressLoad::new(&b3).tip_deflection(sigma).value();
        prop_assert!((d2 / d1 - 4.0).abs() < 1e-9, "delta ~ L^2");
        prop_assert!((d1 / d3 - 4.0).abs() < 1e-9, "delta ~ 1/t^2");
    }

    #[test]
    fn mode_frequencies_strictly_ordered((l, w, t) in dims()) {
        let b = beam(l, w, t);
        let mut prev = 0.0;
        for n in 1..=6 {
            let f = b.mode_frequency(n).unwrap().value();
            prop_assert!(f > prev, "mode {n} must be above mode {}", n - 1);
            prev = f;
        }
    }

    #[test]
    fn mass_and_meff_positive_and_ordered((l, w, t) in dims()) {
        let b = beam(l, w, t);
        let m = b.mass().value();
        let m_eff = b.effective_mass(1).unwrap().value();
        prop_assert!(m > 0.0);
        prop_assert!(m_eff > 0.0 && m_eff < m, "m_eff must be a fraction of m");
    }

    #[test]
    fn mode_shape_monotone_for_mode1((l, w, t) in dims(), xi in 0.01f64..1.0) {
        let b = beam(l, w, t);
        let phi = b.mode_shape(1, xi).unwrap();
        let phi_prev = b.mode_shape(1, xi * 0.9).unwrap();
        prop_assert!(phi > phi_prev, "mode-1 shape rises monotonically");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&phi));
    }
}
