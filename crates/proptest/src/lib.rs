//! Minimal in-workspace property-testing harness exposing the slice of the
//! `proptest` macro surface the canti test suites use.
//!
//! The build environment has no crates.io access, so this crate provides a
//! deterministic stand-in: [`Strategy`] over ranges/tuples/`prop_map`/
//! `collection::vec`, and the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`]/[`prop_assume!`] macros. Each test runs
//! `PROPTEST_CASES` (default 64) seeded cases derived from the test's own
//! name via ChaCha8, so failures are reproducible run-to-run and
//! machine-to-machine. There is no shrinking: the panic message reports
//! the case seed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Outcome of one generated test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
}

impl TestCaseError {
    /// Builds a failure from anything string-like.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Blanket impl so `impl Strategy` return values can be passed by
/// reference too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i32, i64);

/// A strategy producing always the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut ChaCha8Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (the [`prop_oneof!`]
/// macro's backing type).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds a union from pre-boxed strategies.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof!: no options");
        Self { options }
    }
}

impl<T> std::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} options)", self.options.len())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy for use in [`OneOf`] (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Draws from one of several strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{ChaCha8Rng, Range, Strategy};
    use rand::Rng;

    /// A strategy producing `Vec`s of `elem` with a length drawn from
    /// `len` (half-open, like proptest's size ranges).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of values from `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec strategy: empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// FNV-1a over a byte string — stable per-test seed derivation.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-property configuration (mirrors the upstream struct's surface the
/// canti suites use).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives one property: runs seeded cases until `PROPTEST_CASES` (default
/// 64) accepted cases pass, panicking with the case seed on failure.
///
/// # Panics
///
/// Panics when a case fails or when `prop_assume!` rejects too many
/// candidate cases (16× the case budget).
pub fn run_cases<F>(name: &str, case: F)
where
    F: FnMut(&mut ChaCha8Rng) -> Result<(), TestCaseError>,
{
    run_cases_with(name, &ProptestConfig::default(), case);
}

/// [`run_cases`] with an explicit [`ProptestConfig`].
///
/// # Panics
///
/// Panics when a case fails or when `prop_assume!` rejects too many
/// candidate cases (16× the case budget).
pub fn run_cases_with<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut ChaCha8Rng) -> Result<(), TestCaseError>,
{
    let cases = u64::from(config.cases);
    let base = fnv1a(name.as_bytes());
    let mut accepted = 0u64;
    let mut attempt = 0u64;
    let max_attempts = cases * 16;
    while accepted < cases {
        assert!(
            attempt < max_attempts,
            "property {name}: gave up after {attempt} attempts \
             ({accepted}/{cases} cases accepted) — prop_assume! rejects too much"
        );
        let seed = base.wrapping_add(attempt);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case seed {seed:#x}: {msg}")
            }
        }
        attempt += 1;
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running seeded cases through [`run_cases`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases_with(stringify!($name), &($config), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        // bind first: negating the raw expression trips clippy's
        // neg_cmp_op_on_partial_ord on float comparisons
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {{
        let holds: bool = $cond;
        if !holds {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    }};
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0.0f64..1.0, 5u64..10), n in 1usize..4) {
            prop_assert!((0.0..1.0).contains(&a), "a = {a}");
            prop_assert!((5..10).contains(&b));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn mapped_strategy(x in (1.0f64..2.0).prop_map(|v| v * 10.0)) {
            prop_assert!((10.0..20.0).contains(&x));
        }

        #[test]
        fn vec_strategy(v in prop::collection::vec(0.0f64..1e3, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| (0.0..1e3).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.25);
            prop_assert!(x > 0.25);
        }
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("always_fails", |_rng| {
                Err(crate::TestCaseError::fail("deliberate"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("deliberate") && msg.contains("case seed"),
            "{msg}"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let mut first = Vec::new();
        crate::run_cases("capture", |rng| {
            first.push(crate::Strategy::generate(&(0.0f64..1.0), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("capture", |rng| {
            second.push(crate::Strategy::generate(&(0.0f64..1.0), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
