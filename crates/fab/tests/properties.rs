//! Property-based tests for the fabrication substrate.

use canti_fab::cost::CostModel;
use canti_fab::layout::Rect;
use canti_fab::process::{PostCmosFlow, WaferSpec};
use canti_fab::variation::{Distribution, MonteCarlo, Stats};
use canti_units::Meters;
use proptest::prelude::*;

fn rect() -> impl Strategy<Value = Rect> {
    (
        -100_000i64..100_000,
        -100_000i64..100_000,
        1i64..50_000,
        1i64..50_000,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h).expect("valid"))
}

proptest! {
    /// Geometric predicates are symmetric/consistent.
    #[test]
    fn rect_predicates_consistent(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        prop_assert_eq!(a.spacing(&b), b.spacing(&a));
        prop_assert_eq!(a.intersection(&b).is_some(), a.intersects(&b));
        // overlap and positive spacing are mutually exclusive
        if a.intersects(&b) {
            prop_assert_eq!(a.spacing(&b), 0);
        }
        // containment implies non-negative enclosure margin and intersection
        if a.contains(&b) {
            prop_assert!(a.enclosure_margin(&b) >= 0);
            prop_assert!(a.intersects(&b));
        }
    }

    /// The intersection is contained in both operands and commutative.
    #[test]
    fn rect_intersection_contained(a in rect(), b in rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert_eq!(Some(i), b.intersection(&a));
            prop_assert!(i.area() <= a.area().min(b.area()));
        }
    }

    /// Expanding by m then checking enclosure of the original gives exactly m.
    #[test]
    fn rect_expand_enclosure(a in rect(), m in 1i64..10_000) {
        let grown = a.expanded(m).expect("grows");
        prop_assert_eq!(grown.enclosure_margin(&a), m);
        prop_assert!(grown.contains(&a));
    }

    /// Cost per good die decreases monotonically with volume and yield.
    #[test]
    fn cost_monotone(v1 in 100u64..1_000_000, factor in 2u64..100) {
        let m = CostModel::wafer_level();
        let c1 = m.cost_per_good_die(v1).expect("cost");
        let c2 = m.cost_per_good_die(v1 * factor).expect("cost");
        prop_assert!(c2 <= c1 + 1e-12);

        let mut better_yield = m;
        better_yield.yield_fraction = (m.yield_fraction + 0.1).min(1.0);
        prop_assert!(
            better_yield.cost_per_good_die(v1).expect("cost") <= c1 + 1e-12
        );
    }

    /// The electrochemical etch-stop pins beam thickness to n-well depth
    /// regardless of wafer thickness.
    #[test]
    fn etch_stop_thickness_equals_nwell(
        nwell_um in 1.0f64..20.0,
        wafer_um in 300.0f64..700.0,
    ) {
        let mut spec = WaferSpec::nominal();
        spec.nwell_depth = Meters::from_micrometers(nwell_um);
        spec.wafer_thickness = Meters::from_micrometers(wafer_um);
        let r = PostCmosFlow::paper().run(&spec).expect("flow");
        prop_assert!((r.beam_thickness.as_micrometers() - nwell_um).abs() < 1e-9);
    }

    /// Monte-Carlo sample statistics match the requested distribution.
    #[test]
    fn normal_mc_statistics(mean in -10.0f64..10.0, sigma in 0.01f64..2.0, seed in 0u64..50) {
        let mc = MonteCarlo::new(seed, 4000).expect("mc");
        let d = Distribution::Normal { mean, sigma };
        let stats = mc.run_stats(|rng, _| d.sample(rng)).expect("stats");
        prop_assert!((stats.mean - mean).abs() < 5.0 * sigma / (4000f64).sqrt() + 1e-9);
        prop_assert!((stats.std_dev - sigma).abs() / sigma < 0.1);
    }

    /// Uniform samples stay in bounds, and Stats min/max bracket the mean.
    #[test]
    fn uniform_mc_bounds(lo in -5.0f64..0.0, width in 0.1f64..10.0, seed in 0u64..50) {
        let hi = lo + width;
        let mc = MonteCarlo::new(seed, 500).expect("mc");
        let d = Distribution::Uniform { lo, hi };
        let samples = mc.run(|rng, _| d.sample(rng));
        prop_assert!(samples.iter().all(|&x| x >= lo && x < hi));
        let stats = Stats::of(&samples).expect("stats");
        prop_assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }
}
