//! Design-rule checking: the paper's headline EDA claim made executable.
//!
//! "The design of the three additional mask layers is completely integrated
//! in the physical design flow of the CMOS technology, so that the physical
//! design verification, e.g., design-rule checks, can be performed with
//! respect to the CMOS layers." — this module is that runset: a rule deck
//! whose MEMS rules reference n-well, metal and the etch masks together.

use crate::layers::MaskLayer;
use crate::layout::{Cell, Rect};

/// One design rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// Every shape on `layer` must be at least `min_nm` wide in its
    /// narrow direction.
    MinWidth {
        /// The checked layer.
        layer: MaskLayer,
        /// Minimum width, nm.
        min_nm: i64,
    },
    /// Disjoint same-layer shapes must be at least `min_nm` apart.
    MinSpacing {
        /// The checked layer.
        layer: MaskLayer,
        /// Minimum spacing, nm.
        min_nm: i64,
    },
    /// Every `inner` shape must be enclosed by some `outer` shape with at
    /// least `min_nm` margin on all sides.
    Enclosure {
        /// The enclosed layer.
        inner: MaskLayer,
        /// The enclosing layer.
        outer: MaskLayer,
        /// Minimum margin, nm.
        min_nm: i64,
    },
    /// Shapes on `a` must not overlap shapes on `b`.
    NoOverlap {
        /// First layer.
        a: MaskLayer,
        /// Second layer.
        b: MaskLayer,
    },
}

impl Rule {
    /// Short runset-style description.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::MinWidth { layer, min_nm } => {
                format!("{layer}.W >= {:.2} um", *min_nm as f64 / 1000.0)
            }
            Self::MinSpacing { layer, min_nm } => {
                format!("{layer}.S >= {:.2} um", *min_nm as f64 / 1000.0)
            }
            Self::Enclosure {
                inner,
                outer,
                min_nm,
            } => format!(
                "{outer} encloses {inner} >= {:.2} um",
                *min_nm as f64 / 1000.0
            ),
            Self::NoOverlap { a, b } => format!("{a} not over {b}"),
        }
    }
}

/// A rule violation with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated rule's description.
    pub rule: String,
    /// Where (a shape or the gap region's bounding box).
    pub location: Rect,
    /// Measured value vs required, nm (e.g. actual width / spacing /
    /// margin).
    pub measured_nm: i64,
    /// Required value, nm (0 for boolean rules).
    pub required_nm: i64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at {} (measured {:.2} um, required {:.2} um)",
            self.rule,
            self.location,
            self.measured_nm as f64 / 1000.0,
            self.required_nm as f64 / 1000.0
        )
    }
}

/// An ordered collection of rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleDeck {
    rules: Vec<Rule>,
}

impl RuleDeck {
    /// An empty deck.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The rules.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Runs every rule over `cell`, returning all violations.
    #[must_use]
    pub fn run(&self, cell: &Cell) -> Vec<Violation> {
        let mut out = Vec::new();
        for rule in &self.rules {
            match rule {
                Rule::MinWidth { layer, min_nm } => {
                    for r in cell.shapes_on(*layer) {
                        if r.min_dimension() < *min_nm {
                            out.push(Violation {
                                rule: rule.describe(),
                                location: *r,
                                measured_nm: r.min_dimension(),
                                required_nm: *min_nm,
                            });
                        }
                    }
                }
                Rule::MinSpacing { layer, min_nm } => {
                    let shapes = cell.shapes_on(*layer);
                    for i in 0..shapes.len() {
                        for j in i + 1..shapes.len() {
                            let s = shapes[i].spacing(&shapes[j]);
                            if s > 0 && s < *min_nm {
                                let bb = Rect {
                                    x0: shapes[i].x0.min(shapes[j].x0),
                                    y0: shapes[i].y0.min(shapes[j].y0),
                                    x1: shapes[i].x1.max(shapes[j].x1),
                                    y1: shapes[i].y1.max(shapes[j].y1),
                                };
                                out.push(Violation {
                                    rule: rule.describe(),
                                    location: bb,
                                    measured_nm: s,
                                    required_nm: *min_nm,
                                });
                            }
                        }
                    }
                }
                Rule::Enclosure {
                    inner,
                    outer,
                    min_nm,
                } => {
                    for r in cell.shapes_on(*inner) {
                        let best = cell
                            .shapes_on(*outer)
                            .iter()
                            .map(|o| o.enclosure_margin(r))
                            .max()
                            .unwrap_or(i64::MIN);
                        if best < *min_nm {
                            out.push(Violation {
                                rule: rule.describe(),
                                location: *r,
                                measured_nm: best.max(-1),
                                required_nm: *min_nm,
                            });
                        }
                    }
                }
                Rule::NoOverlap { a, b } => {
                    for ra in cell.shapes_on(*a) {
                        for rb in cell.shapes_on(*b) {
                            if let Some(i) = ra.intersection(rb) {
                                out.push(Violation {
                                    rule: rule.describe(),
                                    location: i,
                                    measured_nm: i.min_dimension(),
                                    required_nm: 0,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Core CMOS rules of the 0.8 µm process (the subset relevant near the
/// MEMS structures).
#[must_use]
pub fn cmos_core_rules() -> RuleDeck {
    let mut deck = RuleDeck::new();
    deck.push(Rule::MinWidth {
        layer: MaskLayer::Metal1,
        min_nm: 1200,
    })
    .push(Rule::MinSpacing {
        layer: MaskLayer::Metal1,
        min_nm: 1200,
    })
    .push(Rule::MinWidth {
        layer: MaskLayer::Metal2,
        min_nm: 1600,
    })
    .push(Rule::MinSpacing {
        layer: MaskLayer::Metal2,
        min_nm: 1600,
    })
    .push(Rule::MinWidth {
        layer: MaskLayer::NWell,
        min_nm: 4000,
    })
    .push(Rule::MinWidth {
        layer: MaskLayer::PPlus,
        min_nm: 1600,
    });
    deck
}

/// The MEMS rule deck the paper implies: the three etch masks checked
/// against each other **and against the CMOS layers** (n-well etch-stop
/// coverage, no stray metal in the open etch window).
#[must_use]
pub fn mems_rules() -> RuleDeck {
    let mut deck = RuleDeck::new();
    deck
        // the etch trenches must be wide enough to etch reliably
        .push(Rule::MinWidth {
            layer: MaskLayer::FsSiliconEtch,
            min_nm: 4000,
        })
        // and far enough apart that the silicon wall between them survives
        // (touching trenches are one trench and are allowed)
        .push(Rule::MinSpacing {
            layer: MaskLayer::FsSiliconEtch,
            min_nm: 5000,
        })
        // backside membrane window: KOH needs a large opening
        .push(Rule::MinWidth {
            layer: MaskLayer::BacksideEtch,
            min_nm: 100_000,
        })
        // dielectric window opens over every silicon trench, with margin
        .push(Rule::Enclosure {
            inner: MaskLayer::FsSiliconEtch,
            outer: MaskLayer::FsDielectricEtch,
            min_nm: 1000,
        })
        // the membrane must extend beyond the dielectric window
        .push(Rule::Enclosure {
            inner: MaskLayer::FsDielectricEtch,
            outer: MaskLayer::BacksideEtch,
            min_nm: 20_000,
        })
        // the electrochemical etch-stop needs n-well under the whole
        // released region
        .push(Rule::Enclosure {
            inner: MaskLayer::FsDielectricEtch,
            outer: MaskLayer::NWell,
            min_nm: 2000,
        })
        // no metal may cross the silicon-etch trenches (it would mask the
        // etch / be undercut)
        .push(Rule::NoOverlap {
            a: MaskLayer::Metal1,
            b: MaskLayer::FsSiliconEtch,
        })
        .push(Rule::NoOverlap {
            a: MaskLayer::Metal2,
            b: MaskLayer::FsSiliconEtch,
        });
    deck
}

/// The full combined deck (CMOS + MEMS) — one runset, as the paper's flow
/// integration implies.
#[must_use]
pub fn full_deck() -> RuleDeck {
    let mut deck = cmos_core_rules();
    for rule in mems_rules().rules() {
        deck.push(rule.clone());
    }
    deck
}

/// The full deck plus the wafer-thickness-derived backside-window rule
/// from the KOH sidewall geometry — the physically honest runset for a
/// given wafer.
///
/// # Errors
///
/// Returns [`crate::FabError`] for degenerate wafer/membrane thicknesses.
pub fn full_deck_for_wafer(
    wafer: canti_units::Meters,
    membrane: canti_units::Meters,
) -> Result<RuleDeck, crate::FabError> {
    let mut deck = full_deck();
    deck.push(crate::anisotropic::backside_window_rule(
        wafer,
        membrane,
        canti_units::Meters::from_micrometers(20.0),
    )?);
    Ok(deck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::cantilever_cell;

    #[test]
    fn paper_cantilever_cell_is_clean() {
        let cell = cantilever_cell(150.0, 140.0);
        let violations = full_deck().run(&cell);
        assert!(
            violations.is_empty(),
            "generated cell must be DRC-clean, got: {:?}",
            violations
                .iter()
                .map(Violation::to_string)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn min_width_catches_narrow_shape() {
        let mut cell = Cell::new("t");
        cell.add(MaskLayer::Metal1, Rect::from_um(0.0, 0.0, 0.8, 10.0));
        let v = cmos_core_rules().run(&cell);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].measured_nm, 800);
        assert_eq!(v[0].required_nm, 1200);
        assert!(v[0].to_string().contains("MET1.W"));
    }

    #[test]
    fn min_spacing_catches_close_pairs_but_not_touching() {
        let mut cell = Cell::new("t");
        cell.add(MaskLayer::Metal2, Rect::from_um(0.0, 0.0, 5.0, 5.0));
        cell.add(MaskLayer::Metal2, Rect::from_um(5.5, 0.0, 10.0, 5.0)); // 0.5 um gap
        cell.add(MaskLayer::Metal2, Rect::from_um(10.0, 0.0, 15.0, 5.0)); // touching: ok
        let v: Vec<Violation> = cmos_core_rules()
            .run(&cell)
            .into_iter()
            .filter(|v| v.rule.contains("MET2.S"))
            .collect();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].measured_nm, 500);
    }

    #[test]
    fn enclosure_catches_missing_nwell_coverage() {
        // a beam whose n-well stops short of the etch window: the classic
        // etch-stop design error the integrated flow is meant to catch.
        let mut cell = cantilever_cell(150.0, 140.0);
        // shrink the n-well by replacing it with a too-small one
        let mut bad = Cell::new("bad");
        for layer in MaskLayer::ALL {
            for r in cell.shapes_on(layer) {
                if layer == MaskLayer::NWell {
                    bad.add(layer, Rect::from_um(0.0, 0.0, 50.0, 50.0));
                } else {
                    bad.add(layer, *r);
                }
            }
        }
        cell = bad;
        let v = mems_rules().run(&cell);
        assert!(
            v.iter().any(|v| v.rule.contains("NWELL encloses FD")),
            "{v:?}"
        );
    }

    #[test]
    fn no_overlap_catches_metal_over_trench() {
        let mut cell = cantilever_cell(150.0, 140.0);
        // route metal2 straight across the tip trench
        cell.add(MaskLayer::Metal2, Rect::from_um(140.0, 60.0, 170.0, 64.0));
        let v = mems_rules().run(&cell);
        assert!(
            v.iter().any(|v| v.rule.contains("MET2 not over FS")),
            "{v:?}"
        );
    }

    #[test]
    fn violation_reports_location() {
        let mut cell = Cell::new("t");
        let r = Rect::from_um(3.0, 4.0, 3.5, 20.0);
        cell.add(MaskLayer::Metal2, r);
        let v = cmos_core_rules().run(&cell);
        assert_eq!(v[0].location, r);
    }

    #[test]
    fn deck_composition() {
        let full = full_deck();
        assert_eq!(
            full.rules().len(),
            cmos_core_rules().rules().len() + mems_rules().rules().len()
        );
        // every rule describes itself distinctly
        let mut descs: Vec<String> = full.rules().iter().map(Rule::describe).collect();
        descs.sort();
        descs.dedup();
        assert_eq!(descs.len(), full.rules().len());
    }

    #[test]
    fn empty_cell_is_clean() {
        let v = full_deck().run(&Cell::new("empty"));
        assert!(v.is_empty());
    }

    #[test]
    fn wafer_honest_deck_and_cell() {
        use crate::layout::cantilever_cell_for_wafer;
        use canti_units::Meters;
        let wafer = Meters::from_micrometers(525.0);
        let membrane = Meters::from_micrometers(5.0);
        let deck = full_deck_for_wafer(wafer, membrane).unwrap();
        assert_eq!(deck.rules().len(), full_deck().rules().len() + 1);

        // the schematic cell (30 um margin) fails the honest KOH rule...
        let schematic = cantilever_cell(150.0, 140.0);
        let v = deck.run(&schematic);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].rule.contains("EB encloses FD"));

        // ...the wafer-sized cell passes the whole honest deck
        let honest = cantilever_cell_for_wafer(150.0, 140.0, 525.0, 5.0);
        let v = deck.run(&honest);
        assert!(v.is_empty(), "{v:?}");
        // and its backside window is close to a millimeter across
        let eb = honest.shapes_on(MaskLayer::BacksideEtch)[0];
        assert!(eb.width() > 800_000, "EB width {} nm", eb.width());

        // degenerate wafer rejected
        assert!(full_deck_for_wafer(membrane, membrane).is_err());
    }
}
