//! Hierarchical layout: cells instantiating cells, and flattening for DRC.
//!
//! The paper's chip is an *array* — four cantilever cells plus shared
//! readout. Real layout is hierarchical: the cantilever is drawn once and
//! instantiated four times. [`Library`] holds named [`HierCell`]s whose
//! instances reference other cells by name (translation-only placement, as
//! befits a rectilinear database); [`Library::flatten`] resolves the
//! hierarchy into a single flat [`Cell`] the DRC engine can chew on, with
//! cycle and dangling-reference detection.

use std::collections::{BTreeMap, BTreeSet};

use crate::layers::MaskLayer;
use crate::layout::{cantilever_cell, Cell, Rect};
use crate::FabError;

/// A placement of a child cell, translated by `(dx, dy)` nm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Name of the instantiated cell.
    pub child: String,
    /// X translation, nm.
    pub dx: i64,
    /// Y translation, nm.
    pub dy: i64,
}

/// A cell with its own shapes plus child instances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HierCell {
    /// The cell's own (flat) shapes.
    pub shapes: Cell,
    /// Child placements.
    pub instances: Vec<Instance>,
}

/// A named collection of hierarchical cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Library {
    cells: BTreeMap<String, HierCell>,
}

impl Library {
    /// An empty library.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a cell.
    pub fn insert(&mut self, name: impl Into<String>, cell: HierCell) -> &mut Self {
        self.cells.insert(name.into(), cell);
        self
    }

    /// Looks up a cell.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&HierCell> {
        self.cells.get(name)
    }

    /// Cell names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// Flattens `top` into a single cell: every shape of every transitive
    /// instance, translated into top coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`FabError::InvalidFlow`] on a dangling reference or an
    /// instantiation cycle.
    pub fn flatten(&self, top: &str) -> Result<Cell, FabError> {
        let mut out = Cell::new(top.to_owned());
        let mut stack: BTreeSet<String> = BTreeSet::new();
        self.flatten_into(top, 0, 0, &mut out, &mut stack)?;
        Ok(out)
    }

    fn flatten_into(
        &self,
        name: &str,
        dx: i64,
        dy: i64,
        out: &mut Cell,
        stack: &mut BTreeSet<String>,
    ) -> Result<(), FabError> {
        let cell = self.cells.get(name).ok_or_else(|| FabError::InvalidFlow {
            reason: format!("instance references unknown cell '{name}'"),
        })?;
        if !stack.insert(name.to_owned()) {
            return Err(FabError::InvalidFlow {
                reason: format!("instantiation cycle through '{name}'"),
            });
        }
        for layer in MaskLayer::ALL {
            for r in cell.shapes.shapes_on(layer) {
                out.add(
                    layer,
                    Rect {
                        x0: r.x0 + dx,
                        y0: r.y0 + dy,
                        x1: r.x1 + dx,
                        y1: r.y1 + dy,
                    },
                );
            }
        }
        for inst in &cell.instances {
            self.flatten_into(&inst.child, dx + inst.dx, dy + inst.dy, out, stack)?;
        }
        stack.remove(name);
        Ok(())
    }
}

/// Builds the paper's array chip: `count` cantilever cells at `pitch_um`
/// vertical pitch under a `top` cell. Flatten `"chip"` and run the deck.
#[must_use]
pub fn array_chip_library(count: usize, pitch_um: f64, length_um: f64, width_um: f64) -> Library {
    let mut lib = Library::new();
    lib.insert(
        "cantilever",
        HierCell {
            shapes: cantilever_cell(length_um, width_um),
            instances: vec![],
        },
    );
    let instances = (0..count)
        .map(|i| Instance {
            child: "cantilever".to_owned(),
            dx: 0,
            dy: (i as f64 * pitch_um * 1000.0).round() as i64,
        })
        .collect();
    lib.insert(
        "chip",
        HierCell {
            shapes: Cell::new("chip"),
            instances,
        },
    );
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::full_deck;

    #[test]
    fn flatten_translates_shapes() {
        let mut lib = Library::new();
        let mut leaf = Cell::new("leaf");
        leaf.add(MaskLayer::Metal1, Rect::from_um(0.0, 0.0, 2.0, 2.0));
        lib.insert(
            "leaf",
            HierCell {
                shapes: leaf,
                instances: vec![],
            },
        );
        lib.insert(
            "top",
            HierCell {
                shapes: Cell::new("top"),
                instances: vec![
                    Instance {
                        child: "leaf".to_owned(),
                        dx: 10_000,
                        dy: 0,
                    },
                    Instance {
                        child: "leaf".to_owned(),
                        dx: 0,
                        dy: 20_000,
                    },
                ],
            },
        );
        let flat = lib.flatten("top").unwrap();
        let shapes = flat.shapes_on(MaskLayer::Metal1);
        assert_eq!(shapes.len(), 2);
        assert!(shapes.contains(&Rect::from_um(10.0, 0.0, 12.0, 2.0)));
        assert!(shapes.contains(&Rect::from_um(0.0, 20.0, 2.0, 22.0)));
    }

    #[test]
    fn nested_translation_composes() {
        let mut lib = Library::new();
        let mut leaf = Cell::new("leaf");
        leaf.add(MaskLayer::Poly1, Rect::new(0, 0, 100, 100).unwrap());
        lib.insert(
            "leaf",
            HierCell {
                shapes: leaf,
                instances: vec![],
            },
        );
        lib.insert(
            "mid",
            HierCell {
                shapes: Cell::new("mid"),
                instances: vec![Instance {
                    child: "leaf".to_owned(),
                    dx: 1000,
                    dy: 0,
                }],
            },
        );
        lib.insert(
            "top",
            HierCell {
                shapes: Cell::new("top"),
                instances: vec![Instance {
                    child: "mid".to_owned(),
                    dx: 0,
                    dy: 500,
                }],
            },
        );
        let flat = lib.flatten("top").unwrap();
        assert_eq!(
            flat.shapes_on(MaskLayer::Poly1),
            &[Rect::new(1000, 500, 1100, 600).unwrap()]
        );
    }

    #[test]
    fn dangling_and_cycle_detected() {
        let mut lib = Library::new();
        lib.insert(
            "a",
            HierCell {
                shapes: Cell::new("a"),
                instances: vec![Instance {
                    child: "b".to_owned(),
                    dx: 0,
                    dy: 0,
                }],
            },
        );
        assert!(matches!(
            lib.flatten("a"),
            Err(FabError::InvalidFlow { .. })
        ));
        // close the loop: a -> b -> a
        lib.insert(
            "b",
            HierCell {
                shapes: Cell::new("b"),
                instances: vec![Instance {
                    child: "a".to_owned(),
                    dx: 0,
                    dy: 0,
                }],
            },
        );
        let err = lib.flatten("a").unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
        assert!(lib.flatten("missing").is_err());
    }

    #[test]
    fn sibling_instances_allowed() {
        // diamond reuse (not a cycle): top instantiates leaf twice through
        // different mids
        let mut lib = Library::new();
        let mut leaf = Cell::new("leaf");
        leaf.add(MaskLayer::Metal1, Rect::new(0, 0, 10, 10).unwrap());
        lib.insert(
            "leaf",
            HierCell {
                shapes: leaf,
                instances: vec![],
            },
        );
        for (name, dx) in [("m1", 100), ("m2", 200)] {
            lib.insert(
                name,
                HierCell {
                    shapes: Cell::new(name),
                    instances: vec![Instance {
                        child: "leaf".to_owned(),
                        dx,
                        dy: 0,
                    }],
                },
            );
        }
        lib.insert(
            "top",
            HierCell {
                shapes: Cell::new("top"),
                instances: vec![
                    Instance {
                        child: "m1".to_owned(),
                        dx: 0,
                        dy: 0,
                    },
                    Instance {
                        child: "m2".to_owned(),
                        dx: 0,
                        dy: 0,
                    },
                ],
            },
        );
        let flat = lib.flatten("top").unwrap();
        assert_eq!(flat.shapes_on(MaskLayer::Metal1).len(), 2);
    }

    #[test]
    fn four_cantilever_array_is_drc_clean() {
        // the paper's array: 4 beams at a pitch that keeps the etch
        // trenches apart
        let lib = array_chip_library(4, 300.0, 150.0, 140.0);
        let flat = lib.flatten("chip").unwrap();
        assert_eq!(flat.shapes_on(MaskLayer::FsSiliconEtch).len(), 12);
        let violations = full_deck().run(&flat);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn too_tight_pitch_fails_spacing() {
        // squeeze the beams until the silicon-etch trenches nearly touch
        let lib = array_chip_library(2, 151.0, 150.0, 140.0);
        let flat = lib.flatten("chip").unwrap();
        let violations = full_deck().run(&flat);
        assert!(
            violations.iter().any(|v| v.rule.contains("FS.S")
                || v.rule.contains("MET2")
                || v.rule.contains("MET1")),
            "tight pitch must violate something: {violations:?}"
        );
    }
}
