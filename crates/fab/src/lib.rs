//! # canti-fab — CMOS process, layout, DRC and post-CMOS micromachining
//!
//! The DATE-relevant half of the paper: the cantilevers are built in "a
//! standard 0.8 µm double-poly, double-metal CMOS process with post-CMOS
//! micromachining", and — the key design-flow point — "the design of the
//! three additional mask layers is completely integrated in the physical
//! design flow of the CMOS technology, so that the physical design
//! verification, e.g., design-rule checks, can be performed with respect to
//! the CMOS layers."
//!
//! This crate builds that flow:
//!
//! * [`layers`] — the 0.8 µm 2P2M layer set **plus the three MEMS masks**
//!   (backside etch window, front-side dielectric etch, front-side silicon
//!   etch),
//! * [`layout`] — a minimal rectilinear layout database (nanometer-grid
//!   rectangles in cells) with the geometric predicates DRC needs,
//! * [`drc`] — a rule deck engine and the MEMS+CMOS deck the paper
//!   implies, checking the etch masks against the CMOS layers,
//! * [`process`] — a 1-D column process-flow simulator: CMOS stack →
//!   backside KOH with electrochemical etch-stop on the n-well junction →
//!   two front-side dry etches → released beam (the Figure 3 sequence),
//! * [`variation`] — seeded Monte-Carlo machinery with wafer/die
//!   hierarchy for process-spread studies,
//! * [`cost`] — wafer-level vs die-level post-processing cost, backing the
//!   "cost-efficient mass production" claim.
//!
//! # Examples
//!
//! ```
//! use canti_fab::layout::{Cell, Rect};
//! use canti_fab::layers::MaskLayer;
//!
//! let mut cell = Cell::new("beam");
//! cell.add(MaskLayer::FsSiliconEtch, Rect::from_um(0.0, 0.0, 150.0, 140.0));
//! assert_eq!(cell.shapes_on(MaskLayer::FsSiliconEtch).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anisotropic;
pub mod cost;
pub mod drc;
pub mod export;
pub mod hierarchy;
pub mod layers;
pub mod layout;
pub mod process;
pub mod variation;

mod error;

pub use error::FabError;
