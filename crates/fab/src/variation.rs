//! Seeded Monte-Carlo machinery with a wafer/die hierarchy.
//!
//! Process parameters spread at two scales: wafer-to-wafer (or lot) and
//! die-to-die within a wafer. [`Distribution`] describes a parameter,
//! [`MonteCarlo`] runs seeded trials, and [`WaferModel`] composes the two
//! scales the way yield engineers think about them.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::FabError;

/// A one-dimensional parameter distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Gaussian with mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (≥ 0).
        sigma: f64,
    },
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Always `value` (for pinned parameters).
    Constant {
        /// The pinned value.
        value: f64,
    },
}

impl Distribution {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FabError::BadDistribution`] on negative sigma or an empty
    /// uniform interval.
    pub fn validate(&self) -> Result<(), FabError> {
        match *self {
            Self::Normal { mean, sigma } => {
                if !mean.is_finite() || !sigma.is_finite() || sigma < 0.0 {
                    return Err(FabError::BadDistribution {
                        reason: "normal needs finite mean and sigma >= 0",
                    });
                }
            }
            Self::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                    return Err(FabError::BadDistribution {
                        reason: "uniform needs lo < hi",
                    });
                }
            }
            Self::Constant { value } => {
                if !value.is_finite() {
                    return Err(FabError::BadDistribution {
                        reason: "constant must be finite",
                    });
                }
            }
        }
        Ok(())
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Self::Normal { mean, sigma } => {
                if sigma == 0.0 {
                    return mean;
                }
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                mean + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            }
            Self::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Self::Constant { value } => value,
        }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Normal { mean, .. } => mean,
            Self::Uniform { lo, hi } => (lo + hi) / 2.0,
            Self::Constant { value } => value,
        }
    }
}

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl Stats {
    /// Computes statistics of `samples`; `None` when fewer than 2 values.
    #[must_use]
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Self {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            count: samples.len(),
        })
    }

    /// Coefficient of variation σ/|µ| (`None` for zero mean).
    #[must_use]
    pub fn cv(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev / self.mean.abs())
        }
    }
}

/// A seeded Monte-Carlo runner.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    seed: u64,
    trials: usize,
}

impl MonteCarlo {
    /// Creates a runner with `trials` trials from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`FabError`] for zero trials.
    pub fn new(seed: u64, trials: usize) -> Result<Self, FabError> {
        if trials == 0 {
            return Err(FabError::BadDistribution {
                reason: "at least one trial required",
            });
        }
        Ok(Self { seed, trials })
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Runs `f` once per trial with a per-trial RNG (stable per seed and
    /// trial index, independent of evaluation order).
    pub fn run<T>(&self, mut f: impl FnMut(&mut ChaCha8Rng, usize) -> T) -> Vec<T> {
        (0..self.trials)
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64,
                );
                f(&mut rng, i)
            })
            .collect()
    }

    /// Convenience: runs a scalar-valued trial function and summarizes.
    ///
    /// # Errors
    ///
    /// Returns [`FabError`] if statistics cannot be formed (single trial).
    pub fn run_stats(
        &self,
        f: impl FnMut(&mut ChaCha8Rng, usize) -> f64,
    ) -> Result<Stats, FabError> {
        let samples = self.run(f);
        Stats::of(&samples).ok_or(FabError::BadDistribution {
            reason: "need at least two trials for statistics",
        })
    }
}

/// Two-level wafer/die variation: parameter = wafer offset + die offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferModel {
    /// Wafer-level (common to all dies) sigma.
    pub wafer_sigma: f64,
    /// Die-level (independent per die) sigma.
    pub die_sigma: f64,
}

impl WaferModel {
    /// Draws one wafer: returns `dies` parameter deviations sharing the
    /// wafer-level component.
    pub fn sample_wafer<R: Rng>(&self, rng: &mut R, dies: usize) -> Vec<f64> {
        let wafer = Distribution::Normal {
            mean: 0.0,
            sigma: self.wafer_sigma,
        }
        .sample(rng);
        let die_dist = Distribution::Normal {
            mean: 0.0,
            sigma: self.die_sigma,
        };
        (0..dies).map(|_| wafer + die_dist.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_validation() {
        assert!(Distribution::Normal {
            mean: 0.0,
            sigma: -1.0
        }
        .validate()
        .is_err());
        assert!(Distribution::Uniform { lo: 1.0, hi: 1.0 }
            .validate()
            .is_err());
        assert!(Distribution::Constant { value: f64::NAN }
            .validate()
            .is_err());
        assert!(Distribution::Normal {
            mean: 5.0,
            sigma: 0.1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn normal_sampling_statistics() {
        let mc = MonteCarlo::new(1, 20_000).unwrap();
        let d = Distribution::Normal {
            mean: 5.0,
            sigma: 0.25,
        };
        let stats = mc.run_stats(|rng, _| d.sample(rng)).unwrap();
        assert!((stats.mean - 5.0).abs() < 0.01, "mean {}", stats.mean);
        assert!((stats.std_dev - 0.25).abs() < 0.01, "std {}", stats.std_dev);
        assert!((stats.cv().unwrap() - 0.05).abs() < 0.005);
    }

    #[test]
    fn uniform_bounds_and_constant() {
        let mc = MonteCarlo::new(2, 5000).unwrap();
        let d = Distribution::Uniform { lo: -1.0, hi: 3.0 };
        let samples = mc.run(|rng, _| d.sample(rng));
        assert!(samples.iter().all(|&x| (-1.0..3.0).contains(&x)));
        let stats = Stats::of(&samples).unwrap();
        assert!((stats.mean - 1.0).abs() < 0.1);
        let c = Distribution::Constant { value: 7.5 };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(c.sample(&mut rng), 7.5);
        assert_eq!(c.mean(), 7.5);
    }

    #[test]
    fn trials_are_order_independent_and_seeded() {
        let mc = MonteCarlo::new(9, 10).unwrap();
        let d = Distribution::Normal {
            mean: 0.0,
            sigma: 1.0,
        };
        let a = mc.run(|rng, _| d.sample(rng));
        let b = mc.run(|rng, _| d.sample(rng));
        assert_eq!(a, b, "same seed, same draws");
        let mc2 = MonteCarlo::new(10, 10).unwrap();
        let c = mc2.run(|rng, _| d.sample(rng));
        assert_ne!(a, c);
        // per-trial rngs: trial 3's value does not depend on trial 2's work
        let partial = mc.run(|rng, i| if i == 3 { d.sample(rng) } else { 0.0 });
        assert_eq!(partial[3], a[3]);
    }

    #[test]
    fn stats_edge_cases() {
        assert!(Stats::of(&[]).is_none());
        assert!(Stats::of(&[1.0]).is_none());
        let s = Stats::of(&[2.0, 4.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - std::f64::consts::SQRT_2).abs() < 1e-12);
        let zero_mean = Stats::of(&[-1.0, 1.0]).unwrap();
        assert!(zero_mean.cv().is_none());
    }

    #[test]
    fn wafer_model_correlation() {
        // dies on the same wafer share the wafer offset: within-wafer
        // spread ~ die_sigma, across-wafer spread ~ sqrt(ws^2+ds^2)
        let model = WaferModel {
            wafer_sigma: 0.10,
            die_sigma: 0.02,
        };
        let mc = MonteCarlo::new(5, 400).unwrap();
        let wafers = mc.run(|rng, _| model.sample_wafer(rng, 50));
        let within: Vec<f64> = wafers
            .iter()
            .map(|w| Stats::of(w).unwrap().std_dev)
            .collect();
        let mean_within = Stats::of(&within).unwrap().mean;
        assert!((mean_within - 0.02).abs() < 0.005, "within {mean_within}");
        let wafer_means: Vec<f64> = wafers
            .iter()
            .map(|w| w.iter().sum::<f64>() / w.len() as f64)
            .collect();
        let across = Stats::of(&wafer_means).unwrap().std_dev;
        assert!((across - 0.10).abs() < 0.02, "across {across}");
    }

    #[test]
    fn zero_trials_rejected() {
        assert!(MonteCarlo::new(0, 0).is_err());
        let one = MonteCarlo::new(0, 1).unwrap();
        assert!(one.run_stats(|_, _| 1.0).is_err());
    }
}
