//! Anisotropic KOH etch geometry: why the backside window is so much
//! bigger than the membrane.
//!
//! KOH etches (100) silicon fast and {111} planes ~100× slower, so a
//! backside opening produces a cavity with sidewalls sloped at the
//! {111}/(100) angle of **54.74°**. Etching through a wafer of thickness
//! `t` therefore *shrinks* the opening by `t/tan(54.74°) ≈ 0.707·t` per
//! side: the mask must be oversized by that much for the membrane to come
//! out at the drawn size. Getting this wrong is the classic first-tapeout
//! MEMS bug — which is exactly why the paper folds the MEMS masks into the
//! CMOS DRC flow. [`backside_window_rule`] turns the geometry into a rule
//! for the deck.

use canti_units::Meters;

use crate::drc::Rule;
use crate::error::ensure_positive;
use crate::layers::MaskLayer;
use crate::FabError;

/// The {111}/(100) sidewall angle of KOH-etched silicon, degrees.
pub const KOH_SIDEWALL_ANGLE_DEG: f64 = 54.7356;

/// Lateral inset of the cavity per side after etching depth `depth`:
/// `depth / tan(54.74°)`.
#[must_use]
pub fn sidewall_inset(depth: Meters) -> Meters {
    Meters::new(depth.value() / KOH_SIDEWALL_ANGLE_DEG.to_radians().tan())
}

/// Required backside mask opening for a target membrane span, etching
/// through `etch_depth` (wafer minus membrane): membrane + 2·inset.
///
/// # Errors
///
/// Returns [`FabError`] unless both dimensions are strictly positive.
pub fn required_backside_opening(
    membrane_span: Meters,
    etch_depth: Meters,
) -> Result<Meters, FabError> {
    ensure_positive("membrane span", membrane_span.value())?;
    ensure_positive("etch depth", etch_depth.value())?;
    Ok(membrane_span + sidewall_inset(etch_depth) * 2.0)
}

/// The membrane span a given backside opening yields after etching
/// through `etch_depth`; `None` when the cavity pinches off before
/// reaching the etch-stop.
#[must_use]
pub fn resulting_membrane_span(opening: Meters, etch_depth: Meters) -> Option<Meters> {
    let span = opening.value() - 2.0 * sidewall_inset(etch_depth).value();
    if span <= 0.0 {
        None
    } else {
        Some(Meters::new(span))
    }
}

/// Convex-corner undercut: KOH attacks convex mask corners along fast
/// planes, rounding them at roughly `0.7·depth` per corner. Structures
/// needing sharp convex corners (mesas) must add corner-compensation
/// features at least this large.
#[must_use]
pub fn convex_corner_undercut(depth: Meters) -> Meters {
    Meters::new(0.7 * depth.value())
}

/// Derives the wafer-thickness-aware DRC rule: the backside-etch mask must
/// enclose the front-side dielectric window by the sidewall inset (plus an
/// alignment margin), or the membrane comes out smaller than drawn.
///
/// # Errors
///
/// Returns [`FabError`] for non-positive dimensions.
pub fn backside_window_rule(
    wafer_thickness: Meters,
    membrane_thickness: Meters,
    alignment_margin: Meters,
) -> Result<Rule, FabError> {
    ensure_positive("wafer thickness", wafer_thickness.value())?;
    ensure_positive("membrane thickness", membrane_thickness.value())?;
    if membrane_thickness.value() >= wafer_thickness.value() {
        return Err(FabError::InvalidFlow {
            reason: "membrane thicker than the wafer".to_owned(),
        });
    }
    let etch_depth = wafer_thickness - membrane_thickness;
    let inset = sidewall_inset(etch_depth) + alignment_margin;
    Ok(Rule::Enclosure {
        inner: MaskLayer::FsDielectricEtch,
        outer: MaskLayer::BacksideEtch,
        min_nm: (inset.value() * 1e9).round() as i64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::RuleDeck;
    use crate::layout::{cantilever_cell, Cell, Rect};

    #[test]
    fn sidewall_inset_reference() {
        // tan(54.7356) = sqrt(2): inset = depth / sqrt(2)
        let inset = sidewall_inset(Meters::from_micrometers(520.0));
        assert!(
            (inset.as_micrometers() - 520.0 / 2f64.sqrt()).abs() < 0.01,
            "inset {} um",
            inset.as_micrometers()
        );
    }

    #[test]
    fn opening_roundtrip() {
        let membrane = Meters::from_micrometers(300.0);
        let depth = Meters::from_micrometers(520.0);
        let opening = required_backside_opening(membrane, depth).unwrap();
        let back = resulting_membrane_span(opening, depth).unwrap();
        assert!((back.value() - membrane.value()).abs() < 1e-12);
        // a 300 um membrane needs a ~1 mm opening through a 520 um wafer
        assert!(opening.as_micrometers() > 1000.0);
    }

    #[test]
    fn pinch_off_detected() {
        // a small opening never reaches the etch stop
        let opening = Meters::from_micrometers(100.0);
        let depth = Meters::from_micrometers(520.0);
        assert!(resulting_membrane_span(opening, depth).is_none());
    }

    #[test]
    fn undercut_scale() {
        let u = convex_corner_undercut(Meters::from_micrometers(520.0));
        assert!((u.as_micrometers() - 364.0).abs() < 1.0);
    }

    #[test]
    fn derived_rule_catches_undersized_window() {
        let rule = backside_window_rule(
            Meters::from_micrometers(525.0),
            Meters::from_micrometers(5.0),
            Meters::from_micrometers(20.0),
        )
        .unwrap();
        // inset = 520/sqrt(2) + 20 = ~387.7 um = ~387,700 nm
        if let Rule::Enclosure { min_nm, .. } = &rule {
            assert!((min_nm - 387_700).abs() < 500, "min {min_nm}");
        } else {
            panic!("expected enclosure rule");
        }
        // the generator's 32 um margin cell FAILS this physically honest
        // rule — the kind of tapeout-saving catch the integrated flow makes
        let mut deck = RuleDeck::new();
        deck.push(rule);
        let violations = deck.run(&cantilever_cell(150.0, 140.0));
        assert_eq!(violations.len(), 1, "{violations:?}");

        // an adequately oversized window passes
        let mut cell = Cell::new("fixed");
        cell.add(
            MaskLayer::FsDielectricEtch,
            Rect::from_um(0.0, 0.0, 160.0, 150.0),
        );
        cell.add(
            MaskLayer::BacksideEtch,
            Rect::from_um(-400.0, -400.0, 560.0, 550.0),
        );
        assert!(deck.run(&cell).is_empty());
    }

    #[test]
    fn validation() {
        let t = Meters::from_micrometers(525.0);
        assert!(backside_window_rule(t, t, Meters::zero()).is_err());
        assert!(backside_window_rule(Meters::zero(), t, Meters::zero()).is_err());
        assert!(required_backside_opening(Meters::zero(), t).is_err());
    }
}
