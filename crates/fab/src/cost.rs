//! Production cost: wafer-level vs die-level post-processing.
//!
//! "The complete post-processing can be performed on wafer level, leading
//! to a very cost-efficient mass-production." The economics are simple but
//! worth making executable: wafer-level post-processing adds a *per-wafer*
//! cost amortized over every good die, while die-level handling (pick,
//! mount, etch, clean per die) adds a *per-die* cost that never amortizes.

use crate::error::ensure_positive;
use crate::FabError;

/// Cost structure of one production route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Processed CMOS wafer cost, currency units.
    pub wafer_cost: f64,
    /// Post-processing cost added per wafer (masks amortized separately).
    pub post_process_per_wafer: f64,
    /// Post-processing cost added per die (zero for wafer-level routes).
    pub post_process_per_die: f64,
    /// One-time engineering/mask (NRE) cost for the route.
    pub nre: f64,
    /// Gross dies per wafer.
    pub dies_per_wafer: u32,
    /// Yield after post-processing, 0–1.
    pub yield_fraction: f64,
}

impl CostModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`FabError`] on non-positive dies/yield or negative costs.
    pub fn validate(&self) -> Result<(), FabError> {
        for (what, v) in [
            ("wafer cost", self.wafer_cost),
            ("per-wafer post-processing", self.post_process_per_wafer),
            ("per-die post-processing", self.post_process_per_die),
            ("NRE", self.nre),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(FabError::NonPositive { what, value: v });
            }
        }
        if self.dies_per_wafer == 0 {
            return Err(FabError::NonPositive {
                what: "dies per wafer",
                value: 0.0,
            });
        }
        ensure_positive("yield", self.yield_fraction)?;
        if self.yield_fraction > 1.0 {
            return Err(FabError::NonPositive {
                what: "yield (must be <= 1)",
                value: self.yield_fraction,
            });
        }
        Ok(())
    }

    /// The paper's route: three extra masks, everything at wafer level.
    #[must_use]
    pub fn wafer_level() -> Self {
        Self {
            wafer_cost: 1500.0,
            post_process_per_wafer: 400.0,
            post_process_per_die: 0.0,
            nre: 45_000.0, // 3 MEMS masks + runset work
            dies_per_wafer: 800,
            yield_fraction: 0.85,
        }
    }

    /// The die-level alternative: cheaper NRE (no extra masks in the CMOS
    /// reticle), but every die is individually etched/handled.
    #[must_use]
    pub fn die_level() -> Self {
        Self {
            wafer_cost: 1500.0,
            post_process_per_wafer: 0.0,
            post_process_per_die: 6.0,
            nre: 10_000.0,
            dies_per_wafer: 800,
            yield_fraction: 0.70, // individual handling hurts yield too
        }
    }

    /// Cost per *good* die at a production volume of `volume` good dies
    /// (NRE amortized over the volume).
    ///
    /// # Errors
    ///
    /// Returns [`FabError`] on an invalid model or zero volume.
    pub fn cost_per_good_die(&self, volume: u64) -> Result<f64, FabError> {
        self.validate()?;
        if volume == 0 {
            return Err(FabError::NonPositive {
                what: "production volume",
                value: 0.0,
            });
        }
        let good_per_wafer = f64::from(self.dies_per_wafer) * self.yield_fraction;
        let variable = (self.wafer_cost + self.post_process_per_wafer) / good_per_wafer
            + self.post_process_per_die / self.yield_fraction;
        Ok(variable + self.nre / volume as f64)
    }

    /// The volume above which `self` is cheaper than `other` (crossover),
    /// or `None` if it never is (or always is).
    ///
    /// # Errors
    ///
    /// Returns [`FabError`] on invalid models.
    pub fn crossover_volume(&self, other: &Self) -> Result<Option<u64>, FabError> {
        self.validate()?;
        other.validate()?;
        // cost_a(v) = var_a + nre_a/v; crossover where equal.
        let var = |m: &Self| {
            (m.wafer_cost + m.post_process_per_wafer)
                / (f64::from(m.dies_per_wafer) * m.yield_fraction)
                + m.post_process_per_die / m.yield_fraction
        };
        let (va, vb) = (var(self), var(other));
        let (na, nb) = (self.nre, other.nre);
        if va >= vb {
            // self never wins on variable cost; it can only win if its NRE
            // is also lower, in which case it wins at *low* volume — report
            // None (no high-volume crossover).
            return Ok(None);
        }
        // va + na/v < vb + nb/v  =>  v > (na - nb)/(vb - va)
        let v = (na - nb) / (vb - va);
        Ok(Some(if v <= 0.0 { 1 } else { v.ceil() as u64 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wafer_level_wins_at_volume() {
        let wl = CostModel::wafer_level();
        let dl = CostModel::die_level();
        let high = 1_000_000;
        let c_wl = wl.cost_per_good_die(high).unwrap();
        let c_dl = dl.cost_per_good_die(high).unwrap();
        assert!(
            c_wl < c_dl / 2.0,
            "at volume, wafer-level {c_wl} must crush die-level {c_dl}"
        );
    }

    #[test]
    fn die_level_wins_at_prototype_volume() {
        let wl = CostModel::wafer_level();
        let dl = CostModel::die_level();
        let proto = 500;
        let c_wl = wl.cost_per_good_die(proto).unwrap();
        let c_dl = dl.cost_per_good_die(proto).unwrap();
        assert!(c_dl < c_wl, "at 500 units die-level {c_dl} vs wafer {c_wl}");
    }

    #[test]
    fn crossover_exists_and_is_consistent() {
        let wl = CostModel::wafer_level();
        let dl = CostModel::die_level();
        let v = wl.crossover_volume(&dl).unwrap().expect("crossover");
        // just below: die-level cheaper or equal; just above: wafer-level cheaper
        let below = (v - 1).max(1);
        assert!(
            dl.cost_per_good_die(below).unwrap() <= wl.cost_per_good_die(below).unwrap() + 1e-9
        );
        assert!(wl.cost_per_good_die(v + 1).unwrap() < dl.cost_per_good_die(v + 1).unwrap());
        // reverse direction: die-level never beats wafer-level at volume
        assert_eq!(dl.crossover_volume(&wl).unwrap(), None);
    }

    #[test]
    fn cost_decreases_with_volume() {
        let wl = CostModel::wafer_level();
        let c1 = wl.cost_per_good_die(1_000).unwrap();
        let c2 = wl.cost_per_good_die(100_000).unwrap();
        let c3 = wl.cost_per_good_die(10_000_000).unwrap();
        assert!(c1 > c2 && c2 > c3);
        // asymptote: variable cost only
        let asymptote = (1500.0 + 400.0) / (800.0 * 0.85);
        assert!((c3 - asymptote).abs() / asymptote < 0.01);
    }

    #[test]
    fn yield_raises_cost() {
        let mut low_yield = CostModel::wafer_level();
        low_yield.yield_fraction = 0.4;
        let good = CostModel::wafer_level();
        assert!(
            low_yield.cost_per_good_die(1_000_000).unwrap()
                > good.cost_per_good_die(1_000_000).unwrap()
        );
    }

    #[test]
    fn validation() {
        let mut m = CostModel::wafer_level();
        m.yield_fraction = 0.0;
        assert!(m.validate().is_err());
        m.yield_fraction = 1.5;
        assert!(m.validate().is_err());
        m = CostModel::wafer_level();
        m.dies_per_wafer = 0;
        assert!(m.validate().is_err());
        m = CostModel::wafer_level();
        m.wafer_cost = -1.0;
        assert!(m.validate().is_err());
        assert!(CostModel::wafer_level().cost_per_good_die(0).is_err());
    }
}
