//! The 0.8 µm double-poly double-metal layer set plus the three post-CMOS
//! MEMS mask layers.
//!
//! The paper's point is that the MEMS masks live *inside* the CMOS physical
//! design flow: they are ordinary mask layers with ordinary design rules,
//! checkable against n-well, metal, and the rest. [`MaskLayer`] is the
//! shared enumeration both the layout database and the DRC deck key on.

use canti_units::Meters;

/// All mask layers of the adapted 0.8 µm 2P2M process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum MaskLayer {
    /// N-well implant — doubles as the electrochemical etch-stop defining
    /// the cantilever thickness.
    NWell,
    /// Active (diffusion) area.
    Active,
    /// P+ source/drain implant.
    PPlus,
    /// N+ source/drain implant.
    NPlus,
    /// First polysilicon (gates).
    Poly1,
    /// Second polysilicon (capacitors, resistors).
    Poly2,
    /// Contact cuts.
    Contact,
    /// First metal.
    Metal1,
    /// Via cuts.
    Via,
    /// Second metal (the actuation coil lives here).
    Metal2,
    /// Pad/passivation opening.
    Pad,
    /// MEMS mask 1: backside KOH etch window.
    BacksideEtch,
    /// MEMS mask 2: front-side dielectric (RIE) etch window.
    FsDielectricEtch,
    /// MEMS mask 3: front-side silicon (RIE) etch window — outlines the
    /// beam.
    FsSiliconEtch,
}

impl MaskLayer {
    /// All layers, in mask order.
    pub const ALL: [MaskLayer; 14] = [
        MaskLayer::NWell,
        MaskLayer::Active,
        MaskLayer::PPlus,
        MaskLayer::NPlus,
        MaskLayer::Poly1,
        MaskLayer::Poly2,
        MaskLayer::Contact,
        MaskLayer::Metal1,
        MaskLayer::Via,
        MaskLayer::Metal2,
        MaskLayer::Pad,
        MaskLayer::BacksideEtch,
        MaskLayer::FsDielectricEtch,
        MaskLayer::FsSiliconEtch,
    ];

    /// The three post-CMOS micromachining masks.
    pub const MEMS: [MaskLayer; 3] = [
        MaskLayer::BacksideEtch,
        MaskLayer::FsDielectricEtch,
        MaskLayer::FsSiliconEtch,
    ];

    /// `true` for the three added MEMS masks.
    #[must_use]
    pub fn is_mems(self) -> bool {
        matches!(
            self,
            Self::BacksideEtch | Self::FsDielectricEtch | Self::FsSiliconEtch
        )
    }

    /// GDS-style layer number.
    #[must_use]
    pub fn gds_number(self) -> u16 {
        match self {
            Self::NWell => 1,
            Self::Active => 2,
            Self::PPlus => 3,
            Self::NPlus => 4,
            Self::Poly1 => 10,
            Self::Poly2 => 11,
            Self::Contact => 20,
            Self::Metal1 => 30,
            Self::Via => 35,
            Self::Metal2 => 40,
            Self::Pad => 50,
            Self::BacksideEtch => 60,
            Self::FsDielectricEtch => 61,
            Self::FsSiliconEtch => 62,
        }
    }

    /// Short mask name as it would appear in a runset.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::NWell => "NWELL",
            Self::Active => "ACTV",
            Self::PPlus => "PPLUS",
            Self::NPlus => "NPLUS",
            Self::Poly1 => "POLY1",
            Self::Poly2 => "POLY2",
            Self::Contact => "CONT",
            Self::Metal1 => "MET1",
            Self::Via => "VIA",
            Self::Metal2 => "MET2",
            Self::Pad => "PAD",
            Self::BacksideEtch => "EB",
            Self::FsDielectricEtch => "FD",
            Self::FsSiliconEtch => "FS",
        }
    }
}

impl std::fmt::Display for MaskLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One physical film of the fabricated stack (for cross-sections).
#[derive(Debug, Clone, PartialEq)]
pub struct Film {
    /// Film name, e.g. `"field oxide"`.
    pub name: String,
    /// Film thickness.
    pub thickness: Meters,
    /// `true` for dielectric films (removed by the front-side dielectric
    /// etch).
    pub dielectric: bool,
}

impl Film {
    /// Creates a film.
    #[must_use]
    pub fn new(name: impl Into<String>, thickness: Meters, dielectric: bool) -> Self {
        Self {
            name: name.into(),
            thickness,
            dielectric,
        }
    }
}

/// The as-fabricated film stack of the 0.8 µm 2P2M process above the bulk,
/// bottom-up, at a generic (non-transistor) location.
#[must_use]
pub fn cmos_08um_film_stack() -> Vec<Film> {
    vec![
        Film::new("field oxide", Meters::from_micrometers(0.6), true),
        Film::new("poly interlevel oxide", Meters::from_micrometers(0.3), true),
        Film::new("IMD oxide 1", Meters::from_micrometers(0.9), true),
        Film::new("metal 1 (Al)", Meters::from_micrometers(0.6), false),
        Film::new("IMD oxide 2", Meters::from_micrometers(0.9), true),
        Film::new("metal 2 (Al)", Meters::from_micrometers(0.9), false),
        Film::new("passivation nitride", Meters::from_micrometers(1.0), true),
    ]
}

/// Default wafer thickness of the process, 525 µm.
#[must_use]
pub fn default_wafer_thickness() -> Meters {
    Meters::from_micrometers(525.0)
}

/// Default n-well junction depth — the electrochemically-defined cantilever
/// thickness, 5 µm.
#[must_use]
pub fn default_nwell_depth() -> Meters {
    Meters::from_micrometers(5.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_three_mems_masks() {
        let mems: Vec<_> = MaskLayer::ALL.iter().filter(|l| l.is_mems()).collect();
        assert_eq!(mems.len(), 3, "the paper adds exactly three mask layers");
        assert_eq!(MaskLayer::MEMS.len(), 3);
    }

    #[test]
    fn gds_numbers_unique() {
        let mut nums: Vec<u16> = MaskLayer::ALL.iter().map(|l| l.gds_number()).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), MaskLayer::ALL.len());
    }

    #[test]
    fn codes_unique_and_displayed() {
        let mut codes: Vec<&str> = MaskLayer::ALL.iter().map(|l| l.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), MaskLayer::ALL.len());
        assert_eq!(MaskLayer::FsSiliconEtch.to_string(), "FS");
    }

    #[test]
    fn film_stack_is_plausible() {
        let stack = cmos_08um_film_stack();
        assert!(stack.len() >= 6);
        let total: f64 = stack.iter().map(|f| f.thickness.value()).sum();
        // a few microns of BEOL
        assert!(total > 3e-6 && total < 10e-6);
        // contains both metals and they are not dielectric
        let metals: Vec<_> = stack.iter().filter(|f| !f.dielectric).collect();
        assert_eq!(metals.len(), 2);
    }
}
