//! Layout interchange: a CIF-subset writer and reader.
//!
//! Real post-CMOS mask data travels as CIF/GDS. This module implements the
//! rectangle subset of CIF (Caltech Intermediate Form) — enough to hand
//! the three MEMS masks (plus the CMOS context) to a mask shop or read
//! them back:
//!
//! ```text
//! DS 1 1 2;
//! L EB;
//! B 438000 428000 91000 66000;
//! DF;
//! E
//! ```
//!
//! `B w h cx cy;` boxes are written in *doubled* nm units (the `1 2`
//! scale factors in `DS` mean "divide by two on read") — the standard CIF
//! trick that keeps box centers on the integer grid for odd widths.

use std::fmt::Write as _;

use crate::layers::MaskLayer;
use crate::layout::{Cell, Rect};
use crate::FabError;

/// Serializes a cell to CIF (rectangles only).
#[must_use]
pub fn to_cif(cell: &Cell) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(canti layout {} in nm units);", cell.name());
    let _ = writeln!(out, "DS 1 1 2;");
    for layer in MaskLayer::ALL {
        let shapes = cell.shapes_on(layer);
        if shapes.is_empty() {
            continue;
        }
        let _ = writeln!(out, "L {};", layer.code());
        for r in shapes {
            // doubled units: width/height and exact (x0+x1) center sums
            let _ = writeln!(
                out,
                "B {} {} {} {};",
                2 * r.width(),
                2 * r.height(),
                r.x0 + r.x1,
                r.y0 + r.y1
            );
        }
    }
    let _ = writeln!(out, "DF;");
    let _ = writeln!(out, "E");
    out
}

/// Parses the CIF subset written by [`to_cif`] back into a cell named
/// `name`.
///
/// # Errors
///
/// Returns [`FabError::InvalidFlow`] on malformed commands, unknown layer
/// codes, or boxes with non-positive dimensions.
pub fn from_cif(name: &str, cif: &str) -> Result<Cell, FabError> {
    let mut cell = Cell::new(name);
    let mut current: Option<MaskLayer> = None;

    for raw in cif.split(';') {
        let stmt = raw.trim();
        if stmt.is_empty()
            || stmt.starts_with('(')
            || stmt == "E"
            || stmt.starts_with("DS")
            || stmt == "DF"
        {
            continue;
        }
        if let Some(code) = stmt.strip_prefix("L ") {
            let code = code.trim();
            current = Some(layer_from_code(code).ok_or_else(|| FabError::InvalidFlow {
                reason: format!("unknown layer code '{code}'"),
            })?);
            continue;
        }
        if let Some(body) = stmt.strip_prefix("B ") {
            let layer = current.ok_or_else(|| FabError::InvalidFlow {
                reason: "box before any layer command".to_owned(),
            })?;
            let nums: Vec<i64> = body
                .split_whitespace()
                .map(|t| {
                    t.parse::<i64>().map_err(|_| FabError::InvalidFlow {
                        reason: format!("bad box coordinate '{t}'"),
                    })
                })
                .collect::<Result<_, _>>()?;
            if nums.len() != 4 {
                return Err(FabError::InvalidFlow {
                    reason: format!("box needs 4 coordinates, got {}", nums.len()),
                });
            }
            let (w2, h2, cx2, cy2) = (nums[0], nums[1], nums[2], nums[3]);
            if w2 % 2 != 0 || h2 % 2 != 0 {
                return Err(FabError::InvalidFlow {
                    reason: "box dimensions must be even in doubled units".to_owned(),
                });
            }
            let (w, h) = (w2 / 2, h2 / 2);
            // cx2 = x0 + x1 and w = x1 - x0  =>  x0 = (cx2 - w)/2 exactly
            let x0 = (cx2 - w) / 2;
            let y0 = (cy2 - h) / 2;
            let rect = Rect::new(x0, y0, x0 + w, y0 + h)?;
            cell.add(layer, rect);
            continue;
        }
        return Err(FabError::InvalidFlow {
            reason: format!("unrecognized CIF statement '{stmt}'"),
        });
    }
    Ok(cell)
}

fn layer_from_code(code: &str) -> Option<MaskLayer> {
    MaskLayer::ALL.into_iter().find(|l| l.code() == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::cantilever_cell;

    #[test]
    fn roundtrip_preserves_every_shape() {
        let cell = cantilever_cell(150.0, 140.0);
        let cif = to_cif(&cell);
        let back = from_cif("roundtrip", &cif).expect("parse");
        assert_eq!(back.shape_count(), cell.shape_count());
        for layer in MaskLayer::ALL {
            let a: std::collections::BTreeSet<_> = cell.shapes_on(layer).iter().collect();
            let b: std::collections::BTreeSet<_> = back.shapes_on(layer).iter().collect();
            assert_eq!(a, b, "layer {layer}");
        }
    }

    #[test]
    fn cif_contains_mems_layers_and_footer() {
        let cif = to_cif(&cantilever_cell(150.0, 140.0));
        for code in ["EB", "FD", "FS", "NWELL", "MET2"] {
            assert!(
                cif.contains(&format!("L {code};")),
                "{code} missing:\n{cif}"
            );
        }
        assert!(cif.trim_end().ends_with('E'));
        assert!(cif.contains("DS 1 1 2;"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(from_cif("x", "B 10 10 0 0;").is_err(), "box before layer");
        assert!(from_cif("x", "L NOPE; B 10 10 0 0;").is_err(), "bad layer");
        assert!(from_cif("x", "L EB; B 10 10 0;").is_err(), "short box");
        assert!(from_cif("x", "L EB; B ten 10 0 0;").is_err(), "non-numeric");
        assert!(from_cif("x", "GARBAGE!").is_err());
        assert!(
            from_cif("x", "L EB; B 0 20 0 0;").is_err(),
            "degenerate box"
        );
        assert!(
            from_cif("x", "L EB; B 3 10 0 0;").is_err(),
            "odd doubled width"
        );
    }

    #[test]
    fn empty_and_comment_only_cif_parse() {
        let c = from_cif("empty", "(nothing here);\nDS 1 1 1;\nDF;\nE").expect("parse");
        assert_eq!(c.shape_count(), 0);
    }

    #[test]
    fn odd_dimensions_roundtrip() {
        // center-based encoding must not lose a nm on odd widths
        let mut cell = Cell::new("odd");
        cell.add(MaskLayer::Metal1, Rect::new(0, 0, 7, 3).expect("rect"));
        cell.add(MaskLayer::Metal1, Rect::new(-13, -5, 0, 0).expect("rect"));
        let back = from_cif("odd", &to_cif(&cell)).expect("parse");
        assert_eq!(
            back.shapes_on(MaskLayer::Metal1),
            cell.shapes_on(MaskLayer::Metal1)
        );
    }
}
