//! Post-CMOS micromachining flow: the paper's Figure 3 sequence as a 1-D
//! column simulation.
//!
//! "After completion of the CMOS process, a back-side anisotropic silicon
//! etch is performed using potassium hydroxide (KOH) together with an
//! electro-chemical etch-stop. The pn-junction for this etch-stop is
//! defined by the n-well diffusion layer of the CMOS-technology, providing
//! a well-defined thickness of the crystalline silicon layer forming the
//! cantilever. The cantilever is released by two successive anisotropic
//! front-side dry etch steps, which remove the dielectric layers and the
//! bulk silicon, respectively."
//!
//! The simulator tracks the film column at the cantilever location through
//! those steps and reports the before/after cross-sections, the resulting
//! beam thickness, and whether the beam actually released.

use canti_units::Meters;

use crate::error::ensure_positive;
use crate::layers::{cmos_08um_film_stack, default_nwell_depth, default_wafer_thickness, Film};
use crate::FabError;

/// How the backside KOH etch terminates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EtchStop {
    /// Electrochemical stop on the n-well pn-junction: the remaining
    /// silicon thickness equals the junction depth, almost independent of
    /// etch time — the paper's method.
    Electrochemical,
    /// Timed etch: remaining = wafer − rate·time; thickness inherits the
    /// full wafer-thickness and etch-rate spread. The baseline the
    /// etch-stop is compared against.
    Timed {
        /// Etch rate, m/s (KOH ≈ 1 µm/min ≈ 1.67·10⁻⁸ m/s).
        rate: f64,
        /// Etch duration, s.
        duration: f64,
    },
}

/// Starting wafer state for the post-CMOS flow.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferSpec {
    /// Full wafer (bulk silicon) thickness.
    pub wafer_thickness: Meters,
    /// N-well junction depth — the etch-stop-defined beam thickness.
    pub nwell_depth: Meters,
    /// BEOL film stack above the silicon at the beam location.
    pub films: Vec<Film>,
}

impl WaferSpec {
    /// The nominal 0.8 µm process wafer.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            wafer_thickness: default_wafer_thickness(),
            nwell_depth: default_nwell_depth(),
            films: cmos_08um_film_stack(),
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`FabError`] if thicknesses are non-positive or the n-well
    /// is deeper than the wafer.
    pub fn validate(&self) -> Result<(), FabError> {
        ensure_positive("wafer thickness", self.wafer_thickness.value())?;
        ensure_positive("n-well depth", self.nwell_depth.value())?;
        if self.nwell_depth.value() >= self.wafer_thickness.value() {
            return Err(FabError::InvalidFlow {
                reason: "n-well deeper than the wafer".to_owned(),
            });
        }
        Ok(())
    }
}

/// A snapshot of the film column, bottom-up, with named films.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossSection {
    /// Films bottom-up, including the bulk/beam silicon.
    pub films: Vec<Film>,
}

impl CrossSection {
    /// Total column thickness.
    #[must_use]
    pub fn total_thickness(&self) -> Meters {
        self.films.iter().map(|f| f.thickness).sum()
    }

    /// Renders a text sketch of the column (topmost film first) — the
    /// Figure 3 "schematic view".
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for film in self.films.iter().rev() {
            out.push_str(&format!(
                "| {:<24} {:>8.3} um |\n",
                film.name,
                film.thickness.as_micrometers()
            ));
        }
        out.push_str("+----------------------------------------+\n");
        out
    }
}

/// Outcome of running the post-CMOS flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessResult {
    /// Column before post-processing (full CMOS stack on full wafer).
    pub before: CrossSection,
    /// Column after the backside KOH etch (membrane).
    pub after_koh: CrossSection,
    /// Column after both front-side etches at the *trench* location —
    /// empty when the beam released.
    pub after_release_trench: CrossSection,
    /// Column on the beam itself after release.
    pub after_release_beam: CrossSection,
    /// The released beam's silicon thickness.
    pub beam_thickness: Meters,
    /// `true` when the trench column reached zero — the beam is free.
    pub released: bool,
}

/// The post-CMOS micromachining flow.
#[derive(Debug, Clone, PartialEq)]
pub struct PostCmosFlow {
    /// How the KOH etch terminates.
    pub etch_stop: EtchStop,
    /// Front-side dielectric RIE overetch margin (fraction of dielectric
    /// thickness the step can clear; ≥ 1 clears everything).
    pub dielectric_etch_capability: f64,
    /// Maximum silicon thickness the front-side silicon RIE can punch
    /// through.
    pub silicon_etch_depth: Meters,
}

impl PostCmosFlow {
    /// The paper's flow: electrochemical etch-stop, full dielectric clear,
    /// 12 µm silicon RIE capability.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            etch_stop: EtchStop::Electrochemical,
            dielectric_etch_capability: 1.2,
            silicon_etch_depth: Meters::from_micrometers(12.0),
        }
    }

    /// A timed-etch variant for the etch-stop comparison (targets the same
    /// 5 µm membrane on the nominal wafer).
    #[must_use]
    pub fn timed_baseline() -> Self {
        let rate = 1.0e-6 / 60.0; // 1 um/min
        let target_remaining = default_nwell_depth().value();
        let duration = (default_wafer_thickness().value() - target_remaining) / rate;
        Self {
            etch_stop: EtchStop::Timed { rate, duration },
            dielectric_etch_capability: 1.2,
            silicon_etch_depth: Meters::from_micrometers(12.0),
        }
    }

    /// Runs the flow on `wafer`.
    ///
    /// # Errors
    ///
    /// Returns [`FabError`] for an invalid wafer spec or nonsensical etch
    /// parameters.
    pub fn run(&self, wafer: &WaferSpec) -> Result<ProcessResult, FabError> {
        wafer.validate()?;
        ensure_positive(
            "dielectric etch capability",
            self.dielectric_etch_capability,
        )?;
        ensure_positive("silicon etch depth", self.silicon_etch_depth.value())?;

        // BEFORE: bulk + films
        let mut before_films = vec![Film::new("bulk silicon", wafer.wafer_thickness, false)];
        before_films.extend(wafer.films.iter().cloned());
        let before = CrossSection {
            films: before_films,
        };

        // KOH backside etch -> membrane
        let membrane = match self.etch_stop {
            EtchStop::Electrochemical => wafer.nwell_depth,
            EtchStop::Timed { rate, duration } => {
                ensure_positive("etch rate", rate)?;
                ensure_positive("etch duration", duration)?;
                let remaining = wafer.wafer_thickness.value() - rate * duration;
                if remaining <= 0.0 {
                    return Err(FabError::InvalidFlow {
                        reason: "timed KOH etch punched through the wafer".to_owned(),
                    });
                }
                Meters::new(remaining)
            }
        };
        let mut after_koh_films = vec![Film::new("membrane silicon (n-well)", membrane, false)];
        after_koh_films.extend(wafer.films.iter().cloned());
        let after_koh = CrossSection {
            films: after_koh_films,
        };

        // Front-side etch 1: remove dielectrics in the trench.
        // Capability >= 1 clears all of them.
        let dielectric_total: f64 = wafer
            .films
            .iter()
            .filter(|f| f.dielectric)
            .map(|f| f.thickness.value())
            .sum();
        let dielectric_cleared = self.dielectric_etch_capability >= 1.0;
        let metal_in_trench = wafer.films.iter().any(|f| !f.dielectric);
        // In a DRC-clean layout no metal crosses the trench; films passed in
        // the wafer spec describe the *beam* column. The trench column only
        // holds dielectrics (+ bulk), so release requires clearing
        // dielectrics and punching the membrane.
        let silicon_cleared = self.silicon_etch_depth.value() >= membrane.value();
        let released = dielectric_cleared && silicon_cleared;

        let after_release_trench = if released {
            CrossSection { films: vec![] }
        } else {
            let mut films = Vec::new();
            if !silicon_cleared {
                films.push(Film::new(
                    "residual membrane silicon",
                    Meters::new((membrane.value() - self.silicon_etch_depth.value()).max(0.0)),
                    false,
                ));
            }
            if !dielectric_cleared {
                films.push(Film::new(
                    "residual dielectric",
                    Meters::new(dielectric_total * (1.0 - self.dielectric_etch_capability)),
                    true,
                ));
            }
            CrossSection { films }
        };

        // The beam column keeps the membrane silicon plus any non-dielectric
        // films that the layout routes over the beam (the coil); the
        // dielectric above/around the beam is removed by the first etch.
        let mut beam_films = vec![Film::new("beam silicon (n-well)", membrane, false)];
        beam_films.extend(wafer.films.iter().filter(|f| !f.dielectric).cloned());
        let after_release_beam = CrossSection { films: beam_films };

        let _ = metal_in_trench;
        Ok(ProcessResult {
            before,
            after_koh,
            after_release_trench,
            after_release_beam,
            beam_thickness: membrane,
            released,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_flow_releases_a_5um_beam() {
        let result = PostCmosFlow::paper().run(&WaferSpec::nominal()).unwrap();
        assert!(result.released);
        assert!((result.beam_thickness.as_micrometers() - 5.0).abs() < 1e-9);
        assert!(result.after_release_trench.films.is_empty());
        // the beam column: silicon + the two metals
        assert_eq!(result.after_release_beam.films.len(), 3);
    }

    #[test]
    fn before_after_cross_sections_shrink() {
        let result = PostCmosFlow::paper().run(&WaferSpec::nominal()).unwrap();
        let before = result.before.total_thickness().value();
        let after_koh = result.after_koh.total_thickness().value();
        let beam = result.after_release_beam.total_thickness().value();
        assert!(before > 500e-6, "full wafer");
        assert!(after_koh < 15e-6, "membrane + BEOL");
        assert!(beam < after_koh, "release strips the dielectrics");
        assert!(before > after_koh);
    }

    #[test]
    fn etch_stop_tracks_nwell_depth_not_wafer() {
        // electrochemical stop: beam thickness follows the n-well depth
        let mut wafer = WaferSpec::nominal();
        wafer.nwell_depth = Meters::from_micrometers(6.5);
        wafer.wafer_thickness = Meters::from_micrometers(600.0); // thicker wafer!
        let r = PostCmosFlow::paper().run(&wafer).unwrap();
        assert!((r.beam_thickness.as_micrometers() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn timed_etch_tracks_wafer_thickness() {
        // timed etch: a +20 um thick wafer leaves +20 um membrane
        let flow = PostCmosFlow::timed_baseline();
        let nominal = flow.run(&WaferSpec::nominal()).unwrap();
        assert!((nominal.beam_thickness.as_micrometers() - 5.0).abs() < 1e-6);
        let mut thick = WaferSpec::nominal();
        thick.wafer_thickness = Meters::from_micrometers(545.0);
        let result = flow.run(&thick).unwrap();
        assert!(
            (result.beam_thickness.as_micrometers() - 25.0).abs() < 1e-6,
            "timed etch inherits wafer spread: {}",
            result.beam_thickness.as_micrometers()
        );
        // 25 um membrane beats the 12 um silicon RIE: release fails
        assert!(!result.released);
        assert!(!result.after_release_trench.films.is_empty());
    }

    #[test]
    fn weak_dielectric_etch_fails_release() {
        let mut flow = PostCmosFlow::paper();
        flow.dielectric_etch_capability = 0.5;
        let r = flow.run(&WaferSpec::nominal()).unwrap();
        assert!(!r.released);
        assert!(r
            .after_release_trench
            .films
            .iter()
            .any(|f| f.name.contains("dielectric")));
    }

    #[test]
    fn punch_through_is_an_error() {
        let mut flow = PostCmosFlow::timed_baseline();
        if let EtchStop::Timed { rate, .. } = flow.etch_stop {
            flow.etch_stop = EtchStop::Timed {
                rate,
                duration: 1e9,
            };
        }
        assert!(flow.run(&WaferSpec::nominal()).is_err());
    }

    #[test]
    fn invalid_wafer_rejected() {
        let mut wafer = WaferSpec::nominal();
        wafer.nwell_depth = Meters::from_micrometers(600.0);
        assert!(wafer.validate().is_err());
        wafer.nwell_depth = Meters::zero();
        assert!(wafer.validate().is_err());
    }

    #[test]
    fn render_sketches_both_states() {
        let r = PostCmosFlow::paper().run(&WaferSpec::nominal()).unwrap();
        let before = r.before.render();
        let after = r.after_release_beam.render();
        assert!(before.contains("bulk silicon"));
        assert!(before.contains("passivation"));
        assert!(after.contains("beam silicon"));
        assert!(
            !after.contains("passivation"),
            "dielectrics stripped:\n{after}"
        );
    }
}
