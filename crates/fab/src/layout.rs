//! A minimal rectilinear layout database: nanometer-grid rectangles in
//! cells, with the geometric predicates the DRC engine needs.
//!
//! Coordinates are `i64` nanometers — the integer database grid of real
//! layout tools, avoiding all floating-point equality pitfalls in design
//! rule arithmetic.

use std::collections::BTreeMap;

use crate::layers::MaskLayer;
use crate::FabError;

/// An axis-aligned rectangle on the nm grid; `x0 < x1`, `y0 < y1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rect {
    /// Left edge, nm.
    pub x0: i64,
    /// Bottom edge, nm.
    pub y0: i64,
    /// Right edge, nm.
    pub x1: i64,
    /// Top edge, nm.
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle from nm coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`FabError::DegenerateRect`] unless `x0 < x1` and `y0 < y1`.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Result<Self, FabError> {
        if x0 >= x1 || y0 >= y1 {
            return Err(FabError::DegenerateRect {
                coords: (x0, y0, x1, y1),
            });
        }
        Ok(Self { x0, y0, x1, y1 })
    }

    /// Creates a rectangle from micrometer coordinates (rounded to the nm
    /// grid).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate rectangle — µm-level constructors are used
    /// with literal dimensions in examples and generators.
    #[must_use]
    pub fn from_um(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self::new(
            (x0 * 1000.0).round() as i64,
            (y0 * 1000.0).round() as i64,
            (x1 * 1000.0).round() as i64,
            (y1 * 1000.0).round() as i64,
        )
        .expect("non-degenerate rectangle")
    }

    /// Width in nm.
    #[must_use]
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height in nm.
    #[must_use]
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// The smaller of width and height — what min-width rules check.
    #[must_use]
    pub fn min_dimension(&self) -> i64 {
        self.width().min(self.height())
    }

    /// Area in nm².
    #[must_use]
    pub fn area(&self) -> i128 {
        i128::from(self.width()) * i128::from(self.height())
    }

    /// `true` if the rectangles share interior area.
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The shared area, if any.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// `true` if `other` lies fully inside `self` (boundaries allowed).
    #[must_use]
    pub fn contains(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && self.y0 <= other.y0 && self.x1 >= other.x1 && self.y1 >= other.y1
    }

    /// Minimum margin by which `self` encloses `other`, negative if it
    /// does not.
    #[must_use]
    pub fn enclosure_margin(&self, other: &Rect) -> i64 {
        (other.x0 - self.x0)
            .min(self.x1 - other.x1)
            .min(other.y0 - self.y0)
            .min(self.y1 - other.y1)
    }

    /// Euclidean-free (Chebyshev-style axis) gap between two disjoint
    /// rectangles: the larger of the x-gap and y-gap when separated along
    /// one axis, the max when separated along both (conservative corner
    /// rule). Zero when touching or overlapping.
    #[must_use]
    pub fn spacing(&self, other: &Rect) -> i64 {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        if dx > 0 && dy > 0 {
            // corner-to-corner: use the diagonal, rounded down
            let d = ((dx as f64).hypot(dy as f64)).floor();
            d as i64
        } else {
            dx.max(dy)
        }
    }

    /// Grows the rectangle by `margin` nm on every side.
    ///
    /// # Errors
    ///
    /// Returns [`FabError::DegenerateRect`] if a negative margin collapses
    /// it.
    pub fn expanded(&self, margin: i64) -> Result<Rect, FabError> {
        Rect::new(
            self.x0 - margin,
            self.y0 - margin,
            self.x1 + margin,
            self.y1 + margin,
        )
    }

    /// Center point, nm.
    #[must_use]
    pub fn center(&self) -> (i64, i64) {
        ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({:.2},{:.2})-({:.2},{:.2}) um",
            self.x0 as f64 / 1000.0,
            self.y0 as f64 / 1000.0,
            self.x1 as f64 / 1000.0,
            self.y1 as f64 / 1000.0
        )
    }
}

/// A layout cell: named shape lists per mask layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cell {
    name: String,
    shapes: BTreeMap<MaskLayer, Vec<Rect>>,
}

impl Cell {
    /// Creates an empty cell.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            shapes: BTreeMap::new(),
        }
    }

    /// The cell name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a shape on a layer.
    pub fn add(&mut self, layer: MaskLayer, rect: Rect) -> &mut Self {
        self.shapes.entry(layer).or_default().push(rect);
        self
    }

    /// All shapes on `layer` (empty slice if none).
    #[must_use]
    pub fn shapes_on(&self, layer: MaskLayer) -> &[Rect] {
        self.shapes.get(&layer).map_or(&[], Vec::as_slice)
    }

    /// Layers that carry at least one shape.
    pub fn used_layers(&self) -> impl Iterator<Item = MaskLayer> + '_ {
        self.shapes
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| *k)
    }

    /// Total shape count.
    #[must_use]
    pub fn shape_count(&self) -> usize {
        self.shapes.values().map(Vec::len).sum()
    }

    /// Bounding box over all layers, `None` for an empty cell.
    #[must_use]
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.shapes.values().flatten();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| Rect {
            x0: acc.x0.min(r.x0),
            y0: acc.y0.min(r.y0),
            x1: acc.x1.max(r.x1),
            y1: acc.y1.max(r.y1),
        }))
    }
}

/// Generates the full cantilever layout cell the paper implies: n-well
/// under the beam, the beam outline on the FS silicon-etch mask, the
/// dielectric etch window around it, the backside KOH window, the metal-2
/// actuation coil along the beam edges and the metal-1 bridge wiring at the
/// clamped edge.
///
/// The backside window here uses a schematic 30 µm margin; for a window
/// sized by the real KOH sidewall geometry use
/// [`cantilever_cell_for_wafer`].
///
/// `length_um` × `width_um` is the beam plan size.
#[must_use]
pub fn cantilever_cell(length_um: f64, width_um: f64) -> Cell {
    let mut cell = Cell::new("cantilever");
    // Beam occupies (0,0)..(L,W); clamp at x = 0.
    let beam = Rect::from_um(0.0, 0.0, length_um, width_um);

    // FS silicon etch: a ring outlining the beam (three released sides as a
    // U-shaped trench, 5 um wide), abstracted as three trench rects.
    let trench = 5.0;
    cell.add(
        MaskLayer::FsSiliconEtch,
        Rect::from_um(length_um, -trench, length_um + trench, width_um + trench),
    );
    cell.add(
        MaskLayer::FsSiliconEtch,
        Rect::from_um(0.0, -trench, length_um, 0.0),
    );
    cell.add(
        MaskLayer::FsSiliconEtch,
        Rect::from_um(0.0, width_um, length_um, width_um + trench),
    );

    // FS dielectric etch window: beam + trench + 2 um margin.
    cell.add(
        MaskLayer::FsDielectricEtch,
        Rect::from_um(
            -2.0,
            -trench - 2.0,
            length_um + trench + 2.0,
            width_um + trench + 2.0,
        ),
    );

    // Backside window: membrane 30 um beyond the dielectric window.
    cell.add(
        MaskLayer::BacksideEtch,
        Rect::from_um(
            -32.0,
            -trench - 32.0,
            length_um + trench + 32.0,
            width_um + trench + 32.0,
        ),
    );

    // N-well covers beam and anchors generously (etch-stop requirement).
    cell.add(
        MaskLayer::NWell,
        Rect::from_um(
            -40.0,
            -trench - 36.0,
            length_um + trench + 36.0,
            width_um + trench + 36.0,
        ),
    );

    // Metal-2 actuation coil: two rails along the beam edges plus the tip
    // transverse segment (single-turn abstraction; real coil repeats).
    let rail = 2.0;
    cell.add(
        MaskLayer::Metal2,
        Rect::from_um(0.0, 1.0, length_um - 3.0, 1.0 + rail),
    );
    cell.add(
        MaskLayer::Metal2,
        Rect::from_um(0.0, width_um - 1.0 - rail, length_um - 3.0, width_um - 1.0),
    );
    cell.add(
        MaskLayer::Metal2,
        Rect::from_um(length_um - 3.0 - rail, 1.0, length_um - 3.0, width_um - 1.0),
    );

    // Metal-1 bridge wiring near the clamped edge (on the anchor side).
    cell.add(
        MaskLayer::Metal1,
        Rect::from_um(-10.0, 2.0, -2.0, width_um - 2.0),
    );

    // Diffused piezoresistors at the clamped edge.
    cell.add(MaskLayer::PPlus, Rect::from_um(1.0, 4.0, 9.0, 8.0));
    cell.add(
        MaskLayer::PPlus,
        Rect::from_um(1.0, width_um - 8.0, 9.0, width_um - 4.0),
    );

    let _ = beam;
    cell
}

/// Like [`cantilever_cell`], but sizes the backside KOH window for a real
/// wafer: the opening is oversized by the {111}-sidewall inset for etching
/// through `wafer_um − membrane_um` of silicon, plus a 20 µm alignment
/// margin — so the cell passes the wafer-thickness-derived DRC rule of
/// [`crate::anisotropic::backside_window_rule`].
#[must_use]
pub fn cantilever_cell_for_wafer(
    length_um: f64,
    width_um: f64,
    wafer_um: f64,
    membrane_um: f64,
) -> Cell {
    let cell = cantilever_cell(length_um, width_um);
    let etch_depth = canti_units::Meters::from_micrometers((wafer_um - membrane_um).max(1.0));
    let inset_um = crate::anisotropic::sidewall_inset(etch_depth).as_micrometers() + 20.0;
    // replace the schematic backside window with the honest one around the
    // dielectric etch window
    let fd = cell.shapes_on(MaskLayer::FsDielectricEtch)[0];
    let margin = (inset_um * 1000.0).round() as i64;
    let honest = fd.expanded(margin).expect("grows");
    let mut out = Cell::new(cell.name().to_owned());
    for layer in MaskLayer::ALL {
        for r in cell.shapes_on(layer) {
            if layer == MaskLayer::BacksideEtch {
                out.add(layer, honest);
            } else {
                out.add(layer, *r);
            }
        }
    }
    // the n-well etch-stop must still cover the dielectric window; grow it
    // too if the original is now smaller than required (it only needs to
    // cover FD, not EB — the stop acts where the front side opens)
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_validation_and_dims() {
        assert!(Rect::new(0, 0, 0, 10).is_err());
        assert!(Rect::new(10, 0, 0, 10).is_err());
        let r = Rect::new(0, 0, 2000, 1000).unwrap();
        assert_eq!(r.width(), 2000);
        assert_eq!(r.height(), 1000);
        assert_eq!(r.min_dimension(), 1000);
        assert_eq!(r.area(), 2_000_000);
        assert_eq!(r.center(), (1000, 500));
    }

    #[test]
    fn from_um_grid_snap() {
        let r = Rect::from_um(0.0005, 0.0, 1.0, 1.0);
        assert_eq!(r.x0, 1, "0.0005 um rounds to 1 nm");
        assert_eq!(r.x1, 1000);
    }

    #[test]
    fn intersection_and_containment() {
        let a = Rect::new(0, 0, 100, 100).unwrap();
        let b = Rect::new(50, 50, 150, 150).unwrap();
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(50, 50, 100, 100).unwrap());
        let c = Rect::new(10, 10, 90, 90).unwrap();
        assert!(a.contains(&c));
        assert!(!c.contains(&a));
        assert_eq!(a.enclosure_margin(&c), 10);
        assert!(a.enclosure_margin(&b) < 0);
        // disjoint
        let d = Rect::new(200, 0, 300, 100).unwrap();
        assert!(!a.intersects(&d));
        assert!(a.intersection(&d).is_none());
    }

    #[test]
    fn spacing_cases() {
        let a = Rect::new(0, 0, 100, 100).unwrap();
        // pure x gap
        let b = Rect::new(150, 0, 250, 100).unwrap();
        assert_eq!(a.spacing(&b), 50);
        // pure y gap
        let c = Rect::new(0, 130, 100, 200).unwrap();
        assert_eq!(a.spacing(&c), 30);
        // diagonal: 30,40 -> 50
        let d = Rect::new(130, 140, 200, 220).unwrap();
        assert_eq!(a.spacing(&d), 50);
        // touching
        let e = Rect::new(100, 0, 200, 100).unwrap();
        assert_eq!(a.spacing(&e), 0);
        // overlapping
        let f = Rect::new(50, 50, 150, 150).unwrap();
        assert_eq!(a.spacing(&f), 0);
        // symmetric
        assert_eq!(b.spacing(&a), a.spacing(&b));
    }

    #[test]
    fn expanded() {
        let a = Rect::new(0, 0, 100, 100).unwrap();
        let g = a.expanded(10).unwrap();
        assert_eq!(g, Rect::new(-10, -10, 110, 110).unwrap());
        assert!(a.expanded(-60).is_err());
    }

    #[test]
    fn cell_basics() {
        let mut c = Cell::new("test");
        assert!(c.bbox().is_none());
        c.add(MaskLayer::Metal1, Rect::from_um(0.0, 0.0, 1.0, 1.0));
        c.add(MaskLayer::Metal2, Rect::from_um(2.0, 2.0, 3.0, 3.0));
        assert_eq!(c.shape_count(), 2);
        assert_eq!(c.shapes_on(MaskLayer::Metal1).len(), 1);
        assert!(c.shapes_on(MaskLayer::Poly1).is_empty());
        assert_eq!(c.used_layers().count(), 2);
        let bb = c.bbox().unwrap();
        assert_eq!(bb, Rect::from_um(0.0, 0.0, 3.0, 3.0));
        assert_eq!(c.name(), "test");
    }

    #[test]
    fn cantilever_cell_structure() {
        let c = cantilever_cell(150.0, 140.0);
        // all three MEMS masks present
        for l in MaskLayer::MEMS {
            assert!(!c.shapes_on(l).is_empty(), "missing {l}");
        }
        // nwell encloses the dielectric window
        let nwell = c.shapes_on(MaskLayer::NWell)[0];
        let fd = c.shapes_on(MaskLayer::FsDielectricEtch)[0];
        assert!(nwell.contains(&fd));
        // backside window encloses the dielectric window
        let eb = c.shapes_on(MaskLayer::BacksideEtch)[0];
        assert!(eb.contains(&fd));
        // coil rails present on metal 2
        assert_eq!(c.shapes_on(MaskLayer::Metal2).len(), 3);
    }
}
