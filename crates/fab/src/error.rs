use std::fmt;

/// Error raised by `canti-fab` on invalid inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FabError {
    /// A quantity that must be strictly positive was zero or negative.
    NonPositive {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A degenerate rectangle (zero or negative extent).
    DegenerateRect {
        /// The rejected coordinates (x0, y0, x1, y1) in nm.
        coords: (i64, i64, i64, i64),
    },
    /// A process flow that cannot run (e.g. etch before deposition).
    InvalidFlow {
        /// What went wrong.
        reason: String,
    },
    /// Monte-Carlo configuration error.
    BadDistribution {
        /// What is wrong with the distribution.
        reason: &'static str,
    },
}

impl fmt::Display for FabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            Self::DegenerateRect { coords } => {
                write!(f, "degenerate rectangle {coords:?} (nm)")
            }
            Self::InvalidFlow { reason } => write!(f, "invalid process flow: {reason}"),
            Self::BadDistribution { reason } => write!(f, "bad distribution: {reason}"),
        }
    }
}

impl std::error::Error for FabError {}

pub(crate) fn ensure_positive(what: &'static str, value: f64) -> Result<(), FabError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(FabError::NonPositive { what, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_error_and_display() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FabError>();
        let e = FabError::DegenerateRect {
            coords: (0, 0, 0, 5),
        };
        assert!(e.to_string().contains("degenerate"));
    }
}
