//! `canti-farm`: a parallel, deterministic sensor-farm engine.
//!
//! The paper's pitch is arrays: "the sensor and the readout circuitry
//! can be integrated monolithically" scales to many cantilevers on many
//! chips. This crate simulates such farms — batches of dose-response
//! sweeps, Monte-Carlo process-variation trials and cross-reactivity
//! panels — sharded across a hand-rolled worker pool.
//!
//! # Determinism contract
//!
//! A batch's result is a pure function of `(batch_seed, jobs)`. Each job
//! derives its own counter-based RNG stream from the batch seed and its
//! index, results are written to index-addressed slots, and the shared
//! precompute cache only memoizes values that are themselves
//! deterministic. Consequence: [`Farm::run`] returns **bit-identical**
//! [`BatchReport`]s for any worker count — `threads = 1` is the oracle
//! the parallel schedule is tested against.
//!
//! # Fault isolation
//!
//! A job that errors or panics occupies its own slot of
//! [`BatchReport::outcomes`] as a [`FarmError`]; it never poisons the
//! rest of the batch.
//!
//! # Examples
//!
//! ```
//! use canti_farm::{dose_response_sweep, Farm, FarmConfig};
//!
//! let farm = Farm::new(FarmConfig { batch_seed: 42, threads: 2 });
//! let jobs = dose_response_sweep(&[1.0, 10.0, 100.0]);
//! let report = farm.run(&jobs);
//! assert_eq!(report.ok_count(), 3);
//! let peaks = report.metric_values("peak_volts");
//! assert!(peaks[0] < peaks[2], "more analyte, more signal");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
mod pool;
pub mod report;
pub mod supervisor;
pub mod telemetry;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub use cache::{CacheStats, PrecomputeCache, ResonantBaseline};
pub use job::{
    chaos_scan_batch, cross_reactivity_panel, dose_response_sweep, process_variation_batch,
    JobSpec, ProbeMode, Receptor,
};
pub use pool::WorkerStat;
pub use report::{BatchReport, FarmError, JobOutput};
pub use supervisor::{BreakerPosition, FarmSupervisor, SupervisedReport, SupervisorConfig};
pub use telemetry::{FarmObserver, FarmTelemetry};

/// Farm-wide settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Seed every job's RNG stream is derived from.
    pub batch_seed: u64,
    /// Worker threads; `0` means "use the machine's available
    /// parallelism".
    pub threads: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            batch_seed: 0x0CA7_F00D,
            threads: 0,
        }
    }
}

/// The batch engine: a worker pool plus a shared precompute cache,
/// optionally observed by a [`FarmObserver`].
#[derive(Debug)]
pub struct Farm {
    config: FarmConfig,
    cache: Arc<PrecomputeCache>,
    observer: Option<FarmObserver>,
}

impl Farm {
    /// Creates a farm with a fresh precompute cache.
    #[must_use]
    pub fn new(config: FarmConfig) -> Self {
        Self::with_cache(config, Arc::new(PrecomputeCache::new()))
    }

    /// Creates a farm sharing an existing cache (e.g. pre-warmed, or
    /// shared across successive batches).
    #[must_use]
    pub fn with_cache(config: FarmConfig, cache: Arc<PrecomputeCache>) -> Self {
        Self {
            config,
            cache,
            observer: None,
        }
    }

    /// Attaches an observer: subsequent [`Self::run`]s record per-job
    /// spans (queue-wait / precompute / solve), cache counters and
    /// per-worker utilization, and deposit a [`FarmTelemetry`] section in
    /// the report. Telemetry is strictly additive — the report's
    /// numerical payload is bit-identical with or without it.
    #[must_use]
    pub fn with_observer(mut self, observer: FarmObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    #[must_use]
    pub fn observer(&self) -> Option<&FarmObserver> {
        self.observer.as_ref()
    }

    /// The resolved worker count (`config.threads`, with `0` mapped to
    /// the machine's available parallelism).
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Hit/miss counters of the shared precompute cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-job, per-attempt RNG stream: a splitmix-style spread of
    /// the batch seed XOR-ed with the job index, so neighboring jobs land
    /// in distant ChaCha streams. Attempt `0` is the canonical stream;
    /// supervisor retries salt it with the attempt number so a re-run is
    /// a genuinely fresh (but still deterministic) draw sequence.
    fn job_rng(&self, job_index: usize, attempt: u32) -> ChaCha8Rng {
        let base = self.config.batch_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ job_index as u64;
        ChaCha8Rng::seed_from_u64(base ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Runs one job through the catch-unwind boundary, mapping the three
    /// failure shapes into the job's outcome slot.
    fn run_job(
        &self,
        i: usize,
        attempt: u32,
        spec: &JobSpec,
        obs: Option<&telemetry::JobInstruments<'_>>,
    ) -> Result<JobOutput, FarmError> {
        let mut rng = self.job_rng(i, attempt);
        let run = catch_unwind(AssertUnwindSafe(|| {
            job::execute(spec, &mut rng, &self.cache, obs)
        }));
        match run {
            Ok(Ok(metrics)) => Ok(JobOutput {
                job_index: i,
                kind: spec.kind(),
                metrics,
            }),
            Ok(Err(reason)) => Err(FarmError::Job {
                job_index: i,
                reason,
            }),
            Err(payload) => Err(FarmError::Panic {
                job_index: i,
                message: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Runs a batch, returning one outcome per job in submission order.
    ///
    /// Jobs run on [`Self::threads`] workers; errors and panics are
    /// captured per job as [`FarmError`]s without aborting the batch.
    /// The report is bit-identical for any worker count, with or without
    /// an attached observer.
    #[must_use]
    pub fn run(&self, jobs: &[JobSpec]) -> BatchReport {
        let threads = self.threads();
        let obs = self.observer.as_ref();

        // per-stage instruments (registered once per farm, shared Arc)
        let stage_histograms = obs.map(|o| {
            (
                o.metrics().histogram("farm.queue_wait_ns"),
                o.metrics().histogram("farm.precompute_ns"),
                o.metrics().histogram("farm.solve_ns"),
            )
        });
        let batch_span = obs.map(|o| {
            o.tracer().span(
                "batch",
                &[
                    ("jobs", jobs.len().into()),
                    ("workers", threads.into()),
                    ("batch_seed", self.config.batch_seed.into()),
                ],
            )
        });
        let batch_start_ns = obs.map_or(0, |o| o.clock().now_ns());

        let (outcomes, worker_stats) = pool::run_indexed_observed(
            jobs.len(),
            threads,
            |i| match (obs, &stage_histograms) {
                (Some(o), Some((queue_wait, precompute, solve))) => {
                    queue_wait.record(o.clock().now_ns().saturating_sub(batch_start_ns));
                    let job_span = o
                        .tracer()
                        .span("job", &[("job", i.into()), ("kind", jobs[i].kind().into())]);
                    let instruments = telemetry::JobInstruments {
                        tracer: o.tracer(),
                        metrics: o.metrics(),
                        precompute_ns: precompute,
                    };
                    let outcome = self.run_job(i, 0, &jobs[i], Some(&instruments));
                    solve.record(job_span.end());
                    outcome
                }
                _ => self.run_job(i, 0, &jobs[i], None),
            },
            obs.map(|o| o.clock().as_ref()),
        );

        let telemetry = obs.map(|o| {
            let ok = outcomes.iter().filter(|r| r.is_ok()).count() as u64;
            o.metrics().counter("farm.batches").add(1);
            o.metrics().gauge("farm.workers").set(threads as i64);
            o.metrics().counter("farm.jobs_ok").add(ok);
            o.metrics()
                .counter("farm.jobs_failed")
                .add(outcomes.len() as u64 - ok);
            let (queue_wait, precompute, solve) = stage_histograms
                .as_ref()
                .expect("observer implies instruments");
            FarmTelemetry {
                workers: threads,
                jobs: jobs.len(),
                queue_wait_ns: queue_wait.snapshot(),
                precompute_ns: precompute.snapshot(),
                solve_ns: solve.snapshot(),
                cache: self.cache.stats(),
                per_worker: worker_stats,
            }
        });
        drop(batch_span);

        BatchReport {
            batch_seed: self.config.batch_seed,
            outcomes,
            telemetry,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn farm(threads: usize) -> Farm {
        Farm::new(FarmConfig {
            batch_seed: 0xBEEF,
            threads,
        })
    }

    #[test]
    fn probe_batch_is_worker_count_invariant() {
        let jobs: Vec<JobSpec> = (0..32)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 5)))
            .collect();
        let oracle = farm(1).run(&jobs);
        for threads in [2, 4, 8] {
            assert_eq!(farm(threads).run(&jobs), oracle, "{threads} threads");
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let jobs = vec![
            JobSpec::Probe(ProbeMode::Value(1.0)),
            JobSpec::Probe(ProbeMode::Panic),
            JobSpec::Probe(ProbeMode::Value(3.0)),
        ];
        let report = farm(2).run(&jobs);
        assert_eq!(report.ok_count(), 2);
        match &report.outcomes[1] {
            Err(FarmError::Panic { job_index, message }) => {
                assert_eq!(*job_index, 1);
                assert!(message.contains("intentional"), "{message}");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
        // neighbors unaffected
        assert_eq!(
            report.outcomes[0].as_ref().unwrap().metric("value"),
            Some(1.0)
        );
        assert_eq!(
            report.outcomes[2].as_ref().unwrap().metric("value"),
            Some(3.0)
        );
    }

    #[test]
    fn batch_seed_changes_the_draws() {
        let jobs = vec![JobSpec::Probe(ProbeMode::Draws(4))];
        let a = Farm::new(FarmConfig {
            batch_seed: 1,
            threads: 1,
        })
        .run(&jobs);
        let b = Farm::new(FarmConfig {
            batch_seed: 2,
            threads: 1,
        })
        .run(&jobs);
        assert_ne!(a.outcomes, b.outcomes);
        assert_eq!(a.batch_seed, 1);
    }

    #[test]
    fn threads_zero_resolves_to_machine_parallelism() {
        let f = Farm::new(FarmConfig {
            batch_seed: 0,
            threads: 0,
        });
        assert!(f.threads() >= 1);
        let fixed = farm(3);
        assert_eq!(fixed.threads(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = farm(4).run(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.ok_count(), 0);
    }

    #[test]
    fn observed_run_is_bit_identical_and_carries_telemetry() {
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 4)))
            .collect();
        let plain = farm(4).run(&jobs);
        assert!(plain.telemetry.is_none());

        let (observer, ring) = FarmObserver::deterministic(4096);
        let observed = farm(4).with_observer(observer).run(&jobs);
        let telemetry = observed.telemetry.as_ref().expect("observer => telemetry");
        assert_eq!(observed, plain, "telemetry must not perturb results");
        assert_eq!(telemetry.jobs, 12);
        assert_eq!(telemetry.workers, 4);
        assert_eq!(telemetry.queue_wait_ns.count, 12);
        assert_eq!(telemetry.solve_ns.count, 12);
        assert_eq!(
            telemetry.precompute_ns.count, 0,
            "probe jobs skip the cache"
        );
        assert_eq!(telemetry.per_worker.iter().map(|w| w.jobs).sum::<u64>(), 12);
        // trace stream: one batch span + one job span per job
        let events = ring.events();
        assert_eq!(events.first().map(|e| e.name.as_str()), Some("batch"));
        assert_eq!(events.last().map(|e| e.name.as_str()), Some("batch"));
        let job_starts = events
            .iter()
            .filter(|e| e.name == "job" && e.kind == canti_obs::EventKind::SpanStart)
            .count();
        assert_eq!(job_starts, 12);
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let jobs = dose_response_sweep(&[1.0, 10.0, 100.0, 1000.0]);
        let f = farm(2);
        let report = f.run(&jobs);
        assert_eq!(report.ok_count(), 4);
        let stats = f.cache_stats();
        assert_eq!(stats.misses, 1, "one chain precompute for the whole batch");
        assert_eq!(stats.hits, 3);
    }
}
