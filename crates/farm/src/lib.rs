//! `canti-farm`: a parallel, deterministic sensor-farm engine.
//!
//! The paper's pitch is arrays: "the sensor and the readout circuitry
//! can be integrated monolithically" scales to many cantilevers on many
//! chips. This crate simulates such farms — batches of dose-response
//! sweeps, Monte-Carlo process-variation trials and cross-reactivity
//! panels — sharded across a hand-rolled worker pool.
//!
//! # Determinism contract
//!
//! A batch's result is a pure function of `(batch_seed, jobs)`. Each job
//! derives its own counter-based RNG stream from the batch seed and its
//! index, results are written to index-addressed slots, and the shared
//! precompute cache only memoizes values that are themselves
//! deterministic. Consequence: [`Farm::run`] returns **bit-identical**
//! [`BatchReport`]s for any worker count — `threads = 1` is the oracle
//! the parallel schedule is tested against.
//!
//! # Fault isolation
//!
//! A job that errors or panics occupies its own slot of
//! [`BatchReport::outcomes`] as a [`FarmError`]; it never poisons the
//! rest of the batch.
//!
//! # Examples
//!
//! ```
//! use canti_farm::{dose_response_sweep, Farm, FarmConfig};
//!
//! let farm = Farm::new(FarmConfig { batch_seed: 42, threads: 2 });
//! let jobs = dose_response_sweep(&[1.0, 10.0, 100.0]);
//! let report = farm.run(&jobs);
//! assert_eq!(report.ok_count(), 3);
//! let peaks = report.metric_values("peak_volts");
//! assert!(peaks[0] < peaks[2], "more analyte, more signal");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
mod pool;
pub mod report;
pub mod supervisor;
pub mod telemetry;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub use cache::{CacheStats, PrecomputeCache, ResonantBaseline};
pub use job::{
    chaos_scan_batch, cross_reactivity_panel, dose_response_sweep, process_variation_batch,
    JobSpec, ProbeMode, Receptor,
};
pub use pool::{PoolHook, WorkerPool, WorkerStat};
pub use report::{BatchReport, FarmError, JobOutput};
pub use supervisor::{BreakerPosition, FarmSupervisor, SupervisedReport, SupervisorConfig};
pub use telemetry::{FarmObserver, FarmTelemetry};

/// Farm-wide settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Seed every job's RNG stream is derived from.
    pub batch_seed: u64,
    /// Worker threads; `0` means "use the machine's available
    /// parallelism".
    pub threads: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            batch_seed: 0x0CA7_F00D,
            threads: 0,
        }
    }
}

/// The batch engine: a worker pool plus a shared precompute cache,
/// optionally observed by a [`FarmObserver`].
pub struct Farm {
    config: FarmConfig,
    cache: Arc<PrecomputeCache>,
    observer: Option<FarmObserver>,
    pool: Option<Arc<WorkerPool>>,
    sabotage: Option<PoolHook>,
}

impl std::fmt::Debug for Farm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Farm")
            .field("config", &self.config)
            .field("observed", &self.observer.is_some())
            .field("pooled", &self.pool.is_some())
            .field("sabotaged", &self.sabotage.is_some())
            .finish()
    }
}

impl Farm {
    /// Creates a farm with a fresh precompute cache.
    #[must_use]
    pub fn new(config: FarmConfig) -> Self {
        Self::with_cache(config, Arc::new(PrecomputeCache::new()))
    }

    /// Creates a farm sharing an existing cache (e.g. pre-warmed, or
    /// shared across successive batches).
    #[must_use]
    pub fn with_cache(config: FarmConfig, cache: Arc<PrecomputeCache>) -> Self {
        Self {
            config,
            cache,
            observer: None,
            pool: None,
            sabotage: None,
        }
    }

    /// Attaches a persistent [`WorkerPool`]: subsequent runs dispatch
    /// onto its long-lived threads instead of spawning a fresh scoped
    /// pool per batch. The report is bit-identical either way (the
    /// determinism contract does not depend on the scheduling
    /// substrate); [`Self::threads`] reports the pool's size while one
    /// is attached, overriding `config.threads`.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a [`PoolHook`] the attached pool's workers call before
    /// each job, outside the per-job panic harness — the serve chaos
    /// seam for simulating harness-level worker deaths. Effective only
    /// on the persistent-pool path ([`Self::with_pool`]); the
    /// spawn-per-batch oracle stays hook-free.
    #[must_use]
    pub fn with_sabotage(mut self, hook: PoolHook) -> Self {
        self.sabotage = Some(hook);
        self
    }

    /// Attaches an observer: subsequent [`Self::run`]s record per-job
    /// spans (queue-wait / precompute / solve), cache counters and
    /// per-worker utilization, and deposit a [`FarmTelemetry`] section in
    /// the report. Telemetry is strictly additive — the report's
    /// numerical payload is bit-identical with or without it.
    #[must_use]
    pub fn with_observer(mut self, observer: FarmObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    #[must_use]
    pub fn observer(&self) -> Option<&FarmObserver> {
        self.observer.as_ref()
    }

    /// The resolved worker count: the attached pool's size when one is
    /// present, else `config.threads` with `0` mapped to the machine's
    /// available parallelism.
    #[must_use]
    pub fn threads(&self) -> usize {
        if let Some(pool) = &self.pool {
            pool.threads()
        } else if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Hit/miss counters of the shared precompute cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Builds the owned per-batch execution state shared by the plain
    /// and supervised paths. `batch_start_ns` anchors queue-wait
    /// samples; `seeds` switches the RNG derivation to explicit per-job
    /// seeds (the sharded serve path); `contexts` stamps each job span
    /// with the owning request's trace context (telemetry only — it
    /// never reaches the payload path).
    pub(crate) fn batch_runner(
        &self,
        jobs: Arc<Vec<JobSpec>>,
        seeds: Option<Vec<u64>>,
        contexts: Option<Vec<canti_obs::TraceContext>>,
        batch_start_ns: u64,
    ) -> BatchRunner {
        BatchRunner {
            batch_seed: self.config.batch_seed,
            seeds: seeds.map(Arc::new),
            contexts: contexts.map(Arc::new),
            jobs,
            cache: Arc::clone(&self.cache),
            observer: self.observer.clone(),
            stages: self
                .observer
                .as_ref()
                .map(telemetry::StageInstruments::register),
            batch_start_ns,
        }
    }

    /// Dispatches one wave of jobs onto the execution substrate: the
    /// attached persistent pool when present, else a scoped
    /// spawn-per-batch pool. `items` maps wave slots to batch job
    /// indexes (`None` runs the whole batch, slot `i` = job `i`).
    pub(crate) fn dispatch(
        &self,
        runner: &Arc<BatchRunner>,
        items: Option<Arc<Vec<usize>>>,
        attempt: u32,
        deadline_ns: Option<u64>,
    ) -> (Vec<Result<JobOutput, FarmError>>, Vec<WorkerStat>) {
        let n = items.as_ref().map_or(runner.jobs.len(), |v| v.len());
        let wave = items.is_some();
        match &self.pool {
            Some(pool) => {
                let r = Arc::clone(runner);
                pool.run_observed_hooked(
                    n,
                    move |slot| {
                        let i = items.as_ref().map_or(slot, |v| v[slot]);
                        r.run_job(i, attempt, wave, deadline_ns)
                    },
                    runner.observer.as_ref().map(|o| Arc::clone(o.clock())),
                    self.sabotage.clone(),
                )
            }
            None => pool::run_indexed_observed(
                n,
                self.threads(),
                |slot| {
                    let i = items.as_ref().map_or(slot, |v| v[slot]);
                    runner.run_job(i, attempt, wave, deadline_ns)
                },
                runner.observer.as_ref().map(|o| o.clock().as_ref()),
            ),
        }
    }

    /// Runs a batch, returning one outcome per job in submission order.
    ///
    /// Jobs run on [`Self::threads`] workers; errors and panics are
    /// captured per job as [`FarmError`]s without aborting the batch.
    /// The report is bit-identical for any worker count, with or without
    /// an attached observer, and with or without a persistent pool.
    #[must_use]
    pub fn run(&self, jobs: &[JobSpec]) -> BatchReport {
        self.run_with_seeds(jobs, None)
    }

    /// Like [`Self::run`], but each job's RNG stream derives from its
    /// explicit seed instead of `(batch_seed, index)`. This is the
    /// sharded serve path's hook: per-request seeds make a request's
    /// payload independent of which batch slot — and which shard — it
    /// lands in.
    ///
    /// # Panics
    ///
    /// Panics unless `seeds.len() == jobs.len()`.
    #[must_use]
    pub fn run_seeded(&self, jobs: &[JobSpec], seeds: &[u64]) -> BatchReport {
        assert_eq!(jobs.len(), seeds.len(), "one seed per job");
        self.run_inner(jobs, Some(seeds.to_vec()), None)
    }

    /// [`Self::run_seeded`] with one [`canti_obs::TraceContext`] per
    /// job: each job span additionally carries the owning request's
    /// `request`/`trace` fields, so a request can be followed from its
    /// admission span into the farm. Strictly additive — the report is
    /// bit-identical to the untraced run, and farm-only callers that
    /// never pass contexts keep byte-identical telemetry.
    ///
    /// # Panics
    ///
    /// Panics unless `seeds` and `contexts` both match `jobs` in length.
    #[must_use]
    pub fn run_traced(
        &self,
        jobs: &[JobSpec],
        seeds: &[u64],
        contexts: &[canti_obs::TraceContext],
    ) -> BatchReport {
        assert_eq!(jobs.len(), seeds.len(), "one seed per job");
        assert_eq!(jobs.len(), contexts.len(), "one trace context per job");
        self.run_inner(jobs, Some(seeds.to_vec()), Some(contexts.to_vec()))
    }

    fn run_with_seeds(&self, jobs: &[JobSpec], seeds: Option<Vec<u64>>) -> BatchReport {
        self.run_inner(jobs, seeds, None)
    }

    fn run_inner(
        &self,
        jobs: &[JobSpec],
        seeds: Option<Vec<u64>>,
        contexts: Option<Vec<canti_obs::TraceContext>>,
    ) -> BatchReport {
        let threads = self.threads();
        let obs = self.observer.as_ref();

        let batch_span = obs.map(|o| {
            o.tracer().span(
                "batch",
                &[
                    ("jobs", jobs.len().into()),
                    ("workers", threads.into()),
                    ("batch_seed", self.config.batch_seed.into()),
                ],
            )
        });
        let batch_start_ns = obs.map_or(0, |o| o.clock().now_ns());
        let runner =
            Arc::new(self.batch_runner(Arc::new(jobs.to_vec()), seeds, contexts, batch_start_ns));

        // Stage histograms are registry-backed and cumulative across
        // batches, so this batch's contribution is a post-minus-pre
        // snapshot delta.
        let pre_stages = obs.filter(|o| o.timeline().is_some()).map(|_| {
            let stages = runner
                .stages
                .as_ref()
                .expect("observer implies instruments");
            (
                stages.queue_wait.snapshot(),
                stages.precompute.snapshot(),
                stages.solve.snapshot(),
            )
        });

        let (outcomes, worker_stats) = self.dispatch(&runner, None, 0, None);

        let telemetry = obs.map(|o| {
            let ok = outcomes.iter().filter(|r| r.is_ok()).count() as u64;
            o.metrics().counter("farm.batches").add(1);
            o.metrics().gauge("farm.workers").set(threads as i64);
            o.metrics().counter("farm.jobs_ok").add(ok);
            o.metrics()
                .counter("farm.jobs_failed")
                .add(outcomes.len() as u64 - ok);
            let stages = runner
                .stages
                .as_ref()
                .expect("observer implies instruments");
            let telemetry = FarmTelemetry {
                workers: threads,
                jobs: jobs.len(),
                queue_wait_ns: stages.queue_wait.snapshot(),
                precompute_ns: stages.precompute.snapshot(),
                solve_ns: stages.solve.snapshot(),
                cache: self.cache.stats(),
                per_worker: worker_stats,
            };
            if let (Some(timeline), Some((pre_wait, pre_pre, pre_solve))) =
                (o.timeline(), pre_stages.as_ref())
            {
                // Aggregate per-batch deltas only, stamped at batch end.
                // Per-worker series are deliberately absent: they would
                // depend on the worker count and break the timeline's
                // bit-identity contract.
                let now_ns = o.clock().now_ns();
                timeline.record_delta("farm.batches", 1, now_ns);
                timeline.record_delta("farm.jobs_ok", ok, now_ns);
                timeline.record_delta("farm.jobs_failed", outcomes.len() as u64 - ok, now_ns);
                let busy: u64 = telemetry.per_worker.iter().map(|w| w.busy_ns).sum();
                timeline.record_delta("farm.busy_ns", busy, now_ns);
                for (series, post, pre) in [
                    ("farm.queue_wait_ns", &telemetry.queue_wait_ns, pre_wait),
                    ("farm.precompute_ns", &telemetry.precompute_ns, pre_pre),
                    ("farm.solve_ns", &telemetry.solve_ns, pre_solve),
                ] {
                    timeline.record_delta(series, post.sum.saturating_sub(pre.sum), now_ns);
                }
            }
            telemetry
        });
        drop(batch_span);

        BatchReport {
            batch_seed: self.config.batch_seed,
            outcomes,
            telemetry,
        }
    }
}

/// Everything one batch execution needs, owned, so per-job closures are
/// `'static` and can cross into a persistent [`WorkerPool`]. Shared by
/// [`Farm::run`] and the supervisor's retry waves.
pub(crate) struct BatchRunner {
    batch_seed: u64,
    seeds: Option<Arc<Vec<u64>>>,
    contexts: Option<Arc<Vec<canti_obs::TraceContext>>>,
    pub(crate) jobs: Arc<Vec<JobSpec>>,
    cache: Arc<PrecomputeCache>,
    pub(crate) observer: Option<FarmObserver>,
    pub(crate) stages: Option<telemetry::StageInstruments>,
    batch_start_ns: u64,
}

impl BatchRunner {
    /// The per-job, per-attempt RNG stream. The canonical derivation is
    /// a splitmix-style spread of the batch seed XOR-ed with the job
    /// index, so neighboring jobs land in distant ChaCha streams; the
    /// seeded path substitutes an explicit per-job seed for that base.
    /// Attempt `0` is the canonical stream; supervisor retries salt it
    /// with the attempt number so a re-run is a genuinely fresh (but
    /// still deterministic) draw sequence.
    fn job_rng(&self, job_index: usize, attempt: u32) -> ChaCha8Rng {
        let base = match &self.seeds {
            Some(seeds) => seeds[job_index],
            None => self.batch_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ job_index as u64,
        };
        ChaCha8Rng::seed_from_u64(base ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Runs one job through the catch-unwind boundary, mapping the three
    /// failure shapes into the job's outcome slot.
    fn execute(
        &self,
        i: usize,
        attempt: u32,
        obs: Option<&telemetry::JobInstruments>,
    ) -> Result<JobOutput, FarmError> {
        let spec = &self.jobs[i];
        let mut rng = self.job_rng(i, attempt);
        let run = catch_unwind(AssertUnwindSafe(|| {
            job::execute(spec, &mut rng, &self.cache, obs)
        }));
        match run {
            Ok(Ok(metrics)) => Ok(JobOutput {
                job_index: i,
                kind: spec.kind(),
                metrics,
            }),
            Ok(Err(reason)) => Err(FarmError::Job {
                job_index: i,
                reason,
            }),
            Err(payload) => Err(FarmError::Panic {
                job_index: i,
                message: panic_message(payload.as_ref()),
            }),
        }
    }

    /// The full per-job pipeline: queue-wait sample, `job` span (with
    /// the attempt field on supervised waves), stage instruments, and
    /// the optional observer-clock deadline.
    pub(crate) fn run_job(
        &self,
        i: usize,
        attempt: u32,
        wave: bool,
        deadline_ns: Option<u64>,
    ) -> Result<JobOutput, FarmError> {
        let (Some(o), Some(stages)) = (self.observer.as_ref(), self.stages.as_ref()) else {
            return self.execute(i, attempt, None);
        };
        stages
            .queue_wait
            .record(o.clock().now_ns().saturating_sub(self.batch_start_ns));
        let kind = self.jobs[i].kind();
        let mut fields: Vec<(&'static str, canti_obs::JsonValue)> =
            vec![("job", i.into()), ("kind", kind.into())];
        if let Some(ctx) = self.contexts.as_ref().map(|c| c[i]) {
            fields.push(("request", ctx.request.into()));
            fields.push(("trace", ctx.trace.into()));
        }
        if wave {
            fields.push(("attempt", u64::from(attempt).into()));
        }
        let job_span = o.tracer().span("job", &fields);
        let instruments = telemetry::JobInstruments {
            tracer: o.tracer().clone(),
            metrics: Arc::clone(o.metrics()),
            precompute_ns: Arc::clone(&stages.precompute),
        };
        let t0 = o.clock().now_ns();
        let outcome = self.execute(i, attempt, Some(&instruments));
        let elapsed = o.clock().now_ns().saturating_sub(t0);
        stages.solve.record(job_span.end());
        match deadline_ns {
            Some(deadline) if elapsed > deadline => Err(FarmError::DeadlineExceeded {
                job_index: i,
                elapsed_ns: elapsed,
                deadline_ns: deadline,
            }),
            _ => outcome,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn farm(threads: usize) -> Farm {
        Farm::new(FarmConfig {
            batch_seed: 0xBEEF,
            threads,
        })
    }

    #[test]
    fn probe_batch_is_worker_count_invariant() {
        let jobs: Vec<JobSpec> = (0..32)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 5)))
            .collect();
        let oracle = farm(1).run(&jobs);
        for threads in [2, 4, 8] {
            assert_eq!(farm(threads).run(&jobs), oracle, "{threads} threads");
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let jobs = vec![
            JobSpec::Probe(ProbeMode::Value(1.0)),
            JobSpec::Probe(ProbeMode::Panic),
            JobSpec::Probe(ProbeMode::Value(3.0)),
        ];
        let report = farm(2).run(&jobs);
        assert_eq!(report.ok_count(), 2);
        match &report.outcomes[1] {
            Err(FarmError::Panic { job_index, message }) => {
                assert_eq!(*job_index, 1);
                assert!(message.contains("intentional"), "{message}");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
        // neighbors unaffected
        assert_eq!(
            report.outcomes[0].as_ref().unwrap().metric("value"),
            Some(1.0)
        );
        assert_eq!(
            report.outcomes[2].as_ref().unwrap().metric("value"),
            Some(3.0)
        );
    }

    #[test]
    fn batch_seed_changes_the_draws() {
        let jobs = vec![JobSpec::Probe(ProbeMode::Draws(4))];
        let a = Farm::new(FarmConfig {
            batch_seed: 1,
            threads: 1,
        })
        .run(&jobs);
        let b = Farm::new(FarmConfig {
            batch_seed: 2,
            threads: 1,
        })
        .run(&jobs);
        assert_ne!(a.outcomes, b.outcomes);
        assert_eq!(a.batch_seed, 1);
    }

    #[test]
    fn threads_zero_resolves_to_machine_parallelism() {
        let f = Farm::new(FarmConfig {
            batch_seed: 0,
            threads: 0,
        });
        assert!(f.threads() >= 1);
        let fixed = farm(3);
        assert_eq!(fixed.threads(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = farm(4).run(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.ok_count(), 0);
    }

    #[test]
    fn observed_run_is_bit_identical_and_carries_telemetry() {
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 4)))
            .collect();
        let plain = farm(4).run(&jobs);
        assert!(plain.telemetry.is_none());

        let (observer, ring) = FarmObserver::deterministic(4096);
        let observed = farm(4).with_observer(observer).run(&jobs);
        let telemetry = observed.telemetry.as_ref().expect("observer => telemetry");
        assert_eq!(observed, plain, "telemetry must not perturb results");
        assert_eq!(telemetry.jobs, 12);
        assert_eq!(telemetry.workers, 4);
        assert_eq!(telemetry.queue_wait_ns.count, 12);
        assert_eq!(telemetry.solve_ns.count, 12);
        assert_eq!(
            telemetry.precompute_ns.count, 0,
            "probe jobs skip the cache"
        );
        assert_eq!(telemetry.per_worker.iter().map(|w| w.jobs).sum::<u64>(), 12);
        // trace stream: one batch span + one job span per job
        let events = ring.events();
        assert_eq!(events.first().map(|e| e.name.as_str()), Some("batch"));
        assert_eq!(events.last().map(|e| e.name.as_str()), Some("batch"));
        let job_starts = events
            .iter()
            .filter(|e| e.name == "job" && e.kind == canti_obs::EventKind::SpanStart)
            .count();
        assert_eq!(job_starts, 12);
    }

    #[test]
    fn persistent_pool_run_is_bit_identical_to_spawned() {
        let jobs: Vec<JobSpec> = (0..16)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 5)))
            .collect();
        let oracle = farm(1).run(&jobs);
        for threads in [1, 2, 8] {
            let pool = Arc::new(WorkerPool::new(threads));
            let pooled = farm(threads).with_pool(Arc::clone(&pool));
            assert_eq!(pooled.threads(), threads);
            // reuse the same pool across several batches
            for _ in 0..3 {
                assert_eq!(pooled.run(&jobs), oracle, "{threads} pooled workers");
            }
        }
    }

    #[test]
    fn run_seeded_with_canonical_seeds_matches_run() {
        let jobs: Vec<JobSpec> = (0..8)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 3)))
            .collect();
        let f = farm(2);
        let canonical: Vec<u64> = (0..jobs.len())
            .map(|i| 0xBEEFu64.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64)
            .collect();
        assert_eq!(
            f.run_seeded(&jobs, &canonical),
            f.run(&jobs),
            "explicit canonical seeds reproduce the derived streams"
        );
        // and seeds actually matter: permuting them changes the payload
        let mut permuted = canonical.clone();
        permuted.swap(0, 7);
        assert_ne!(
            f.run_seeded(&jobs, &permuted).outcomes,
            f.run(&jobs).outcomes
        );
    }

    #[test]
    #[should_panic(expected = "one seed per job")]
    fn run_seeded_rejects_mismatched_lengths() {
        let _ = farm(1).run_seeded(&[JobSpec::Probe(ProbeMode::Value(1.0))], &[1, 2]);
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let jobs = dose_response_sweep(&[1.0, 10.0, 100.0, 1000.0]);
        let f = farm(2);
        let report = f.run(&jobs);
        assert_eq!(report.ok_count(), 4);
        let stats = f.cache_stats();
        assert_eq!(stats.misses, 1, "one chain precompute for the whole batch");
        assert_eq!(stats.hits, 3);
    }
}
