//! `canti-farm`: a parallel, deterministic sensor-farm engine.
//!
//! The paper's pitch is arrays: "the sensor and the readout circuitry
//! can be integrated monolithically" scales to many cantilevers on many
//! chips. This crate simulates such farms — batches of dose-response
//! sweeps, Monte-Carlo process-variation trials and cross-reactivity
//! panels — sharded across a hand-rolled worker pool.
//!
//! # Determinism contract
//!
//! A batch's result is a pure function of `(batch_seed, jobs)`. Each job
//! derives its own counter-based RNG stream from the batch seed and its
//! index, results are written to index-addressed slots, and the shared
//! precompute cache only memoizes values that are themselves
//! deterministic. Consequence: [`Farm::run`] returns **bit-identical**
//! [`BatchReport`]s for any worker count — `threads = 1` is the oracle
//! the parallel schedule is tested against.
//!
//! # Fault isolation
//!
//! A job that errors or panics occupies its own slot of
//! [`BatchReport::outcomes`] as a [`FarmError`]; it never poisons the
//! rest of the batch.
//!
//! # Examples
//!
//! ```
//! use canti_farm::{dose_response_sweep, Farm, FarmConfig};
//!
//! let farm = Farm::new(FarmConfig { batch_seed: 42, threads: 2 });
//! let jobs = dose_response_sweep(&[1.0, 10.0, 100.0]);
//! let report = farm.run(&jobs);
//! assert_eq!(report.ok_count(), 3);
//! let peaks = report.metric_values("peak_volts");
//! assert!(peaks[0] < peaks[2], "more analyte, more signal");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
mod pool;
pub mod report;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub use cache::{CacheStats, PrecomputeCache, ResonantBaseline};
pub use job::{
    cross_reactivity_panel, dose_response_sweep, process_variation_batch, JobSpec, ProbeMode,
    Receptor,
};
pub use report::{BatchReport, FarmError, JobOutput};

/// Farm-wide settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Seed every job's RNG stream is derived from.
    pub batch_seed: u64,
    /// Worker threads; `0` means "use the machine's available
    /// parallelism".
    pub threads: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            batch_seed: 0x0CA7_F00D,
            threads: 0,
        }
    }
}

/// The batch engine: a worker pool plus a shared precompute cache.
#[derive(Debug)]
pub struct Farm {
    config: FarmConfig,
    cache: Arc<PrecomputeCache>,
}

impl Farm {
    /// Creates a farm with a fresh precompute cache.
    #[must_use]
    pub fn new(config: FarmConfig) -> Self {
        Self::with_cache(config, Arc::new(PrecomputeCache::new()))
    }

    /// Creates a farm sharing an existing cache (e.g. pre-warmed, or
    /// shared across successive batches).
    #[must_use]
    pub fn with_cache(config: FarmConfig, cache: Arc<PrecomputeCache>) -> Self {
        Self { config, cache }
    }

    /// The resolved worker count (`config.threads`, with `0` mapped to
    /// the machine's available parallelism).
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Hit/miss counters of the shared precompute cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The per-job RNG stream: a splitmix-style spread of the batch seed
    /// XOR-ed with the job index, so neighboring jobs land in distant
    /// ChaCha streams.
    fn job_rng(&self, job_index: usize) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(
            self.config.batch_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ job_index as u64,
        )
    }

    /// Runs a batch, returning one outcome per job in submission order.
    ///
    /// Jobs run on [`Self::threads`] workers; errors and panics are
    /// captured per job as [`FarmError`]s without aborting the batch.
    /// The report is bit-identical for any worker count.
    #[must_use]
    pub fn run(&self, jobs: &[JobSpec]) -> BatchReport {
        let outcomes = pool::run_indexed(jobs.len(), self.threads(), |i| {
            let spec = jobs[i].clone();
            let mut rng = self.job_rng(i);
            let cache = Arc::clone(&self.cache);
            let run = catch_unwind(AssertUnwindSafe(|| job::execute(&spec, &mut rng, &cache)));
            match run {
                Ok(Ok(metrics)) => Ok(JobOutput {
                    job_index: i,
                    kind: spec.kind(),
                    metrics,
                }),
                Ok(Err(reason)) => Err(FarmError::Job {
                    job_index: i,
                    reason,
                }),
                Err(payload) => Err(FarmError::Panic {
                    job_index: i,
                    message: panic_message(payload.as_ref()),
                }),
            }
        });
        BatchReport {
            batch_seed: self.config.batch_seed,
            outcomes,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn farm(threads: usize) -> Farm {
        Farm::new(FarmConfig {
            batch_seed: 0xBEEF,
            threads,
        })
    }

    #[test]
    fn probe_batch_is_worker_count_invariant() {
        let jobs: Vec<JobSpec> = (0..32)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 5)))
            .collect();
        let oracle = farm(1).run(&jobs);
        for threads in [2, 4, 8] {
            assert_eq!(farm(threads).run(&jobs), oracle, "{threads} threads");
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let jobs = vec![
            JobSpec::Probe(ProbeMode::Value(1.0)),
            JobSpec::Probe(ProbeMode::Panic),
            JobSpec::Probe(ProbeMode::Value(3.0)),
        ];
        let report = farm(2).run(&jobs);
        assert_eq!(report.ok_count(), 2);
        match &report.outcomes[1] {
            Err(FarmError::Panic { job_index, message }) => {
                assert_eq!(*job_index, 1);
                assert!(message.contains("intentional"), "{message}");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
        // neighbors unaffected
        assert_eq!(
            report.outcomes[0].as_ref().unwrap().metric("value"),
            Some(1.0)
        );
        assert_eq!(
            report.outcomes[2].as_ref().unwrap().metric("value"),
            Some(3.0)
        );
    }

    #[test]
    fn batch_seed_changes_the_draws() {
        let jobs = vec![JobSpec::Probe(ProbeMode::Draws(4))];
        let a = Farm::new(FarmConfig {
            batch_seed: 1,
            threads: 1,
        })
        .run(&jobs);
        let b = Farm::new(FarmConfig {
            batch_seed: 2,
            threads: 1,
        })
        .run(&jobs);
        assert_ne!(a.outcomes, b.outcomes);
        assert_eq!(a.batch_seed, 1);
    }

    #[test]
    fn threads_zero_resolves_to_machine_parallelism() {
        let f = Farm::new(FarmConfig {
            batch_seed: 0,
            threads: 0,
        });
        assert!(f.threads() >= 1);
        let fixed = farm(3);
        assert_eq!(fixed.threads(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = farm(4).run(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.ok_count(), 0);
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let jobs = dose_response_sweep(&[1.0, 10.0, 100.0, 1000.0]);
        let f = farm(2);
        let report = f.run(&jobs);
        assert_eq!(report.ok_count(), 4);
        let stats = f.cache_stats();
        assert_eq!(stats.misses, 1, "one chain precompute for the whole batch");
        assert_eq!(stats.hits, 3);
    }
}
