//! A hand-rolled sharded worker pool over `std::thread`.
//!
//! Jobs are claimed from a shared atomic counter, so load balances
//! naturally across uneven job costs; results land in pre-allocated,
//! index-addressed slots, so the output order is the submission order no
//! matter which worker ran which job. That slot discipline — not the
//! scheduling — is what makes the farm's output independent of the
//! worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(i)` for every `i in 0..n` across `threads` workers and
/// returns the results in index order.
///
/// `threads == 1` takes a sequential fast path with no synchronization
/// at all — it is the oracle the parallel paths are tested against.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` itself panics (workers must catch
/// their own panics; the farm wraps every job in `catch_unwind`).
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "worker pool needs at least one thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot lock") = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot lock")
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i * i) as u64;
        let oracle = run_indexed(100, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(100, threads, f), oracle, "{threads} threads");
        }
    }

    #[test]
    fn results_are_in_submission_order() {
        let out = run_indexed(64, 4, |i| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_job_batches() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(run_indexed(3, 16, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_indexed(4, 0, |i| i);
    }
}
