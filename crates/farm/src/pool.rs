//! A hand-rolled sharded worker pool over `std::thread`.
//!
//! Jobs are claimed from a shared atomic counter, so load balances
//! naturally across uneven job costs; results land in pre-allocated,
//! index-addressed slots, so the output order is the submission order no
//! matter which worker ran which job. That slot discipline — not the
//! scheduling — is what makes the farm's output independent of the
//! worker count.
//!
//! # Panic discipline
//!
//! Workers catch job panics themselves and mark the job's slot
//! **poisoned** instead of unwinding through the pool: the remaining jobs
//! still run, every worker still joins (no deadlock, no abandoned
//! threads), and only then does the pool re-raise the first panic payload
//! on the caller's thread. The farm wraps every job in its own
//! `catch_unwind`, so a poisoned slot here means a bug in the farm
//! harness itself — which is exactly when "finish the batch, then fail
//! loudly" beats hanging a join.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use canti_obs::ObsClock;

/// Per-worker utilization tallies from one pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStat {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Time this worker spent inside job closures, ns (0 without a
    /// clock, or under a virtual clock that nothing advances).
    pub busy_ns: u64,
}

/// A result slot: explicitly distinguishes "never ran", "done" and
/// "panicked" so a crashed job can never masquerade as a missing result.
enum Slot<T> {
    Empty,
    Done(T),
    Poisoned(Box<dyn std::any::Any + Send>),
}

/// Runs `f(i)` for every `i in 0..n` across `threads` workers and
/// returns the results in index order.
///
/// `threads == 1` takes a sequential fast path with no synchronization
/// at all — it is the oracle the parallel paths are tested against.
///
/// # Panics
///
/// Panics if `threads == 0`. If `f` panics, every worker still finishes
/// its remaining jobs and joins; the first panic payload is then
/// re-raised on the calling thread (see the module docs — the farm
/// catches job panics upstream, so this is a harness-bug backstop, not a
/// job-failure path).
// The farm itself always goes through `run_indexed_observed`; this
// stat-free wrapper is the test oracle's entry point.
#[cfg_attr(not(test), allow(dead_code))]
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_observed(n, threads, f, None).0
}

/// [`run_indexed`] plus per-worker utilization: job counts always, busy
/// time when `clock` is provided.
pub fn run_indexed_observed<T, F>(
    n: usize,
    threads: usize,
    f: F,
    clock: Option<&dyn ObsClock>,
) -> (Vec<T>, Vec<WorkerStat>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "worker pool needs at least one thread");
    if threads == 1 || n <= 1 {
        let mut stat = WorkerStat::default();
        let out = (0..n)
            .map(|i| {
                let t0 = clock.map(ObsClock::now_ns);
                let v = f(i);
                if let (Some(t0), Some(c)) = (t0, clock) {
                    stat.busy_ns += c.now_ns().saturating_sub(t0);
                }
                stat.jobs += 1;
                v
            })
            .collect();
        return (out, vec![stat]);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Slot<T>>> = (0..n).map(|_| Mutex::new(Slot::Empty)).collect();
    let workers = threads.min(n);

    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut stat = WorkerStat::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break stat;
                        }
                        let t0 = clock.map(ObsClock::now_ns);
                        let result = catch_unwind(AssertUnwindSafe(|| f(i)));
                        if let (Some(t0), Some(c)) = (t0, clock) {
                            stat.busy_ns += c.now_ns().saturating_sub(t0);
                        }
                        stat.jobs += 1;
                        // a panic inside `lock` poisoning is irrelevant here:
                        // the slot content is what records job failure
                        let mut slot = slots[i].lock().unwrap_or_else(PoisonError::into_inner);
                        *slot = match result {
                            Ok(v) => Slot::Done(v),
                            Err(payload) => Slot::Poisoned(payload),
                        };
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker caught its own panics"))
            .collect::<Vec<_>>()
    });

    let mut out = Vec::with_capacity(n);
    let mut first_payload: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Slot::Done(v) => out.push(v),
            Slot::Poisoned(payload) => {
                if first_payload.is_none() {
                    first_payload = Some((i, payload));
                }
            }
            Slot::Empty => panic!("job {i} produced no result"),
        }
    }
    if let Some((i, payload)) = first_payload {
        eprintln!("canti-farm pool: job {i} panicked; pool joined cleanly, re-raising");
        resume_unwind(payload);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_obs::VirtualClock;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i * i) as u64;
        let oracle = run_indexed(100, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(100, threads, f), oracle, "{threads} threads");
        }
    }

    #[test]
    fn results_are_in_submission_order() {
        let out = run_indexed(64, 4, |i| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_job_batches() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(run_indexed(3, 16, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_indexed(4, 0, |i| i);
    }

    /// Regression: a panic in the FIRST job of a multi-job batch must not
    /// deadlock the pool on join. Every other job still runs, all workers
    /// join, and the original panic payload is re-raised afterwards.
    #[test]
    fn panic_in_first_job_poisons_its_slot_without_deadlocking_the_pool() {
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(16, 4, |i| {
                if i == 0 {
                    panic!("first job dies");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = result.expect_err("pool must re-raise the job panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("string payload survives the round trip");
        assert_eq!(message, "first job dies");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            15,
            "all surviving jobs must have completed before the re-raise"
        );
    }

    #[test]
    fn worker_stats_cover_every_job() {
        let (out, stats) = run_indexed_observed(40, 4, |i| i, None);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 40);
    }

    #[test]
    fn observed_empty_batch_reports_one_idle_worker() {
        let clock = VirtualClock::new();
        let (out, stats) = run_indexed_observed(0, 4, |i| i, Some(&clock as &dyn ObsClock));
        assert_eq!(out, Vec::<usize>::new());
        assert_eq!(
            stats,
            vec![WorkerStat::default()],
            "n == 0 takes the sequential path: one worker, zero jobs, zero busy time"
        );
    }

    #[test]
    fn observed_pool_clamps_workers_to_jobs() {
        // threads > n: only n worker slots are spawned, so the stats
        // vector cannot report phantom idle workers.
        let (out, stats) = run_indexed_observed(3, 16, |i| i * 2, None);
        assert_eq!(out, vec![0, 2, 4]);
        assert_eq!(stats.len(), 3, "workers = min(threads, n)");
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 3);
        assert!(
            stats.iter().all(|s| s.busy_ns == 0),
            "no clock, no busy time"
        );
    }

    #[test]
    fn wall_clock_accumulates_busy_time_but_an_unadvanced_virtual_clock_does_not() {
        // The same spinning workload, observed under both clock kinds.
        let spin = |_| {
            let mut acc = 0u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc)
        };

        let wall = canti_obs::WallClock::new();
        let (_, stats) = run_indexed_observed(8, 2, spin, Some(&wall as &dyn ObsClock));
        assert!(
            stats.iter().map(|s| s.busy_ns).sum::<u64>() > 0,
            "real work under a wall clock must accumulate busy time"
        );

        let frozen = VirtualClock::new();
        let (_, stats) = run_indexed_observed(8, 2, spin, Some(&frozen as &dyn ObsClock));
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 8);
        assert!(
            stats.iter().all(|s| s.busy_ns == 0),
            "a virtual clock nothing advances reports zero busy time"
        );
    }

    #[test]
    fn busy_time_comes_from_the_injected_clock() {
        let clock = VirtualClock::new();
        let (_, stats) = run_indexed_observed(
            5,
            1,
            |_| clock.advance_ns(10),
            Some(&clock as &dyn ObsClock),
        );
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].jobs, 5);
        assert_eq!(stats[0].busy_ns, 50, "virtual clock time is deterministic");
    }
}
