//! A hand-rolled sharded worker pool over `std::thread`.
//!
//! Jobs are claimed from a shared atomic counter, so load balances
//! naturally across uneven job costs; results land in pre-allocated,
//! index-addressed slots, so the output order is the submission order no
//! matter which worker ran which job. That slot discipline — not the
//! scheduling — is what makes the farm's output independent of the
//! worker count.
//!
//! # Panic discipline
//!
//! Workers catch job panics themselves and mark the job's slot
//! **poisoned** instead of unwinding through the pool: the remaining jobs
//! still run, every worker still joins (no deadlock, no abandoned
//! threads), and only then does the pool re-raise the first panic payload
//! on the caller's thread. The farm wraps every job in its own
//! `catch_unwind`, so a poisoned slot here means a bug in the farm
//! harness itself — which is exactly when "finish the batch, then fail
//! loudly" beats hanging a join.
//!
//! A panic that escapes the job harness itself (the serve chaos seam's
//! sabotage hook is the one deliberate source) kills the worker thread:
//! the claimed job's slot is poisoned, the job is retired so the caller
//! can never hang, and the dead worker is recorded. If the *last* live
//! worker dies, every still-queued job is retired as poisoned too —
//! callers always get an answer (a re-raise), never a wedge. A pool with
//! dead workers is not condemned: [`WorkerPool::respawn_poisoned`]
//! replaces the dead threads and the pool serves batches again.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use canti_obs::ObsClock;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A per-job hook the pool calls **outside** the job harness's own
/// `catch_unwind`, with the batch-local job index about to run. A panic
/// here unwinds the worker thread itself — this is the serve chaos
/// seam's way of simulating a worker death rather than a job failure.
pub type PoolHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Per-worker utilization tallies from one pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStat {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Time this worker spent inside job closures, ns (0 without a
    /// clock, or under a virtual clock that nothing advances).
    pub busy_ns: u64,
}

/// A result slot: explicitly distinguishes "never ran", "done" and
/// "panicked" so a crashed job can never masquerade as a missing result.
enum Slot<T> {
    Empty,
    Done(T),
    Poisoned(Box<dyn std::any::Any + Send>),
}

/// Runs `f(i)` for every `i in 0..n` across `threads` workers and
/// returns the results in index order.
///
/// `threads == 1` takes a sequential fast path with no synchronization
/// at all — it is the oracle the parallel paths are tested against.
///
/// # Panics
///
/// Panics if `threads == 0`. If `f` panics, every worker still finishes
/// its remaining jobs and joins; the first panic payload is then
/// re-raised on the calling thread (see the module docs — the farm
/// catches job panics upstream, so this is a harness-bug backstop, not a
/// job-failure path).
// The farm itself always goes through `run_indexed_observed`; this
// stat-free wrapper is the test oracle's entry point.
#[cfg_attr(not(test), allow(dead_code))]
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_observed(n, threads, f, None).0
}

/// [`run_indexed`] plus per-worker utilization: job counts always, busy
/// time when `clock` is provided.
pub fn run_indexed_observed<T, F>(
    n: usize,
    threads: usize,
    f: F,
    clock: Option<&dyn ObsClock>,
) -> (Vec<T>, Vec<WorkerStat>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "worker pool needs at least one thread");
    if threads == 1 || n <= 1 {
        let mut stat = WorkerStat::default();
        let out = (0..n)
            .map(|i| {
                let t0 = clock.map(ObsClock::now_ns);
                let v = f(i);
                if let (Some(t0), Some(c)) = (t0, clock) {
                    stat.busy_ns += c.now_ns().saturating_sub(t0);
                }
                stat.jobs += 1;
                v
            })
            .collect();
        return (out, vec![stat]);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Slot<T>>> = (0..n).map(|_| Mutex::new(Slot::Empty)).collect();
    let workers = threads.min(n);

    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut stat = WorkerStat::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break stat;
                        }
                        let t0 = clock.map(ObsClock::now_ns);
                        let result = catch_unwind(AssertUnwindSafe(|| f(i)));
                        if let (Some(t0), Some(c)) = (t0, clock) {
                            stat.busy_ns += c.now_ns().saturating_sub(t0);
                        }
                        stat.jobs += 1;
                        // a panic inside `lock` poisoning is irrelevant here:
                        // the slot content is what records job failure
                        let mut slot = slots[i].lock().unwrap_or_else(PoisonError::into_inner);
                        *slot = match result {
                            Ok(v) => Slot::Done(v),
                            Err(payload) => Slot::Poisoned(payload),
                        };
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker caught its own panics"))
            .collect::<Vec<_>>()
    });

    let mut out = Vec::with_capacity(n);
    let mut first_payload: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Slot::Done(v) => out.push(v),
            Slot::Poisoned(payload) => {
                if first_payload.is_none() {
                    first_payload = Some((i, payload));
                }
            }
            Slot::Empty => panic!("job {i} produced no result"),
        }
    }
    if let Some((i, payload)) = first_payload {
        eprintln!("canti-farm pool: job {i} panicked; pool joined cleanly, re-raising");
        resume_unwind(payload);
    }
    (out, stats)
}

/// One submitted batch on a [`WorkerPool`], type-erased so batches of
/// different result types can share the same queue. The typed closure
/// built by [`WorkerPool::run_observed`] owns the slot vector; the pool
/// only needs "run index `i`" plus claim/retire bookkeeping.
struct BatchTask {
    /// Jobs in the batch.
    n: usize,
    /// Next unclaimed job index (claims may overshoot past `n`).
    next: AtomicUsize,
    /// Jobs not yet finished; the worker that retires the last one marks
    /// the batch complete and wakes the submitting caller.
    pending: AtomicUsize,
    /// Set under the pool lock when `pending` hits zero.
    complete: AtomicBool,
    /// Runs one job and records its result in the caller's slot vector.
    run: Box<dyn Fn(usize) + Send + Sync>,
    /// Records a harness-level panic payload in the job's slot, so a
    /// dying (or orphan-aborting) worker can poison without running.
    poison: Box<dyn Fn(usize, Box<dyn std::any::Any + Send>) + Send + Sync>,
    /// Chaos seam: called outside the job harness's `catch_unwind`, so a
    /// panic here kills the worker thread (see [`PoolHook`]).
    sabotage: Option<PoolHook>,
    /// Busy-time clock, when the caller wants utilization timed.
    clock: Option<Arc<dyn ObsClock>>,
    /// Per-worker tallies, indexed by worker slot (pool thread index).
    stats: Vec<Mutex<WorkerStat>>,
}

struct PoolState {
    queue: VecDeque<Arc<BatchTask>>,
    shutdown: bool,
    /// Worker threads still running their loop. Mutated only under this
    /// lock so submission's liveness check and a worker's death are
    /// serialized: a batch admitted while `live > 0` is either finished
    /// by surviving workers or orphan-aborted by the last one to die.
    live: usize,
    /// Worker slots whose threads died at harness level, awaiting
    /// [`WorkerPool::respawn_poisoned`].
    dead: Vec<usize>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes workers: new batch enqueued, or shutdown.
    work: Condvar,
    /// Wakes submitting callers: some batch completed.
    done: Condvar,
}

/// A persistent worker pool: long-lived threads parked on a condvar,
/// pulling job indices from queued batches and reused across batches.
///
/// The default `run_indexed_observed` path spawns (and joins) fresh
/// threads per batch, which is fine for one large batch but dominates
/// the cost of the serve layer's micro-batches. A `WorkerPool` pays the spawn cost once
/// at construction; every subsequent batch is a queue push plus condvar
/// wakeups. The result contract is identical — index-addressed slots,
/// submission-order output, panic poisoning per slot with the first
/// panic re-raised on the caller after the batch finishes — so the
/// spawn-per-batch pool remains the byte-exact oracle for this one.
///
/// # Shutdown
///
/// [`WorkerPool::shutdown`] is graceful and idempotent: workers finish
/// every batch already queued (callers blocked in [`WorkerPool::run`]
/// still get their results), then exit and are joined. Dropping the
/// pool shuts it down. Submitting to a pool that is already shut down
/// panics.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.shared.state);
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("queued_batches", &state.queue.len())
            .field("shutdown", &state.shutdown)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` parked workers (`0` means the
    /// machine's available parallelism).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
                live: threads,
                dead: Vec::new(),
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("canti-farm-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn farm worker thread")
            })
            .collect();
        Self {
            shared,
            threads,
            handles: Mutex::new(handles),
        }
    }

    /// The resolved worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..n` on the pool's workers and
    /// returns the results in index order — `run_indexed` semantics on
    /// persistent threads.
    ///
    /// # Panics
    ///
    /// Panics if the pool is shut down. If `f` panics, the batch still
    /// completes (and later batches still run — the worker thread
    /// survives); the first panic payload is then re-raised here.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        self.run_observed(n, f, None).0
    }

    /// [`Self::run`] plus per-worker utilization: job counts always,
    /// busy time when `clock` is provided. The stats vector always has
    /// one entry per pool thread (idle workers report zero jobs).
    ///
    /// # Panics
    ///
    /// Panics if the pool is shut down, and re-raises the first job
    /// panic after the batch completes (see [`Self::run`]).
    pub fn run_observed<T, F>(
        &self,
        n: usize,
        f: F,
        clock: Option<Arc<dyn ObsClock>>,
    ) -> (Vec<T>, Vec<WorkerStat>)
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        self.run_observed_hooked(n, f, clock, None)
    }

    /// [`Self::run_observed`] with an optional [`PoolHook`] the workers
    /// call outside the job harness — the serve chaos seam. A hook panic
    /// kills the running worker (its job's slot poisons, the batch still
    /// completes or orphan-aborts, the payload re-raises here).
    ///
    /// # Panics
    ///
    /// As [`Self::run_observed`], plus when the pool has no live workers
    /// left (call [`Self::respawn_poisoned`] to recover).
    pub fn run_observed_hooked<T, F>(
        &self,
        n: usize,
        f: F,
        clock: Option<Arc<dyn ObsClock>>,
        sabotage: Option<PoolHook>,
    ) -> (Vec<T>, Vec<WorkerStat>)
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if n == 0 {
            return (Vec::new(), vec![WorkerStat::default(); self.threads]);
        }
        let slots: Arc<Vec<Mutex<Slot<T>>>> =
            Arc::new((0..n).map(|_| Mutex::new(Slot::Empty)).collect());
        let run = {
            let slots = Arc::clone(&slots);
            Box::new(move |i: usize| {
                let result = catch_unwind(AssertUnwindSafe(|| f(i)));
                // a poisoned mutex is irrelevant here: the slot content
                // is what records job failure
                *lock(&slots[i]) = match result {
                    Ok(v) => Slot::Done(v),
                    Err(payload) => Slot::Poisoned(payload),
                };
            }) as Box<dyn Fn(usize) + Send + Sync>
        };
        let poison = {
            let slots = Arc::clone(&slots);
            Box::new(move |i: usize, payload: Box<dyn std::any::Any + Send>| {
                *lock(&slots[i]) = Slot::Poisoned(payload);
            }) as Box<dyn Fn(usize, Box<dyn std::any::Any + Send>) + Send + Sync>
        };
        let task = Arc::new(BatchTask {
            n,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n),
            complete: AtomicBool::new(false),
            run,
            poison,
            sabotage,
            clock,
            stats: (0..self.threads)
                .map(|_| Mutex::new(WorkerStat::default()))
                .collect(),
        });
        {
            let mut state = lock(&self.shared.state);
            assert!(!state.shutdown, "worker pool is shut down");
            assert!(
                state.live > 0,
                "worker pool has no live workers (respawn_poisoned to recover)"
            );
            state.queue.push_back(Arc::clone(&task));
        }
        self.shared.work.notify_all();

        // Wait for the whole batch to retire. The completing worker sets
        // `complete` under the state lock, so this check-then-wait can't
        // miss the wakeup.
        let mut state = lock(&self.shared.state);
        while !task.complete.load(Ordering::Acquire) {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);

        let stats: Vec<WorkerStat> = task.stats.iter().map(|m| *lock(m)).collect();
        let mut out = Vec::with_capacity(n);
        let mut first_payload: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (i, slot) in slots.iter().enumerate() {
            match std::mem::replace(&mut *lock(slot), Slot::Empty) {
                Slot::Done(v) => out.push(v),
                Slot::Poisoned(payload) => {
                    if first_payload.is_none() {
                        first_payload = Some((i, payload));
                    }
                }
                Slot::Empty => panic!("job {i} produced no result"),
            }
        }
        if let Some((i, payload)) = first_payload {
            eprintln!("canti-farm pool: job {i} panicked; batch completed, re-raising");
            resume_unwind(payload);
        }
        (out, stats)
    }

    /// Worker threads still running (the spawn width minus workers that
    /// died at harness level and were not yet respawned).
    #[must_use]
    pub fn live_workers(&self) -> usize {
        lock(&self.shared.state).live
    }

    /// Worker slots whose threads died at harness level and await
    /// [`Self::respawn_poisoned`].
    #[must_use]
    pub fn poisoned_workers(&self) -> usize {
        lock(&self.shared.state).dead.len()
    }

    /// Replaces every dead worker thread with a freshly spawned one,
    /// returning how many were respawned (0 when none died, or after
    /// shutdown). The result contract of later batches is unchanged —
    /// slot discipline makes output independent of *which* threads run —
    /// so a resurrected pool is byte-identical to a fresh one.
    pub fn respawn_poisoned(&self) -> usize {
        let slots = {
            let mut state = lock(&self.shared.state);
            if state.shutdown {
                return 0;
            }
            let slots = std::mem::take(&mut state.dead);
            state.live += slots.len();
            slots
        };
        let respawned = slots.len();
        let mut handles = lock(&self.handles);
        for w in slots {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("canti-farm-worker-{w}r"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("respawn farm worker thread"),
            );
        }
        respawned
    }

    /// Graceful, idempotent shutdown: stops accepting new batches,
    /// drains every batch already queued (blocked [`Self::run`] callers
    /// get their results), then joins every worker. Calling it again is
    /// a no-op.
    pub fn shutdown(&self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        let handles = std::mem::take(&mut *lock(&self.handles));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    loop {
        // Park until some queued batch still has unclaimed work. Batches
        // drain front-first; fully-claimed batches stay queued until
        // their last job retires them, so a worker may skip past one to
        // help a later batch.
        let task: Arc<BatchTask> = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(task) = state
                    .queue
                    .iter()
                    .find(|t| t.next.load(Ordering::Relaxed) < t.n)
                {
                    break Arc::clone(task);
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        loop {
            let i = task.next.fetch_add(1, Ordering::Relaxed);
            if i >= task.n {
                break;
            }
            let t0 = task.clock.as_ref().map(|c| c.now_ns());
            // `run` catches the job's own panics internally (slot
            // poisoning); a panic escaping THIS catch is harness-level —
            // in practice the sabotage hook — and kills the worker.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(hook) = &task.sabotage {
                    hook(i);
                }
                (task.run)(i);
            }));
            {
                let mut stat = lock(&task.stats[worker]);
                if let (Some(t0), Some(c)) = (t0, task.clock.as_ref()) {
                    stat.busy_ns += c.now_ns().saturating_sub(t0);
                }
                stat.jobs += 1;
            }
            let fatal = match outcome {
                Ok(()) => false,
                Err(payload) => {
                    (task.poison)(i, payload);
                    true
                }
            };
            // stats are written before the retire below, so the caller's
            // post-completion read sees them
            retire_job(shared, &task);
            if fatal {
                worker_died(shared, worker);
                return;
            }
        }
    }
}

/// Retires one finished (or poisoned) job; the worker that retires the
/// last one marks the batch complete and wakes the submitting caller.
fn retire_job(shared: &PoolShared, task: &Arc<BatchTask>) {
    if task.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut state = lock(&shared.state);
        task.complete.store(true, Ordering::Release);
        state.queue.retain(|t| !Arc::ptr_eq(t, task));
        drop(state);
        shared.done.notify_all();
        shared.work.notify_all();
    }
}

/// Books a harness-level worker death. The dying worker already retired
/// the job it was running; if it was the LAST live worker, it also
/// claims and poisons every job still queued (in any batch) so blocked
/// callers re-raise instead of wedging. The liveness decrement and the
/// orphan snapshot happen under the state lock, mutually exclusive with
/// submission's `live > 0` check — no batch can slip in unanswered.
fn worker_died(shared: &PoolShared, worker: usize) {
    let orphans: Vec<Arc<BatchTask>> = {
        let mut state = lock(&shared.state);
        state.live -= 1;
        state.dead.push(worker);
        if state.live == 0 {
            state.queue.iter().cloned().collect()
        } else {
            Vec::new()
        }
    };
    for task in orphans {
        loop {
            let i = task.next.fetch_add(1, Ordering::Relaxed);
            if i >= task.n {
                break;
            }
            (task.poison)(
                i,
                Box::new(format!(
                    "canti-farm pool: job {i} abandoned — no live workers"
                )),
            );
            retire_job(shared, &task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_obs::VirtualClock;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i * i) as u64;
        let oracle = run_indexed(100, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_indexed(100, threads, f), oracle, "{threads} threads");
        }
    }

    #[test]
    fn results_are_in_submission_order() {
        let out = run_indexed(64, 4, |i| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_job_batches() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(run_indexed(3, 16, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_indexed(4, 0, |i| i);
    }

    /// Regression: a panic in the FIRST job of a multi-job batch must not
    /// deadlock the pool on join. Every other job still runs, all workers
    /// join, and the original panic payload is re-raised afterwards.
    #[test]
    fn panic_in_first_job_poisons_its_slot_without_deadlocking_the_pool() {
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(16, 4, |i| {
                if i == 0 {
                    panic!("first job dies");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = result.expect_err("pool must re-raise the job panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("string payload survives the round trip");
        assert_eq!(message, "first job dies");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            15,
            "all surviving jobs must have completed before the re-raise"
        );
    }

    #[test]
    fn worker_stats_cover_every_job() {
        let (out, stats) = run_indexed_observed(40, 4, |i| i, None);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 40);
    }

    #[test]
    fn observed_empty_batch_reports_one_idle_worker() {
        let clock = VirtualClock::new();
        let (out, stats) = run_indexed_observed(0, 4, |i| i, Some(&clock as &dyn ObsClock));
        assert_eq!(out, Vec::<usize>::new());
        assert_eq!(
            stats,
            vec![WorkerStat::default()],
            "n == 0 takes the sequential path: one worker, zero jobs, zero busy time"
        );
    }

    #[test]
    fn observed_pool_clamps_workers_to_jobs() {
        // threads > n: only n worker slots are spawned, so the stats
        // vector cannot report phantom idle workers.
        let (out, stats) = run_indexed_observed(3, 16, |i| i * 2, None);
        assert_eq!(out, vec![0, 2, 4]);
        assert_eq!(stats.len(), 3, "workers = min(threads, n)");
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 3);
        assert!(
            stats.iter().all(|s| s.busy_ns == 0),
            "no clock, no busy time"
        );
    }

    #[test]
    fn wall_clock_accumulates_busy_time_but_an_unadvanced_virtual_clock_does_not() {
        // The same spinning workload, observed under both clock kinds.
        let spin = |_| {
            let mut acc = 0u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc)
        };

        let wall = canti_obs::WallClock::new();
        let (_, stats) = run_indexed_observed(8, 2, spin, Some(&wall as &dyn ObsClock));
        assert!(
            stats.iter().map(|s| s.busy_ns).sum::<u64>() > 0,
            "real work under a wall clock must accumulate busy time"
        );

        let frozen = VirtualClock::new();
        let (_, stats) = run_indexed_observed(8, 2, spin, Some(&frozen as &dyn ObsClock));
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 8);
        assert!(
            stats.iter().all(|s| s.busy_ns == 0),
            "a virtual clock nothing advances reports zero busy time"
        );
    }

    #[test]
    fn busy_time_comes_from_the_injected_clock() {
        let clock = VirtualClock::new();
        let (_, stats) = run_indexed_observed(
            5,
            1,
            |_| clock.advance_ns(10),
            Some(&clock as &dyn ObsClock),
        );
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].jobs, 5);
        assert_eq!(stats[0].busy_ns, 50, "virtual clock time is deterministic");
    }

    // ---- persistent WorkerPool ----

    #[test]
    fn persistent_pool_matches_the_spawn_oracle() {
        let f = |i: usize| (i * i) as u64;
        let oracle = run_indexed(100, 1, f);
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.run(100, f), oracle, "{threads} persistent workers");
        }
    }

    #[test]
    fn persistent_pool_is_reused_across_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..10u64 {
            let out = pool.run(16, move |i| i as u64 + round);
            assert_eq!(out, (0..16).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn persistent_pool_empty_batch_and_stats_shape() {
        let pool = WorkerPool::new(4);
        let (out, stats) = pool.run_observed(0, |i| i, None);
        assert_eq!(out, Vec::<usize>::new());
        assert_eq!(stats.len(), 4, "one stat slot per pool thread");
        let (out, stats) = pool.run_observed(40, |i| i, None);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 40);
    }

    #[test]
    fn persistent_pool_busy_time_comes_from_the_injected_clock() {
        let clock = Arc::new(VirtualClock::new());
        let pool = WorkerPool::new(1);
        let job_clock = Arc::clone(&clock);
        let (_, stats) = pool.run_observed(
            5,
            move |_| job_clock.advance_ns(10),
            Some(clock as Arc<dyn ObsClock>),
        );
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].jobs, 5);
        assert_eq!(stats[0].busy_ns, 50);
    }

    /// Satellite: a panicking job poisons only its own slot; the batch
    /// completes, the panic is re-raised, and the SAME pool then runs
    /// later batches normally (its workers never unwound).
    #[test]
    fn pool_survives_a_job_panic_and_runs_subsequent_batches() {
        let pool = Arc::new(WorkerPool::new(4));
        let completed = Arc::new(AtomicUsize::new(0));
        let run_completed = Arc::clone(&completed);
        let run_pool = Arc::clone(&pool);
        let result = catch_unwind(AssertUnwindSafe(move || {
            run_pool.run(16, move |i| {
                if i == 3 {
                    panic!("third job dies");
                }
                run_completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = result.expect_err("pool must re-raise the job panic");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("third job dies")
        );
        assert_eq!(
            completed.load(Ordering::Relaxed),
            15,
            "all surviving jobs completed before the re-raise"
        );
        // subsequent batches still run on the same workers
        assert_eq!(pool.run(8, |i| i * 2), vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    /// Satellite: shutdown is graceful — work already queued completes
    /// and the blocked caller gets its full result set.
    #[test]
    fn shutdown_completes_queued_work() {
        let pool = Arc::new(WorkerPool::new(2));
        let started = Arc::new(AtomicUsize::new(0));
        let job_started = Arc::clone(&started);
        let run_pool = Arc::clone(&pool);
        let caller = std::thread::spawn(move || {
            run_pool.run(8, move |i| {
                job_started.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(2));
                i
            })
        });
        // wait until the batch is genuinely in flight, then shut down
        while started.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        pool.shutdown();
        let out = caller.join().expect("caller thread");
        assert_eq!(out, (0..8).collect::<Vec<_>>(), "queued work completed");
    }

    /// Satellite: double shutdown is a no-op, and submitting afterwards
    /// panics loudly instead of hanging.
    #[test]
    fn double_shutdown_is_a_noop_and_late_submission_panics() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.run(4, |i| i), vec![0, 1, 2, 3]);
        pool.shutdown();
        pool.shutdown(); // second call must return immediately
        let late = catch_unwind(AssertUnwindSafe(|| pool.run(1, |i| i)));
        let payload = late.expect_err("submission after shutdown must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(message.contains("shut down"), "unexpected panic: {message}");
    }

    #[test]
    fn pool_threads_zero_resolves_to_machine_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(WorkerPool::new(3).threads(), 3);
    }

    #[test]
    fn concurrent_batches_from_multiple_callers_all_complete() {
        let pool = Arc::new(WorkerPool::new(4));
        let callers: Vec<_> = (0..4u64)
            .map(|c| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.run(32, move |i| i as u64 * 10 + c))
            })
            .collect();
        for (c, handle) in callers.into_iter().enumerate() {
            let out = handle.join().expect("caller");
            assert_eq!(out, (0..32).map(|i| i * 10 + c as u64).collect::<Vec<_>>());
        }
    }
}
