//! Memoized per-chip precomputations shared across a batch.
//!
//! The expensive part of a static-mode job is not the assay itself but the
//! chain characterization behind it: building the readout chain,
//! self-calibrating the offset DACs and measuring the transfer + noise
//! burst costs hundreds of thousands of electrical samples. That response
//! is a property of the chip/config, not of the job — so the farm computes
//! it once per distinct configuration and shares it across workers via
//! [`Arc`].
//!
//! Lookups hold the cache lock across a miss's computation: concurrent
//! workers wanting the same key block until the first one fills it, so an
//! expensive precompute runs exactly once per batch no matter the worker
//! count. The computation itself is deterministic (seeded by the config),
//! which is what keeps memoization invisible to the determinism contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use canti_core::assay::StaticChainResponse;
use canti_core::chip::{BiosensorChip, Environment};
use canti_core::resonant_system::{ResonantCantileverSystem, ResonantLoopConfig};
use canti_core::static_system::{StaticCantileverSystem, StaticReadoutConfig};
use canti_core::CoreError;

/// Small-signal summary of the resonant loop around the nominal chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResonantBaseline {
    /// Unloaded (fluid-loaded, analyte-free) resonant frequency, Hz.
    pub baseline_frequency_hz: f64,
    /// Mass responsivity |df/dm|, Hz/kg.
    pub responsivity_hz_per_kg: f64,
    /// Functionalized plan area of the beam, m².
    pub plan_area_m2: f64,
}

/// Counters and occupancy of a [`PrecomputeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped to stay under a configured capacity.
    pub evictions: u64,
    /// Entries currently resident (all maps).
    pub entries: u64,
    /// Rough resident payload size: per-entry value + key sizes. An
    /// estimate (map overhead excluded), meant for telemetry dashboards,
    /// not allocators.
    pub bytes_estimate: u64,
}

fn fnv1a_u64(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fnv1a_f64(h: u64, x: f64) -> u64 {
    fnv1a_u64(h, x.to_bits())
}

/// Stable hash of a static readout configuration — the cache key for its
/// chain response.
#[must_use]
pub fn static_config_key(config: &StaticReadoutConfig) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    h = fnv1a_f64(h, config.sample_rate);
    h = fnv1a_f64(h, config.chop_frequency);
    h = fnv1a_f64(h, config.chopper_gain);
    h = fnv1a_f64(h, config.lpf_corner);
    h = fnv1a_u64(h, config.pga_gains.len() as u64);
    for &g in &config.pga_gains {
        h = fnv1a_f64(h, g);
    }
    h = fnv1a_f64(h, config.output_gain);
    h = fnv1a_f64(h, config.supply_rail);
    h = fnv1a_f64(h, config.amp_white_noise);
    h = fnv1a_f64(h, config.amp_flicker_at_1hz);
    h = fnv1a_f64(h, config.amp_offset.value());
    h = fnv1a_f64(h, config.residual_offset.value());
    h = fnv1a_f64(h, config.offset_dac_range.value());
    h = fnv1a_u64(h, u64::from(config.offset_dac_bits));
    h = fnv1a_u64(h, config.seed);
    h
}

/// The static-chain map plus its FIFO insertion order (for capacity
/// eviction), guarded by one lock.
#[derive(Debug, Default)]
struct StaticChains {
    map: HashMap<u64, Arc<StaticChainResponse>>,
    order: std::collections::VecDeque<u64>,
}

/// The shared memoization layer.
#[derive(Debug, Default)]
pub struct PrecomputeCache {
    static_chains: Mutex<StaticChains>,
    resonant: Mutex<HashMap<u64, Arc<ResonantBaseline>>>,
    /// FIFO cap on distinct static-chain configs (`None` = unbounded).
    max_static_entries: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PrecomputeCache {
    /// Creates an empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache evicting static-chain entries FIFO beyond
    /// `max_static_entries` distinct configs — for long-lived farms fed
    /// many one-shot configurations. Eviction never changes results
    /// (evicted entries are recomputed deterministically on re-request);
    /// it only trades memory for recompute time.
    #[must_use]
    pub fn with_capacity(max_static_entries: usize) -> Self {
        Self {
            max_static_entries: Some(max_static_entries.max(1)),
            ..Self::default()
        }
    }

    /// Counters and occupancy so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let static_entries = self.static_chains.lock().expect("cache lock").map.len() as u64;
        let resonant_entries = self.resonant.lock().expect("cache lock").len() as u64;
        let per_static =
            (std::mem::size_of::<StaticChainResponse>() + std::mem::size_of::<u64>()) as u64;
        let per_resonant =
            (std::mem::size_of::<ResonantBaseline>() + std::mem::size_of::<u64>()) as u64;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: static_entries + resonant_entries,
            bytes_estimate: static_entries * per_static + resonant_entries * per_resonant,
        }
    }

    /// The calibrated chain response of the paper's static chip under
    /// `config`, computed on first request and memoized thereafter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the system cannot be built or calibrated.
    pub fn static_chain(
        &self,
        config: &StaticReadoutConfig,
    ) -> Result<Arc<StaticChainResponse>, CoreError> {
        let key = static_config_key(config);
        let mut chains = self.static_chains.lock().expect("cache lock");
        if let Some(chain) = chains.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(chain));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let chip = BiosensorChip::paper_static_chip()?;
        let mut system = StaticCantileverSystem::new(chip, config.clone())?;
        system.calibrate_offsets()?;
        let chain = Arc::new(StaticChainResponse::measure(&mut system)?);
        chains.map.insert(key, Arc::clone(&chain));
        chains.order.push_back(key);
        if let Some(cap) = self.max_static_entries {
            while chains.map.len() > cap {
                if let Some(oldest) = chains.order.pop_front() {
                    chains.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
        }
        Ok(chain)
    }

    /// The nominal resonant chip's small-signal mass-loading baseline
    /// (in air), computed once and memoized.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the resonant system cannot be built.
    pub fn resonant_baseline(&self) -> Result<Arc<ResonantBaseline>, CoreError> {
        let mut map = self.resonant.lock().expect("cache lock");
        if let Some(base) = map.get(&0) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(base));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let chip = BiosensorChip::paper_resonant_chip()?;
        let plan_area_m2 = chip.geometry().plan_area().value();
        let system =
            ResonantCantileverSystem::new(chip, Environment::air(), ResonantLoopConfig::default())?;
        let loading = system.mass_loading();
        let base = Arc::new(ResonantBaseline {
            baseline_frequency_hz: loading.resonator().resonant_frequency().value(),
            responsivity_hz_per_kg: loading.responsivity(),
            plan_area_m2,
        });
        map.insert(0, Arc::clone(&base));
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_key_is_stable_and_field_sensitive() {
        let a = StaticReadoutConfig::default();
        let b = StaticReadoutConfig::default();
        assert_eq!(static_config_key(&a), static_config_key(&b));
        let mut c = StaticReadoutConfig::default();
        c.seed = c.seed.wrapping_add(1);
        assert_ne!(static_config_key(&a), static_config_key(&c));
        let mut d = StaticReadoutConfig::default();
        d.lpf_corner += 1.0;
        assert_ne!(static_config_key(&a), static_config_key(&d));
    }

    #[test]
    fn resonant_baseline_memoizes() {
        let cache = PrecomputeCache::new();
        let a = cache.resonant_baseline().unwrap();
        let b = cache.resonant_baseline().unwrap();
        assert_eq!(*a, *b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(a.baseline_frequency_hz > 10e3);
        assert!(a.responsivity_hz_per_kg > 0.0);
        assert!(a.plan_area_m2 > 0.0);
    }

    #[test]
    fn static_chain_memoizes_per_config() {
        let cache = PrecomputeCache::new();
        let cfg = StaticReadoutConfig::default();
        let a = cache.static_chain(&cfg).unwrap();
        let b = cache.static_chain(&cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));
        let mut other = cfg.clone();
        other.seed = cfg.seed.wrapping_add(99);
        let c = cache.static_chain(&other).unwrap();
        assert_eq!(cache.stats().misses, 2);
        // different mismatch draw -> different measured noise, same design
        // transfer
        assert_eq!(
            a.transfer_volts_per_stress, c.transfer_volts_per_stress,
            "transfer is mismatch-independent"
        );
    }

    #[test]
    fn stats_track_entries_and_bytes() {
        let cache = PrecomputeCache::new();
        let empty = cache.stats();
        assert_eq!(
            (empty.entries, empty.bytes_estimate, empty.evictions),
            (0, 0, 0)
        );
        cache.resonant_baseline().unwrap();
        cache.static_chain(&StaticReadoutConfig::default()).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert!(s.bytes_estimate > 0);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn capacity_evicts_fifo_and_recomputes_identically() {
        let cache = PrecomputeCache::with_capacity(1);
        let a_cfg = StaticReadoutConfig::default();
        let b_cfg = StaticReadoutConfig {
            seed: a_cfg.seed.wrapping_add(7),
            ..StaticReadoutConfig::default()
        };
        let a = cache.static_chain(&a_cfg).unwrap();
        cache.static_chain(&b_cfg).unwrap(); // pushes `a` out (FIFO, cap 1)
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 1);
        // re-requesting `a` misses and recomputes the exact same response
        let a2 = cache.static_chain(&a_cfg).unwrap();
        assert_eq!(*a, *a2, "eviction must be invisible to results");
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().evictions, 2);
    }
}
