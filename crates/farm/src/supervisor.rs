//! Batch supervision: retry budgets, per-job deadlines and a per-kind
//! circuit breaker on top of the raw [`Farm`] engine.
//!
//! The raw farm records one outcome per job and moves on; the supervisor
//! adds the operational policies a long-running sensor installation
//! needs:
//!
//! - **Bounded retries.** A job that fails retryably (substrate error or
//!   panic) is re-run in a later *wave* with an attempt-salted RNG
//!   stream, up to [`SupervisorConfig::max_attempts`] total tries. Waves
//!   run on the same worker pool as the original batch.
//! - **Per-job deadline.** When the farm has an observer, each execution
//!   is timed on the observer's clock; a job that outlives
//!   [`SupervisorConfig::job_deadline_ns`] is marked
//!   [`FarmError::DeadlineExceeded`] and not retried. Under a
//!   [`canti_obs::VirtualClock`] nothing advances the clock, so the
//!   deadline never fires — which is exactly what keeps deterministic
//!   runs deterministic.
//! - **Circuit breaker.** Each job *kind* carries a breaker:
//!   [`SupervisorConfig::breaker_threshold`] consecutive final failures
//!   trip it open, the next [`SupervisorConfig::breaker_cooldown`] jobs
//!   of that kind are rejected as [`FarmError::BreakerOpen`] without
//!   consuming simulation time, then one half-open probe job decides
//!   whether the breaker closes again or re-opens. Breaker state
//!   persists across [`FarmSupervisor::run`] calls.
//!
//! # Determinism
//!
//! Everything the supervisor decides is a pure function of
//! `(batch_seed, jobs, config, carried breaker state)`. Retry waves use
//! index-addressed result slots like the base pool; the breaker is
//! evaluated in a **submission-order walk after the jobs have run**, not
//! in execution order, so the outcome of a supervised batch is
//! bit-identical for any worker count. The walk may retroactively reject
//! a job that already ran (its result is discarded); only breakers
//! already open when the batch *starts* save actual compute, by
//! pre-filtering the jobs their cooldown covers.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::job::JobSpec;
use crate::report::{BatchReport, FarmError, JobOutput};
use crate::telemetry::FarmTelemetry;
use crate::{Farm, WorkerStat};

/// Retry, deadline and breaker policy for a supervised batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Total executions allowed per job (first try included). `0` is
    /// treated as `1`.
    pub max_attempts: u32,
    /// Consecutive final failures of one kind that trip its breaker;
    /// `0` disables the breaker entirely.
    pub breaker_threshold: u32,
    /// Jobs of a tripped kind rejected before the half-open probe.
    pub breaker_cooldown: u32,
    /// Per-job wall deadline on the observer's clock, ns. `None` — or a
    /// farm without an observer — disables deadline enforcement.
    pub job_deadline_ns: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_attempts: 2,
            breaker_threshold: 4,
            breaker_cooldown: 8,
            job_deadline_ns: None,
        }
    }
}

/// Externally visible state of one kind's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPosition {
    /// Jobs flow normally.
    Closed,
    /// Jobs are rejected; `cooldown_left` more rejections until the
    /// half-open probe.
    Open {
        /// Rejections remaining before the breaker half-opens.
        cooldown_left: u32,
    },
    /// The next job of this kind runs as a probe: success closes the
    /// breaker, failure re-opens it.
    HalfOpen,
}

impl BreakerPosition {
    /// Numeric encoding for the `breaker.state.<kind>` gauge:
    /// closed 0, half-open 1, open 2.
    #[must_use]
    pub fn gauge_value(&self) -> i64 {
        match self {
            Self::Closed => 0,
            Self::HalfOpen => 1,
            Self::Open { .. } => 2,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::HalfOpen => "half_open",
            Self::Open { .. } => "open",
        }
    }
}

/// One kind's breaker: public position plus the failure streak that
/// feeds it.
#[derive(Debug, Clone, Copy)]
struct Breaker {
    position: BreakerPosition,
    consecutive_failures: u32,
}

impl Default for Breaker {
    fn default() -> Self {
        Self {
            position: BreakerPosition::Closed,
            consecutive_failures: 0,
        }
    }
}

/// A [`BatchReport`] plus the supervision ledger that produced it.
///
/// Equality compares the report (seed + outcomes, telemetry excluded)
/// and the ledger — two supervised runs of the same batch are `==`
/// regardless of worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedReport {
    /// Final per-job outcomes after retries, deadlines and the breaker.
    pub report: BatchReport,
    /// Executions per job, indexed like the batch. `0`: rejected by a
    /// breaker that was already open at batch start, so it never ran;
    /// `1`: first try stood; `>1`: retried. A job rejected by a breaker
    /// that tripped mid-batch keeps its execution count (it did run; the
    /// walk discarded the result).
    pub attempts: Vec<u32>,
    /// Jobs that ran more than once.
    pub retried_jobs: usize,
    /// Jobs rejected by an open breaker.
    pub rejected_jobs: usize,
    /// Jobs that blew their deadline.
    pub deadline_jobs: usize,
    /// Breaker trips (open transitions) during this batch.
    pub breaker_trips: usize,
}

impl SupervisedReport {
    /// The batch report's summary plus one supervision line.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.report.render();
        let _ = writeln!(
            out,
            "  supervision: {} retried, {} rejected (breaker), {} over deadline, {} trips",
            self.retried_jobs, self.rejected_jobs, self.deadline_jobs, self.breaker_trips
        );
        out
    }
}

/// The supervising wrapper around a [`Farm`].
#[derive(Debug)]
pub struct FarmSupervisor {
    farm: Farm,
    config: SupervisorConfig,
    breakers: BTreeMap<&'static str, Breaker>,
}

impl FarmSupervisor {
    /// Wraps `farm` with the given policy; all breakers start closed.
    #[must_use]
    pub fn new(farm: Farm, config: SupervisorConfig) -> Self {
        Self {
            farm,
            config,
            breakers: BTreeMap::new(),
        }
    }

    /// The wrapped farm.
    #[must_use]
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// The active policy.
    #[must_use]
    pub fn config(&self) -> SupervisorConfig {
        self.config
    }

    /// Current breaker positions, sorted by kind.
    #[must_use]
    pub fn breaker_states(&self) -> Vec<(&'static str, BreakerPosition)> {
        self.breakers
            .iter()
            .map(|(k, b)| (*k, b.position))
            .collect()
    }

    /// Force-closes every breaker (operator reset).
    pub fn reset_breakers(&mut self) {
        self.breakers.clear();
    }

    /// Runs `jobs` under supervision; see the module docs for the exact
    /// retry/deadline/breaker semantics.
    #[must_use]
    pub fn run(&mut self, jobs: &[JobSpec]) -> SupervisedReport {
        let max_attempts = self.config.max_attempts.max(1);
        let threads = self.farm.threads();
        let obs = self.farm.observer.as_ref();

        let batch_span = obs.map(|o| {
            o.tracer().span(
                "supervised_batch",
                &[
                    ("jobs", jobs.len().into()),
                    ("workers", threads.into()),
                    ("batch_seed", self.farm.config.batch_seed.into()),
                    ("max_attempts", u64::from(max_attempts).into()),
                ],
            )
        });
        let batch_start_ns = obs.map_or(0, |o| o.clock().now_ns());
        let runner =
            Arc::new(
                self.farm
                    .batch_runner(Arc::new(jobs.to_vec()), None, None, batch_start_ns),
            );

        // Pre-filter: breakers already open when the batch starts save
        // real compute — the first `cooldown_left` jobs of that kind
        // never run. (The authoritative walk below re-derives exactly
        // these rejections from the same carried-in state.)
        let mut skip_budget: BTreeMap<&'static str, u32> = BTreeMap::new();
        for (kind, b) in &self.breakers {
            if let BreakerPosition::Open { cooldown_left } = b.position {
                skip_budget.insert(kind, cooldown_left);
            }
        }
        let mut runnable: Vec<usize> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            match skip_budget.get_mut(job.kind()) {
                Some(left) if *left > 0 => *left -= 1,
                _ => runnable.push(i),
            }
        }

        // Retry waves over the runnable set. Results land in per-job
        // slots, so later waves simply overwrite earlier failures.
        let mut outcomes: Vec<Option<Result<JobOutput, FarmError>>> = vec![None; jobs.len()];
        let mut attempts: Vec<u32> = vec![0; jobs.len()];
        let mut per_worker: Vec<WorkerStat> = Vec::new();
        let mut pending = runnable;
        let mut attempt = 0u32;
        while !pending.is_empty() && attempt < max_attempts {
            if attempt > 0 {
                if let Some(o) = obs {
                    o.tracer().event(
                        "retry_wave",
                        &[
                            ("attempt", u64::from(attempt).into()),
                            ("jobs", pending.len().into()),
                        ],
                    );
                }
            }
            let (wave, stats) = self.farm.dispatch(
                &runner,
                Some(Arc::new(pending.clone())),
                attempt,
                self.config.job_deadline_ns,
            );
            merge_worker_stats(&mut per_worker, &stats);
            let mut still_failing = Vec::new();
            for (slot, &i) in wave.into_iter().zip(pending.iter()) {
                attempts[i] += 1;
                let retry = matches!(&slot, Err(e) if e.is_retryable());
                outcomes[i] = Some(slot);
                if retry && attempt + 1 < max_attempts {
                    still_failing.push(i);
                }
            }
            pending = still_failing;
            attempt += 1;
        }

        // The breaker walk: submission order, realized outcomes. This is
        // the single authority on which jobs count as rejected — worker
        // scheduling cannot influence it.
        let mut trips = 0usize;
        let mut rejected = 0usize;
        let mut final_outcomes: Vec<Result<JobOutput, FarmError>> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let kind = job.kind();
            let breaker = self.breakers.entry(kind).or_default();
            if let BreakerPosition::Open { cooldown_left } = breaker.position {
                debug_assert!(cooldown_left > 0, "open breakers always carry cooldown");
                let left = cooldown_left - 1;
                breaker.position = if left == 0 {
                    BreakerPosition::HalfOpen
                } else {
                    BreakerPosition::Open {
                        cooldown_left: left,
                    }
                };
                rejected += 1;
                final_outcomes.push(Err(FarmError::BreakerOpen { job_index: i, kind }));
                if let Some(o) = obs {
                    emit_breaker_event(o, kind, breaker.position, breaker.consecutive_failures);
                }
                continue;
            }
            let outcome = outcomes[i]
                .take()
                .expect("non-rejected jobs ran in some wave");
            let failed = outcome.is_err();
            let was_probe = breaker.position == BreakerPosition::HalfOpen;
            if failed {
                breaker.consecutive_failures += 1;
                let trip = was_probe
                    || (self.config.breaker_threshold > 0
                        && breaker.consecutive_failures >= self.config.breaker_threshold);
                if trip && self.config.breaker_threshold > 0 {
                    breaker.position = if self.config.breaker_cooldown == 0 {
                        BreakerPosition::HalfOpen
                    } else {
                        BreakerPosition::Open {
                            cooldown_left: self.config.breaker_cooldown,
                        }
                    };
                    breaker.consecutive_failures = 0;
                    trips += 1;
                    if let Some(o) = obs {
                        emit_breaker_event(o, kind, breaker.position, 0);
                    }
                }
            } else {
                breaker.consecutive_failures = 0;
                if was_probe {
                    breaker.position = BreakerPosition::Closed;
                    if let Some(o) = obs {
                        emit_breaker_event(o, kind, breaker.position, 0);
                    }
                }
            }
            final_outcomes.push(outcome);
        }

        let retried_jobs = attempts.iter().filter(|&&a| a > 1).count();
        let deadline_jobs = final_outcomes
            .iter()
            .filter(|o| matches!(o, Err(FarmError::DeadlineExceeded { .. })))
            .count();

        let telemetry = obs.map(|o| {
            let ok = final_outcomes.iter().filter(|r| r.is_ok()).count() as u64;
            o.metrics().counter("farm.supervised_batches").add(1);
            o.metrics().gauge("farm.workers").set(threads as i64);
            o.metrics().counter("farm.jobs_ok").add(ok);
            o.metrics()
                .counter("farm.jobs_failed")
                .add(final_outcomes.len() as u64 - ok);
            o.metrics()
                .counter("farm.jobs_retried")
                .add(retried_jobs as u64);
            o.metrics()
                .counter("farm.jobs_rejected")
                .add(rejected as u64);
            o.metrics().counter("farm.breaker_trips").add(trips as u64);
            o.metrics()
                .counter("farm.jobs_deadline")
                .add(deadline_jobs as u64);
            for (kind, b) in &self.breakers {
                o.metrics()
                    .gauge(&format!("breaker.state.{kind}"))
                    .set(b.position.gauge_value());
            }
            let stages = runner
                .stages
                .as_ref()
                .expect("observer implies instruments");
            FarmTelemetry {
                workers: threads,
                jobs: jobs.len(),
                queue_wait_ns: stages.queue_wait.snapshot(),
                precompute_ns: stages.precompute.snapshot(),
                solve_ns: stages.solve.snapshot(),
                cache: self.farm.cache.stats(),
                per_worker,
            }
        });
        drop(batch_span);

        SupervisedReport {
            report: BatchReport {
                batch_seed: self.farm.config.batch_seed,
                outcomes: final_outcomes,
                telemetry,
            },
            attempts,
            retried_jobs,
            rejected_jobs: rejected,
            deadline_jobs,
            breaker_trips: trips,
        }
    }
}

fn emit_breaker_event(
    o: &crate::FarmObserver,
    kind: &'static str,
    position: BreakerPosition,
    consecutive_failures: u32,
) {
    o.tracer().event(
        "breaker_state",
        &[
            ("kind", kind.into()),
            ("to", position.label().into()),
            (
                "consecutive_failures",
                u64::from(consecutive_failures).into(),
            ),
        ],
    );
    o.metrics()
        .gauge(&format!("breaker.state.{kind}"))
        .set(position.gauge_value());
}

/// Element-wise accumulation of wave worker stats (waves may use
/// different worker counts when the item count shrinks).
fn merge_worker_stats(total: &mut Vec<WorkerStat>, wave: &[WorkerStat]) {
    if total.len() < wave.len() {
        total.resize(wave.len(), WorkerStat::default());
    }
    for (t, w) in total.iter_mut().zip(wave.iter()) {
        t.jobs += w.jobs;
        t.busy_ns += w.busy_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ProbeMode;
    use crate::{FarmConfig, FarmObserver};

    fn supervisor(threads: usize, config: SupervisorConfig) -> FarmSupervisor {
        FarmSupervisor::new(
            Farm::new(FarmConfig {
                batch_seed: 0xC0FFEE,
                threads,
            }),
            config,
        )
    }

    fn flaky(p: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Flaky { p_fail: p })
    }

    #[test]
    fn clean_batch_matches_unsupervised_run() {
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec::Probe(ProbeMode::Draws(1 + i % 4)))
            .collect();
        let plain = Farm::new(FarmConfig {
            batch_seed: 0xC0FFEE,
            threads: 2,
        })
        .run(&jobs);
        let supervised = supervisor(2, SupervisorConfig::default()).run(&jobs);
        assert_eq!(supervised.report, plain, "attempt 0 uses the canonical RNG");
        assert_eq!(supervised.retried_jobs, 0);
        assert_eq!(supervised.rejected_jobs, 0);
        assert!(supervised.attempts.iter().all(|&a| a == 1));
    }

    #[test]
    fn retries_rescue_flaky_jobs_deterministically() {
        // p_fail = 0.5: with 4 attempts, very likely every job lands
        let jobs: Vec<JobSpec> = (0..16).map(|_| flaky(0.5)).collect();
        let config = SupervisorConfig {
            max_attempts: 4,
            breaker_threshold: 0,
            ..SupervisorConfig::default()
        };
        let oracle = supervisor(1, config).run(&jobs);
        assert!(
            oracle.retried_jobs > 0,
            "a 0.5 failure rate must force some retries"
        );
        assert!(
            oracle.report.ok_count() > oracle.report.outcomes.len() / 2,
            "retries must rescue most flaky jobs: {}",
            oracle.report.render()
        );
        for threads in [2, 8] {
            let run = supervisor(threads, config).run(&jobs);
            assert_eq!(run, oracle, "{threads} threads");
        }
    }

    #[test]
    fn retry_budget_is_bounded() {
        let jobs = vec![JobSpec::Probe(ProbeMode::Fail); 3];
        let config = SupervisorConfig {
            max_attempts: 3,
            breaker_threshold: 0,
            ..SupervisorConfig::default()
        };
        let run = supervisor(2, config).run(&jobs);
        assert_eq!(run.report.ok_count(), 0);
        assert!(run.attempts.iter().all(|&a| a == 3), "{:?}", run.attempts);
        assert_eq!(run.retried_jobs, 3);
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_probe() {
        // 3 consecutive failures trip the breaker; cooldown 2 rejects the
        // next two probe-kind jobs; the half-open probe (a succeeding
        // job) closes it again.
        let mut jobs = vec![JobSpec::Probe(ProbeMode::Fail); 3];
        jobs.extend(vec![JobSpec::Probe(ProbeMode::Value(1.0)); 4]);
        let config = SupervisorConfig {
            max_attempts: 1,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            job_deadline_ns: None,
        };
        let oracle = supervisor(1, config).run(&jobs);
        assert_eq!(oracle.breaker_trips, 1);
        assert_eq!(oracle.rejected_jobs, 2, "{}", oracle.render());
        assert!(matches!(
            oracle.report.outcomes[3],
            Err(FarmError::BreakerOpen { job_index: 3, .. })
        ));
        assert!(matches!(
            oracle.report.outcomes[4],
            Err(FarmError::BreakerOpen { job_index: 4, .. })
        ));
        // job 5 is the half-open probe and succeeds; job 6 flows normally
        assert!(oracle.report.outcomes[5].is_ok());
        assert!(oracle.report.outcomes[6].is_ok());
        for threads in [2, 8] {
            let run = supervisor(threads, config).run(&jobs);
            assert_eq!(run, oracle, "{threads} threads");
        }
    }

    #[test]
    fn open_breaker_carries_across_batches_and_prefilters() {
        let config = SupervisorConfig {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown: 3,
            job_deadline_ns: None,
        };
        let mut sup = supervisor(2, config);
        let run1 = sup.run(&vec![JobSpec::Probe(ProbeMode::Fail); 2]);
        assert_eq!(run1.breaker_trips, 1);
        assert_eq!(
            sup.breaker_states(),
            vec![("probe", BreakerPosition::Open { cooldown_left: 3 })]
        );

        // next batch: the first three probe jobs are rejected WITHOUT
        // running (attempts 0), the fourth runs as the half-open probe
        let run2 = sup.run(&vec![JobSpec::Probe(ProbeMode::Value(7.0)); 4]);
        assert_eq!(run2.rejected_jobs, 3);
        assert_eq!(&run2.attempts[..3], &[0, 0, 0]);
        assert_eq!(run2.attempts[3], 1);
        assert!(
            run2.report.outcomes[3].is_ok(),
            "probe job must run and pass"
        );
        assert_eq!(
            sup.breaker_states(),
            vec![("probe", BreakerPosition::Closed)]
        );
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let config = SupervisorConfig {
            max_attempts: 1,
            breaker_threshold: 1,
            breaker_cooldown: 1,
            job_deadline_ns: None,
        };
        let mut sup = supervisor(1, config);
        // trip (job 0), reject (job 1), half-open probe fails (job 2) →
        // re-open, reject (job 3)
        let run = sup.run(&vec![JobSpec::Probe(ProbeMode::Fail); 4]);
        assert_eq!(run.breaker_trips, 2);
        assert_eq!(run.rejected_jobs, 2);
        assert!(matches!(
            run.report.outcomes[1],
            Err(FarmError::BreakerOpen { .. })
        ));
        assert!(matches!(run.report.outcomes[2], Err(FarmError::Job { .. })));
        assert!(matches!(
            run.report.outcomes[3],
            Err(FarmError::BreakerOpen { .. })
        ));
    }

    #[test]
    fn breakers_are_per_kind() {
        let config = SupervisorConfig {
            max_attempts: 1,
            breaker_threshold: 1,
            breaker_cooldown: 8,
            job_deadline_ns: None,
        };
        let mut sup = supervisor(2, config);
        let jobs = vec![
            JobSpec::Probe(ProbeMode::Fail),
            JobSpec::ProcessVariation {
                thickness_sigma_rel: 0.0,
            },
            JobSpec::Probe(ProbeMode::Value(1.0)),
        ];
        let run = sup.run(&jobs);
        assert!(matches!(
            run.report.outcomes[2],
            Err(FarmError::BreakerOpen { kind: "probe", .. })
        ));
        assert!(
            run.report.outcomes[1].is_ok(),
            "other kinds must be untouched: {}",
            run.render()
        );
    }

    #[test]
    fn supervised_observer_run_is_bit_identical_and_counts_supervision() {
        let jobs: Vec<JobSpec> = (0..8).map(|_| flaky(0.5)).collect();
        let config = SupervisorConfig {
            max_attempts: 3,
            breaker_threshold: 0,
            ..SupervisorConfig::default()
        };
        let plain = supervisor(4, config).run(&jobs);
        let (observer, ring) = FarmObserver::deterministic(8192);
        let farm = Farm::new(FarmConfig {
            batch_seed: 0xC0FFEE,
            threads: 4,
        })
        .with_observer(observer);
        let mut sup = FarmSupervisor::new(farm, config);
        let observed = sup.run(&jobs);
        assert_eq!(observed, plain, "telemetry must not perturb outcomes");
        let telemetry = observed.report.telemetry.as_ref().expect("telemetry");
        let total_execs: u64 = observed.attempts.iter().map(|&a| u64::from(a)).sum();
        assert_eq!(
            telemetry.per_worker.iter().map(|w| w.jobs).sum::<u64>(),
            total_execs,
            "every execution (retries included) is pool work"
        );
        let metrics = sup.farm().observer().expect("observer").metrics();
        assert_eq!(
            metrics.counter("farm.jobs_retried").get(),
            plain.retried_jobs as u64
        );
        let retry_events = ring
            .events()
            .iter()
            .filter(|e| e.name == "retry_wave")
            .count();
        assert!(retry_events >= 1, "retry waves must announce themselves");
    }

    #[test]
    fn deadline_never_fires_on_a_virtual_clock() {
        let (observer, _ring) = FarmObserver::deterministic(1024);
        let farm = Farm::new(FarmConfig {
            batch_seed: 1,
            threads: 2,
        })
        .with_observer(observer);
        let config = SupervisorConfig {
            job_deadline_ns: Some(1),
            ..SupervisorConfig::default()
        };
        let mut sup = FarmSupervisor::new(farm, config);
        let run = sup.run(&vec![JobSpec::Probe(ProbeMode::Draws(4)); 4]);
        assert_eq!(run.deadline_jobs, 0, "virtual clock never advances");
        assert_eq!(run.report.ok_count(), 4);
    }

    #[test]
    fn deadline_fires_on_a_wall_clock() {
        let (observer, _ring) = FarmObserver::profiling(1024);
        let farm = Farm::new(FarmConfig {
            batch_seed: 1,
            threads: 1,
        })
        .with_observer(observer);
        let config = SupervisorConfig {
            max_attempts: 3,
            breaker_threshold: 0,
            breaker_cooldown: 0,
            job_deadline_ns: Some(1), // 1 ns: any real job busts it
        };
        let mut sup = FarmSupervisor::new(farm, config);
        let run = sup.run(&[JobSpec::Probe(ProbeMode::Draws(10_000))]);
        assert_eq!(run.deadline_jobs, 1, "{}", run.render());
        assert!(matches!(
            run.report.outcomes[0],
            Err(FarmError::DeadlineExceeded {
                job_index: 0,
                deadline_ns: 1,
                ..
            })
        ));
        assert_eq!(run.attempts[0], 1, "deadline busts are not retried");
    }

    #[test]
    fn chaos_scan_batch_is_worker_count_invariant() {
        let jobs = crate::chaos_scan_batch(2, 0xFA_07, 3);
        let config = SupervisorConfig::default();
        let oracle = supervisor(1, config).run(&jobs);
        assert_eq!(oracle.report.ok_count(), 2, "{}", oracle.report.render());
        let degraded: f64 = oracle
            .report
            .metric_values("channels_retried")
            .iter()
            .chain(oracle.report.metric_values("channels_quarantined").iter())
            .sum();
        assert!(
            degraded > 0.0,
            "three faults per scan must degrade something: {}",
            oracle.report.render()
        );
        let parallel = supervisor(4, config).run(&jobs);
        assert_eq!(parallel, oracle);
    }
}
