//! Farm observability: the observer handle wired into [`crate::Farm`]
//! and the [`FarmTelemetry`] section it deposits in
//! [`crate::BatchReport`].
//!
//! # Determinism contract
//!
//! Telemetry is strictly additive: it never touches job RNG streams,
//! job inputs or the cache contents, so a batch's numerical payload is
//! bit-identical with telemetry on or off (and report equality ignores
//! the telemetry section entirely — see [`crate::BatchReport`]).
//! Timestamps come from the observer's injected [`ObsClock`]: the
//! default [`FarmObserver::deterministic`] uses a virtual clock (all
//! durations 0, counts still exact), while
//! [`FarmObserver::profiling`] opts into wall-clock timing for real
//! latency numbers.

use std::fmt::Write as _;
use std::sync::Arc;

use canti_obs::ndjson::{self, JsonValue};
use canti_obs::{
    Histogram, HistogramSnapshot, Metrics, ObsClock, RingCollector, TimelineRecorder, Tracer,
    VirtualClock, WallClock,
};

use crate::cache::CacheStats;
use crate::pool::WorkerStat;

/// Bundles the tracer, metrics registry and clock a [`crate::Farm`]
/// records into.
#[derive(Debug, Clone)]
pub struct FarmObserver {
    metrics: Arc<Metrics>,
    tracer: Tracer,
    clock: Arc<dyn ObsClock>,
    timeline: Option<Arc<TimelineRecorder>>,
}

impl FarmObserver {
    /// An observer from explicit parts.
    #[must_use]
    pub fn from_parts(metrics: Arc<Metrics>, tracer: Tracer, clock: Arc<dyn ObsClock>) -> Self {
        metrics.describe("farm.batches", "farm batches executed");
        metrics.describe("farm.workers", "resolved worker count of the last batch");
        metrics.describe("farm.jobs_ok", "jobs that completed successfully");
        metrics.describe("farm.jobs_failed", "jobs that returned an error");
        metrics.describe(
            "farm.queue_wait_ns",
            "batch start to job claim, nanoseconds",
        );
        metrics.describe("farm.precompute_ns", "shared-cache fetch time, nanoseconds");
        metrics.describe("farm.solve_ns", "job execution time, nanoseconds");
        Self {
            metrics,
            tracer,
            clock,
            timeline: None,
        }
    }

    /// Attaches a per-window timeline recorder: every finished batch
    /// deposits its aggregate deltas (jobs ok/failed, per-stage time,
    /// summed worker busy time) into the batch-end window. Aggregates
    /// only — per-worker series would break the bit-identity of
    /// `/debug/timeline` across worker counts.
    #[must_use]
    pub fn with_timeline(mut self, timeline: Arc<TimelineRecorder>) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// The attached timeline recorder, if any.
    #[must_use]
    pub fn timeline(&self) -> Option<&Arc<TimelineRecorder>> {
        self.timeline.as_ref()
    }

    /// A deterministic observer: virtual clock, in-memory ring collector
    /// (`capacity` events). Durations are all zero unless the code under
    /// observation advances the clock; counts, cache statistics and the
    /// event stream are exact and reproducible.
    #[must_use]
    pub fn deterministic(capacity: usize) -> (Self, Arc<RingCollector>) {
        let ring = Arc::new(RingCollector::new(capacity));
        let clock: Arc<dyn ObsClock> = Arc::new(VirtualClock::new());
        let tracer = Tracer::new(Arc::clone(&ring) as _, Arc::clone(&clock));
        (
            Self::from_parts(Arc::new(Metrics::new()), tracer, clock),
            ring,
        )
    }

    /// A profiling observer: **wall clock**, in-memory ring collector.
    /// Only for opt-in profiling paths (`sensor_farm --telemetry`,
    /// benches); never use in determinism-checked tests.
    #[must_use]
    pub fn profiling(capacity: usize) -> (Self, Arc<RingCollector>) {
        let ring = Arc::new(RingCollector::new(capacity));
        let clock: Arc<dyn ObsClock> = Arc::new(WallClock::new());
        let tracer = Tracer::new(Arc::clone(&ring) as _, Arc::clone(&clock));
        (
            Self::from_parts(Arc::new(Metrics::new()), tracer, clock),
            ring,
        )
    }

    /// The observer's metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The observer's tracer (cheap to clone).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The observer's clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn ObsClock> {
        &self.clock
    }

    /// Binds a live `/metrics` + `/healthz` exposition server over this
    /// observer's metrics registry. Bind to `"127.0.0.1:0"` for an
    /// ephemeral port (read it back via
    /// [`canti_obs::ExpositionServer::local_addr`]).
    ///
    /// Serving is as additive as the rest of the telemetry: scrapes read
    /// atomic snapshots and never touch farm state.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket bind failure.
    pub fn serve(&self, addr: &str) -> std::io::Result<canti_obs::ExpositionServer> {
        canti_obs::ExpositionServer::bind(addr, Arc::clone(&self.metrics))
    }
}

/// Per-job stage instruments handed down into job execution. Owned
/// (`Arc`-backed) rather than borrowed so the per-job closures carrying
/// them are `'static` and can cross into a persistent
/// [`crate::WorkerPool`].
pub(crate) struct JobInstruments {
    pub(crate) tracer: Tracer,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) precompute_ns: Arc<Histogram>,
}

/// The three per-stage histograms every batch (plain or supervised)
/// records into, registered once per batch on the observer's metrics
/// registry.
pub(crate) struct StageInstruments {
    pub(crate) queue_wait: Arc<Histogram>,
    pub(crate) precompute: Arc<Histogram>,
    pub(crate) solve: Arc<Histogram>,
}

impl StageInstruments {
    pub(crate) fn register(observer: &FarmObserver) -> Self {
        Self {
            queue_wait: observer.metrics.histogram("farm.queue_wait_ns"),
            precompute: observer.metrics.histogram("farm.precompute_ns"),
            solve: observer.metrics.histogram("farm.solve_ns"),
        }
    }
}

/// Times `f` as stage `name` into `obs` (when observing); transparent
/// otherwise.
pub(crate) fn timed_stage<T>(
    obs: Option<&JobInstruments>,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    match obs {
        None => f(),
        Some(o) => {
            let span = o.tracer.span(name, &[]);
            let out = f();
            o.precompute_ns.record(span.end());
            out
        }
    }
}

/// The telemetry section of a completed batch. Excluded from
/// [`crate::BatchReport`] equality by design — scheduling and (under a
/// wall clock) timing legitimately differ between equal batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmTelemetry {
    /// Resolved worker count the batch ran on.
    pub workers: usize,
    /// Jobs submitted.
    pub jobs: usize,
    /// Time from batch start until each job was claimed by a worker, ns.
    pub queue_wait_ns: HistogramSnapshot,
    /// Time inside shared-cache fetches (chain characterization /
    /// resonant baseline), ns. Samples only for jobs that hit the cache
    /// layer at all.
    pub precompute_ns: HistogramSnapshot,
    /// Time inside job execution (includes precompute), ns.
    pub solve_ns: HistogramSnapshot,
    /// Shared precompute-cache counters at batch end.
    pub cache: CacheStats,
    /// Per-worker utilization, indexed by worker slot.
    pub per_worker: Vec<WorkerStat>,
}

impl FarmTelemetry {
    /// The named per-stage histograms, in pipeline order.
    #[must_use]
    pub fn stages(&self) -> [(&'static str, HistogramSnapshot); 3] {
        [
            ("queue_wait", self.queue_wait_ns),
            ("precompute", self.precompute_ns),
            ("solve", self.solve_ns),
        ]
    }

    /// A compact human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry: {} jobs on {} workers",
            self.jobs, self.workers
        );
        for (name, s) in self.stages() {
            let _ = writeln!(
                out,
                "  stage {name}: n={} mean={:.0} p50={} p95={} p99={} max={} (ns)",
                s.count,
                s.mean(),
                s.p50,
                s.p95,
                s.p99,
                s.max
            );
        }
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses / {} evictions, {} entries, ~{} B",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
            self.cache.bytes_estimate
        );
        for (w, stat) in self.per_worker.iter().enumerate() {
            let _ = writeln!(
                out,
                "  worker {w}: {} jobs, busy {} ns",
                stat.jobs, stat.busy_ns
            );
        }
        out
    }

    /// One NDJSON line per stage/cache/worker record.
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for (name, s) in self.stages() {
            out.push_str(&ndjson::object(&[
                ("record", JsonValue::from("farm_stage")),
                ("stage", JsonValue::from(name)),
                ("count", JsonValue::U64(s.count)),
                ("sum_ns", JsonValue::U64(s.sum)),
                ("p50_ns", JsonValue::U64(s.p50)),
                ("p95_ns", JsonValue::U64(s.p95)),
                ("p99_ns", JsonValue::U64(s.p99)),
                ("max_ns", JsonValue::U64(s.max)),
            ]));
            out.push('\n');
        }
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("farm_cache")),
            ("hits", JsonValue::U64(self.cache.hits)),
            ("misses", JsonValue::U64(self.cache.misses)),
            ("evictions", JsonValue::U64(self.cache.evictions)),
            ("entries", JsonValue::U64(self.cache.entries)),
            ("bytes_estimate", JsonValue::U64(self.cache.bytes_estimate)),
        ]));
        out.push('\n');
        for (w, stat) in self.per_worker.iter().enumerate() {
            out.push_str(&ndjson::object(&[
                ("record", JsonValue::from("farm_worker")),
                ("worker", JsonValue::from(w)),
                ("jobs", JsonValue::U64(stat.jobs)),
                ("busy_ns", JsonValue::U64(stat.busy_ns)),
            ]));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(count: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count,
            sum: count * 10,
            min: if count > 0 { 10 } else { 0 },
            max: if count > 0 { 10 } else { 0 },
            p50: if count > 0 { 10 } else { 0 },
            p95: if count > 0 { 10 } else { 0 },
            p99: if count > 0 { 10 } else { 0 },
        }
    }

    fn telemetry() -> FarmTelemetry {
        FarmTelemetry {
            workers: 2,
            jobs: 4,
            queue_wait_ns: snapshot(4),
            precompute_ns: snapshot(3),
            solve_ns: snapshot(4),
            cache: CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
                entries: 1,
                bytes_estimate: 24,
            },
            per_worker: vec![
                WorkerStat {
                    jobs: 3,
                    busy_ns: 30,
                },
                WorkerStat {
                    jobs: 1,
                    busy_ns: 10,
                },
            ],
        }
    }

    #[test]
    fn render_mentions_every_stage_and_worker() {
        let text = telemetry().render();
        for needle in [
            "queue_wait",
            "precompute",
            "solve",
            "3 hits",
            "worker 0",
            "worker 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn ndjson_has_one_line_per_record() {
        let t = telemetry();
        let nd = t.to_ndjson();
        // 3 stages + 1 cache + 2 workers
        assert_eq!(nd.lines().count(), 6);
        assert!(nd.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(nd.contains("\"stage\":\"solve\""));
        assert!(nd.contains("\"record\":\"farm_cache\""));
    }

    #[test]
    fn observers_construct() {
        let (det, ring) = FarmObserver::deterministic(64);
        assert!(det.tracer().is_enabled());
        det.tracer().event("x", &[]);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(det.clock().now_ns(), 0, "virtual clock starts at zero");

        let (prof, _ring) = FarmObserver::profiling(64);
        assert!(prof.tracer().is_enabled());
    }
}
