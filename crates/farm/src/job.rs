//! Job specifications and their execution.
//!
//! A [`JobSpec`] is a pure value describing one simulation; execution
//! turns it into named scalar metrics using only (a) the job's own seeded
//! RNG stream and (b) the shared [`PrecomputeCache`]. Nothing else flows
//! between jobs — that independence is what makes batches bit-identical
//! across worker counts.

use canti_bio::assay::AssayProtocol;
use canti_bio::kinetics::{CompetitiveKinetics, LangmuirKinetics};
use canti_bio::receptor::{BindingConstants, ReceptorLayer};
use canti_core::assay::run_static_assay_precomputed;
use canti_core::chip::BiosensorChip;
use canti_core::static_system::StaticReadoutConfig;
use canti_fab::variation::Distribution;
use canti_units::{Kilograms, Meters, Molar, Seconds};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::cache::PrecomputeCache;
use crate::telemetry::{timed_stage, JobInstruments};

/// Receptor chemistries a job can request (value-typed so specs stay
/// `Clone + Send + Sync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receptor {
    /// Anti-IgG antibody layer (the paper's motivating immunoassay).
    AntiIgg,
    /// Anti-PSA antibody layer.
    AntiPsa,
    /// 20-mer ssDNA probe layer.
    Dna20mer,
}

impl Receptor {
    /// Instantiates the receptor layer.
    #[must_use]
    pub fn layer(&self) -> ReceptorLayer {
        match self {
            Self::AntiIgg => ReceptorLayer::anti_igg(),
            Self::AntiPsa => ReceptorLayer::anti_psa(),
            Self::Dna20mer => ReceptorLayer::dna_probe_20mer(),
        }
    }
}

/// Synthetic probe behaviours for exercising the farm itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeMode {
    /// Echo a value plus one draw from the job's RNG stream.
    Value(f64),
    /// Sum `n` Gaussian draws from the job's RNG stream.
    Draws(usize),
    /// Panic (tests per-job fault isolation).
    Panic,
    /// Always fail (drives circuit breakers in supervisor tests).
    Fail,
    /// Fail when the job's next RNG draw falls below `p_fail`; under the
    /// supervisor, retries re-salt the stream, so a flaky job can succeed
    /// on a later attempt — deterministically.
    Flaky {
        /// Failure probability in `[0, 1]`.
        p_fail: f64,
    },
}

/// One simulation job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// One dose point of a static-mode dose-response sweep: run the full
    /// assay protocol at `concentration` and report the transduced peak.
    StaticDoseResponse {
        /// Receptor chemistry on the sensing cantilever.
        receptor: Receptor,
        /// Analyte concentration injected.
        concentration: Molar,
        /// Pre-injection baseline duration.
        baseline: Seconds,
        /// Association (injection) duration.
        association: Seconds,
        /// Wash duration.
        wash: Seconds,
        /// Assay sampling period.
        dt: Seconds,
        /// Electrical samples averaged per assay point.
        averaging: usize,
    },
    /// One Monte-Carlo trial of resonant-chip process variation: draw a
    /// silicon core thickness from `Normal(nominal, rel sigma)` and report
    /// the resulting resonator small-signal figures.
    ProcessVariation {
        /// Relative (fractional) 1σ of the core thickness.
        thickness_sigma_rel: f64,
    },
    /// One point of a cross-reactivity panel: competitive equilibrium of
    /// the target against an interferent, transduced through the static
    /// chain.
    CrossReactivity {
        /// Target analyte concentration.
        target: Molar,
        /// Interferent concentration.
        interferent: Molar,
    },
    /// A synthetic probe job (farm self-tests and benches).
    Probe(ProbeMode),
    /// One full autonomous scan of the paper's four-channel static chip
    /// under a seeded fault plan: the instrument runs with the resilient
    /// recovery policy, so transient faults are retried and persistent
    /// ones quarantined, and the job reports the degradation tally
    /// instead of aborting.
    ChaosScan {
        /// Seed of the generated [`canti_fault::FaultPlan`].
        fault_seed: u64,
        /// Number of fault events in the plan.
        faults: usize,
        /// Electrical samples per channel measurement (keep ≳2000 so the
        /// readout chain settles and healthy channels do not rail).
        samples: usize,
    },
}

impl JobSpec {
    /// A dose point with the quick-immunoassay protocol defaults.
    #[must_use]
    pub fn dose_point(receptor: Receptor, concentration: Molar) -> Self {
        Self::StaticDoseResponse {
            receptor,
            concentration,
            baseline: Seconds::new(30.0),
            association: Seconds::new(300.0),
            wash: Seconds::new(120.0),
            dt: Seconds::new(5.0),
            averaging: 256,
        }
    }

    /// The job's kind tag (matches [`crate::JobOutput::kind`]).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::StaticDoseResponse { .. } => "dose_response",
            Self::ProcessVariation { .. } => "process_variation",
            Self::CrossReactivity { .. } => "cross_reactivity",
            Self::Probe(_) => "probe",
            Self::ChaosScan { .. } => "chaos_scan",
        }
    }
}

/// A dose-response sweep over `concentrations_nm` (nanomolar), anti-IgG.
#[must_use]
pub fn dose_response_sweep(concentrations_nm: &[f64]) -> Vec<JobSpec> {
    concentrations_nm
        .iter()
        .map(|&c| JobSpec::dose_point(Receptor::AntiIgg, Molar::from_nanomolar(c)))
        .collect()
}

/// `trials` Monte-Carlo process-variation jobs at relative sigma
/// `sigma_rel`.
#[must_use]
pub fn process_variation_batch(trials: usize, sigma_rel: f64) -> Vec<JobSpec> {
    (0..trials)
        .map(|_| JobSpec::ProcessVariation {
            thickness_sigma_rel: sigma_rel,
        })
        .collect()
}

/// A cross-reactivity panel: fixed target (nanomolar) against a sweep of
/// interferent levels (micromolar).
#[must_use]
pub fn cross_reactivity_panel(target_nm: f64, interferent_um: &[f64]) -> Vec<JobSpec> {
    interferent_um
        .iter()
        .map(|&c| JobSpec::CrossReactivity {
            target: Molar::from_nanomolar(target_nm),
            interferent: Molar::from_micromolar(c),
        })
        .collect()
}

/// A batch of `scans` chaos scans with consecutive fault-plan seeds
/// derived from `fault_seed`, `faults` events each.
#[must_use]
pub fn chaos_scan_batch(scans: usize, fault_seed: u64, faults: usize) -> Vec<JobSpec> {
    (0..scans)
        .map(|i| JobSpec::ChaosScan {
            fault_seed: fault_seed.wrapping_add(i as u64),
            faults,
            samples: 2_000,
        })
        .collect()
}

/// Nominal silicon core thickness of the paper's resonant beam, m.
const NOMINAL_CORE_THICKNESS: f64 = 5.0e-6;

/// Executes one job against its private RNG stream and the shared cache.
///
/// Returns the metrics (kind-specific fixed order) or a failure reason.
/// Panics are *not* caught here — the farm catches them at the job
/// boundary. `obs`, when present, times the shared-cache fetches as the
/// "precompute" stage; it never influences results.
pub(crate) fn execute(
    spec: &JobSpec,
    rng: &mut ChaCha8Rng,
    cache: &PrecomputeCache,
    obs: Option<&JobInstruments>,
) -> Result<Vec<(&'static str, f64)>, String> {
    match spec {
        JobSpec::StaticDoseResponse {
            receptor,
            concentration,
            baseline,
            association,
            wash,
            dt,
            averaging,
        } => {
            let chain = timed_stage(obs, "precompute", || {
                cache.static_chain(&StaticReadoutConfig::default())
            })
            .map_err(|e| e.to_string())?;
            let layer = receptor.layer();
            let protocol = AssayProtocol::standard(*baseline, *concentration, *association, *wash);
            let kinetics = LangmuirKinetics::from_receptor(&layer);
            let sensorgram = protocol
                .run(&kinetics, *dt, 0.0)
                .map_err(|e| e.to_string())?;
            let noise_seed: u64 = rng.gen();
            let trace =
                run_static_assay_precomputed(&chain, &layer, &sensorgram, *averaging, noise_seed)
                    .map_err(|e| e.to_string())?;
            let peak = trace.peak_signal();
            let noise = chain.per_point_noise(*averaging);
            Ok(vec![
                ("peak_volts", peak),
                ("peak_coverage", sensorgram.peak_coverage()),
                ("noise_volts", noise),
                ("snr", peak.abs() / noise),
            ])
        }
        JobSpec::ProcessVariation {
            thickness_sigma_rel,
        } => {
            let dist = Distribution::Normal {
                mean: NOMINAL_CORE_THICKNESS,
                sigma: thickness_sigma_rel * NOMINAL_CORE_THICKNESS,
            };
            dist.validate().map_err(|e| e.to_string())?;
            let thickness = dist.sample(rng);
            if thickness <= 0.0 {
                return Err(format!(
                    "drawn core thickness {thickness} m is non-physical"
                ));
            }
            let base = timed_stage(obs, "precompute", || cache.resonant_baseline())
                .map_err(|e| e.to_string())?;
            let nominal = BiosensorChip::paper_resonant_chip().map_err(|e| e.to_string())?;
            let geometry = nominal
                .geometry()
                .with_core_thickness(Meters::new(thickness));
            let chip = nominal.with_geometry(geometry).map_err(|e| e.to_string())?;
            let system = canti_core::resonant_system::ResonantCantileverSystem::new(
                chip,
                canti_core::chip::Environment::air(),
                canti_core::resonant_system::ResonantLoopConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            let loading = system.mass_loading();
            let f0 = loading.resonator().resonant_frequency().value();
            let resp = loading.responsivity();
            let min_mass = loading
                .min_detectable_mass(canti_units::Hertz::new(0.1))
                .map_err(|e| e.to_string())?;
            let _: Kilograms = min_mass;
            Ok(vec![
                ("core_thickness_um", thickness * 1e6),
                ("f0_hz", f0),
                ("f0_shift_rel", f0 / base.baseline_frequency_hz - 1.0),
                ("responsivity_hz_per_kg", resp),
                ("min_detectable_kg", min_mass.value()),
            ])
        }
        JobSpec::CrossReactivity {
            target,
            interferent,
        } => {
            let chain = timed_stage(obs, "precompute", || {
                cache.static_chain(&StaticReadoutConfig::default())
            })
            .map_err(|e| e.to_string())?;
            let layer = ReceptorLayer::anti_igg();
            // weak cross-reactive binder: 1000x poorer affinity than the
            // target (the A5 experiment's interferent model)
            let weak = BindingConstants::new(1e3, 1e-2).map_err(|e| e.to_string())?;
            let competitive = CompetitiveKinetics::new(layer.binding(), weak);
            let clean = competitive.equilibrium(*target, Molar::zero()).target;
            let eq = competitive.equilibrium(*target, *interferent);
            let sigma = layer
                .surface_stress_at(eq.target)
                .map_err(|e| e.to_string())?;
            let specific_err_pct = if clean > 0.0 {
                (eq.target - clean) / clean * 100.0
            } else {
                0.0
            };
            Ok(vec![
                ("target_coverage", eq.target),
                ("interferent_coverage", eq.interferent),
                ("specific_err_pct", specific_err_pct),
                (
                    "output_volts",
                    chain.transfer_volts_per_stress * sigma.value(),
                ),
            ])
        }
        JobSpec::Probe(mode) => match mode {
            ProbeMode::Value(v) => Ok(vec![("value", *v), ("draw", rng.gen::<f64>())]),
            ProbeMode::Draws(n) => {
                let dist = Distribution::Normal {
                    mean: 0.0,
                    sigma: 1.0,
                };
                let sum: f64 = (0..*n).map(|_| dist.sample(rng)).sum();
                Ok(vec![("sum", sum)])
            }
            ProbeMode::Panic => panic!("probe job panic (intentional)"),
            ProbeMode::Fail => Err("probe job failure (intentional)".to_owned()),
            ProbeMode::Flaky { p_fail } => {
                let draw = rng.gen::<f64>();
                if draw < *p_fail {
                    Err(format!("flaky probe failed (drew {draw:.3} < {p_fail})"))
                } else {
                    Ok(vec![("draw", draw)])
                }
            }
        },
        JobSpec::ChaosScan {
            fault_seed,
            faults,
            samples,
        } => {
            use canti_core::autonomous::{AutonomousInstrument, ChannelStatus, RecoveryPolicy};
            use canti_core::static_system::{StaticCantileverSystem, CHANNELS};
            use canti_fault::{ChaosConfig, FaultPlan, PlannedInjector};

            let chip = BiosensorChip::paper_static_chip().map_err(|e| e.to_string())?;
            let system = StaticCantileverSystem::new(chip, StaticReadoutConfig::default())
                .map_err(|e| e.to_string())?;
            let mut instrument = AutonomousInstrument::new(system).map_err(|e| e.to_string())?;
            // when the batch is observed, the instrument's fault/recovery
            // events and counters flow into the farm's trace and metrics
            // streams (the obsctl fault-health gate reads them there)
            if let Some(o) = obs {
                instrument.set_tracer(o.tracer.clone());
                instrument.set_metrics(std::sync::Arc::clone(&o.metrics));
            }
            instrument.set_recovery_policy(RecoveryPolicy::resilient());
            let chaos = ChaosConfig {
                faults: *faults,
                ..ChaosConfig::default()
            };
            let plan = FaultPlan::generate(*fault_seed, CHANNELS, &chaos);
            instrument.set_fault_injector(Box::new(PlannedInjector::new(plan)));
            instrument.power_on().map_err(|e| e.to_string())?;

            // a known stress pattern so healthy channels carry signal
            let mut sigmas = [canti_units::SurfaceStress::zero(); CHANNELS];
            sigmas[1] = canti_units::SurfaceStress::from_millinewtons_per_meter(2.0);
            let report = instrument
                .run_scan(sigmas, *samples)
                .map_err(|e| e.to_string())?;

            let ok = report
                .status
                .iter()
                .filter(|s| **s == ChannelStatus::Ok)
                .count();
            let retry_attempts: u32 = report
                .status
                .iter()
                .map(|s| match s {
                    ChannelStatus::Retried { attempts } => *attempts,
                    _ => 0,
                })
                .sum();
            let usable: Vec<f64> = report
                .status
                .iter()
                .zip(report.outputs.iter())
                .filter(|(s, _)| s.is_usable())
                .map(|(_, v)| v.value())
                .collect();
            // quarantined channels carry NaN outputs; keep them out of the
            // mean so the metric stays comparable (NaN breaks report ==)
            let mean_usable = if usable.is_empty() {
                0.0
            } else {
                usable.iter().sum::<f64>() / usable.len() as f64
            };
            Ok(vec![
                ("channels_ok", ok as f64),
                ("channels_retried", report.retried_channels() as f64),
                ("channels_quarantined", report.quarantined_channels() as f64),
                ("retry_attempts", f64::from(retry_attempts)),
                ("mean_usable_volts", mean_usable),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn builders_shape_batches() {
        let sweep = dose_response_sweep(&[1.0, 10.0, 100.0]);
        assert_eq!(sweep.len(), 3);
        assert!(matches!(sweep[0], JobSpec::StaticDoseResponse { .. }));
        assert_eq!(sweep[0].kind(), "dose_response");

        let mc = process_variation_batch(5, 0.02);
        assert_eq!(mc.len(), 5);
        assert_eq!(mc[0].kind(), "process_variation");

        let panel = cross_reactivity_panel(1.0, &[0.0, 10.0]);
        assert_eq!(panel.len(), 2);
        assert_eq!(panel[0].kind(), "cross_reactivity");
    }

    #[test]
    fn probe_jobs_are_deterministic_per_seed() {
        let cache = PrecomputeCache::new();
        let a = execute(
            &JobSpec::Probe(ProbeMode::Draws(16)),
            &mut rng(5),
            &cache,
            None,
        )
        .unwrap();
        let b = execute(
            &JobSpec::Probe(ProbeMode::Draws(16)),
            &mut rng(5),
            &cache,
            None,
        )
        .unwrap();
        assert_eq!(a, b);
        let c = execute(
            &JobSpec::Probe(ProbeMode::Draws(16)),
            &mut rng(6),
            &cache,
            None,
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn process_variation_tracks_thickness() {
        let cache = PrecomputeCache::new();
        // zero sigma: the drawn thickness is exactly nominal
        let spec = JobSpec::ProcessVariation {
            thickness_sigma_rel: 0.0,
        };
        let m = execute(&spec, &mut rng(1), &cache, None).unwrap();
        let get = |n: &str| m.iter().find(|(k, _)| *k == n).unwrap().1;
        assert!((get("core_thickness_um") - 5.0).abs() < 1e-12);
        assert!(
            get("f0_shift_rel").abs() < 1e-9,
            "nominal draw shifts nothing"
        );
        assert!(get("f0_hz") > 10e3);
        assert!(get("min_detectable_kg") > 0.0);
        // thicker beam -> stiffer -> higher f0: check monotonicity through
        // a forced draw by sampling with a wide sigma until above nominal
        let wide = JobSpec::ProcessVariation {
            thickness_sigma_rel: 0.05,
        };
        let mut r = rng(3);
        let v = execute(&wide, &mut r, &cache, None).unwrap();
        let t = v.iter().find(|(k, _)| *k == "core_thickness_um").unwrap().1;
        let f = v.iter().find(|(k, _)| *k == "f0_hz").unwrap().1;
        let f_nominal = get("f0_hz");
        if t > 5.0 {
            assert!(f > f_nominal, "thicker ({t} um) must be faster");
        } else {
            assert!(f < f_nominal, "thinner ({t} um) must be slower");
        }
    }

    #[test]
    fn cross_reactivity_interferent_suppresses_target() {
        let cache = PrecomputeCache::new();
        let clean = execute(
            &JobSpec::CrossReactivity {
                target: Molar::from_nanomolar(1.0),
                interferent: Molar::zero(),
            },
            &mut rng(0),
            &cache,
            None,
        )
        .unwrap();
        let heavy = execute(
            &JobSpec::CrossReactivity {
                target: Molar::from_nanomolar(1.0),
                interferent: Molar::from_micromolar(100.0),
            },
            &mut rng(0),
            &cache,
            None,
        )
        .unwrap();
        let get = |m: &[(&str, f64)], n: &str| m.iter().find(|(k, _)| *k == n).unwrap().1;
        assert_eq!(get(&clean, "specific_err_pct"), 0.0);
        assert!(
            get(&heavy, "target_coverage") < get(&clean, "target_coverage"),
            "competition must displace the target"
        );
        assert!(get(&heavy, "specific_err_pct") < 0.0);
        assert!(get(&heavy, "interferent_coverage") > 0.0);
    }
}
