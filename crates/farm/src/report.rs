//! Batch outcomes: per-job outputs, per-job errors, and aggregate
//! statistics over a completed batch.

use std::fmt;

use canti_fab::variation::Stats;

use crate::telemetry::FarmTelemetry;

/// A per-job or batch-level farm failure.
///
/// Job failures are *per job*: one broken or panicking job surfaces here
/// in its slot of [`BatchReport::outcomes`] without poisoning the rest of
/// the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// The batch itself was misconfigured (bad thread count, empty batch).
    Config {
        /// What is wrong.
        reason: String,
    },
    /// A job returned an error from the simulation substrate.
    Job {
        /// Index of the failing job in the submitted batch.
        job_index: usize,
        /// The substrate's error message.
        reason: String,
    },
    /// A job panicked; the panic was caught at the job boundary.
    Panic {
        /// Index of the panicking job in the submitted batch.
        job_index: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The supervisor's circuit breaker for this job kind was open, so
    /// the job was rejected without (its result) being used.
    BreakerOpen {
        /// Index of the rejected job in the submitted batch.
        job_index: usize,
        /// The job kind whose breaker was open.
        kind: &'static str,
    },
    /// The job finished but blew through the supervisor's per-job
    /// deadline (measured on the observer's clock).
    DeadlineExceeded {
        /// Index of the job in the submitted batch.
        job_index: usize,
        /// Observed job duration, ns.
        elapsed_ns: u64,
        /// The configured deadline, ns.
        deadline_ns: u64,
    },
}

impl FarmError {
    /// Whether the supervisor may re-run a job that failed this way.
    /// Breaker rejections and deadline busts are final; substrate errors
    /// and panics are worth another attempt with a fresh RNG stream.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, Self::Job { .. } | Self::Panic { .. })
    }
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config { reason } => write!(f, "farm configuration error: {reason}"),
            Self::Job { job_index, reason } => write!(f, "job {job_index} failed: {reason}"),
            Self::Panic { job_index, message } => {
                write!(f, "job {job_index} panicked: {message}")
            }
            Self::BreakerOpen { job_index, kind } => {
                write!(f, "job {job_index} rejected: breaker open for kind {kind}")
            }
            Self::DeadlineExceeded {
                job_index,
                elapsed_ns,
                deadline_ns,
            } => write!(
                f,
                "job {job_index} exceeded its deadline: {elapsed_ns} ns > {deadline_ns} ns"
            ),
        }
    }
}

impl std::error::Error for FarmError {}

/// One job's result: a flat list of named scalar metrics.
///
/// Metrics are plain `f64`s so batch reports can be compared bit-for-bit
/// across worker counts — the determinism contract of the farm.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Index of the job in the submitted batch.
    pub job_index: usize,
    /// The job kind (`"dose_response"`, `"process_variation"`, ...).
    pub kind: &'static str,
    /// Named scalar results, in a kind-specific fixed order.
    pub metrics: Vec<(&'static str, f64)>,
}

impl JobOutput {
    /// Looks up a metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// The aggregated result of one batch run.
///
/// Equality compares the batch seed and every job outcome — two reports
/// from the same `(seed, jobs)` pair are `==` regardless of how many
/// worker threads produced them, **and regardless of telemetry**: the
/// [`FarmTelemetry`] section legitimately varies with scheduling and
/// (under a wall clock) timing, so it is deliberately excluded from
/// `PartialEq`. The numerical payload is the contract; telemetry is
/// diagnostics.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The seed every job's RNG stream was derived from.
    pub batch_seed: u64,
    /// Per-job outcomes, indexed exactly like the submitted job list.
    pub outcomes: Vec<Result<JobOutput, FarmError>>,
    /// Stage/cache/worker telemetry, present when the farm ran with a
    /// [`crate::FarmObserver`] attached.
    pub telemetry: Option<FarmTelemetry>,
}

impl PartialEq for BatchReport {
    fn eq(&self, other: &Self) -> bool {
        self.batch_seed == other.batch_seed && self.outcomes == other.outcomes
    }
}

impl BatchReport {
    /// Iterates over the successful job outputs.
    pub fn ok(&self) -> impl Iterator<Item = &JobOutput> {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok())
    }

    /// Iterates over the per-job failures.
    pub fn errors(&self) -> impl Iterator<Item = &FarmError> {
        self.outcomes.iter().filter_map(|o| o.as_ref().err())
    }

    /// Number of successful jobs.
    #[must_use]
    pub fn ok_count(&self) -> usize {
        self.ok().count()
    }

    /// Number of failed jobs.
    #[must_use]
    pub fn err_count(&self) -> usize {
        self.errors().count()
    }

    /// Collects metric `name` from every successful job that reports it,
    /// in job order.
    #[must_use]
    pub fn metric_values(&self, name: &str) -> Vec<f64> {
        self.ok().filter_map(|j| j.metric(name)).collect()
    }

    /// Summary statistics of metric `name` across the batch (`None` with
    /// fewer than two reporting jobs).
    #[must_use]
    pub fn metric_stats(&self, name: &str) -> Option<Stats> {
        Stats::of(&self.metric_values(name))
    }

    /// A compact human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch seed {:#x}: {} jobs, {} ok, {} failed",
            self.batch_seed,
            self.outcomes.len(),
            self.ok_count(),
            self.outcomes.len() - self.ok_count()
        );
        // every metric name seen, in first-seen order
        let mut names: Vec<&'static str> = Vec::new();
        for job in self.ok() {
            for (n, _) in &job.metrics {
                if !names.contains(n) {
                    names.push(n);
                }
            }
        }
        for name in names {
            if let Some(s) = self.metric_stats(name) {
                let _ = writeln!(
                    out,
                    "  {name}: mean {:.4e}  sd {:.3e}  min {:.4e}  max {:.4e}  (n={})",
                    s.mean, s.std_dev, s.min, s.max, s.count
                );
            }
        }
        for err in self.errors() {
            let _ = writeln!(out, "  ! {err}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(i: usize, v: f64) -> JobOutput {
        JobOutput {
            job_index: i,
            kind: "probe",
            metrics: vec![("value", v)],
        }
    }

    #[test]
    fn metric_lookup_and_stats() {
        let report = BatchReport {
            batch_seed: 7,
            outcomes: vec![
                Ok(job(0, 1.0)),
                Err(FarmError::Panic {
                    job_index: 1,
                    message: "boom".into(),
                }),
                Ok(job(2, 3.0)),
            ],
            telemetry: None,
        };
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.metric_values("value"), vec![1.0, 3.0]);
        let s = report.metric_stats("value").unwrap();
        assert_eq!(s.mean, 2.0);
        assert!(report.metric_stats("missing").is_none());
        let text = report.render();
        assert!(text.contains("2 ok"));
        assert!(text.contains("panicked"));
    }

    #[test]
    fn equality_ignores_telemetry() {
        let base = BatchReport {
            batch_seed: 1,
            outcomes: vec![Ok(job(0, 2.0))],
            telemetry: None,
        };
        let mut observed = base.clone();
        observed.telemetry = Some(FarmTelemetry {
            workers: 8,
            jobs: 1,
            queue_wait_ns: Default::default(),
            precompute_ns: Default::default(),
            solve_ns: Default::default(),
            cache: Default::default(),
            per_worker: Vec::new(),
        });
        assert_eq!(base, observed, "telemetry must not affect report equality");
        let mut different = base.clone();
        different.batch_seed = 2;
        assert_ne!(base, different);
    }

    #[test]
    fn error_display() {
        let e = FarmError::Job {
            job_index: 4,
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("job 4"));
        let c = FarmError::Config {
            reason: "no jobs".into(),
        };
        assert!(c.to_string().contains("configuration"));
    }
}
