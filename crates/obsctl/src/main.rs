//! The `obsctl` binary: thin argv/exit-code shell over [`canti_obsctl`].

use std::path::PathBuf;
use std::process::ExitCode;

use canti_obsctl::{
    anomaly, diff, flame, slo_report, summary, summary_json, timeline_report, trace_request,
    trace_request_json, AnomalyOptions, CliError, DiffOptions, TimelineOptions,
};

const HELP: &str = "\
obsctl — consume canti telemetry artifacts

USAGE:
    obsctl summary  <telemetry.ndjson> [--json]
    obsctl flame    <telemetry.ndjson>
    obsctl diff     <old.json> <new.json> [--threshold-pct <P>] [--min-ns <N>]
    obsctl trace    <telemetry.ndjson> <request-id> [--json]
    obsctl slo      <telemetry.ndjson> [--objective-ns <N>] [--window-ns <N>]
    obsctl timeline <timeline.ndjson> [--shard <S>] [--series <NAME>]...
                    [--spans <telemetry.ndjson>] [--json]
    obsctl anomaly  <current.ndjson> <baseline.ndjson> [--shard <S>]
                    [--series <NAME>]... [--threshold-pct <P>]
    obsctl --help

SUBCOMMANDS:
    summary   Reconstruct the span tree from a telemetry NDJSON artifact
              and print per-stage aggregates plus the critical path.
              Fails (exit 1) when the span tree is empty or the trace
              sequence has gaps — CI uses this as an artifact-health gate.
    flame     Print folded-stack flamegraph lines (`a;b;c <self_ns>`)
              for the same artifact; pipe into flamegraph.pl / inferno.
    diff      Compare per-stage p50/p95/p99 latencies between a baseline
              and a candidate file. Accepts ExperimentReport JSON
              (\"timings\": [...]), farm_stage NDJSON records, and
              histogram metric-dump NDJSON lines. Exits 1 when any stage
              regressed beyond the threshold — the CI perf gate. The p99
              row appears only when both files carry it, so archived
              baselines keep diffing.
    trace     Reconstruct one request's span chain — the admission-side
              'request' span plus every farm 'job' span executed on its
              behalf — and print it with the critical path. Exits 1 when
              the request is absent, orphaned (no admission span),
              unclosed, or the sequence has gaps — the serve-artifact
              health gate CI runs on the smoke telemetry.
    slo       Recompute deterministic SLO windows offline from the closed
              'request' spans in the artifact, for auditing the live
              /debug/slo view against the raw trace. Exits 1 when the
              artifact holds no request spans.
    timeline  Render the per-window series of a /debug/timeline NDJSON
              artifact as tables with count sparklines. With --spans,
              recompute the request-latency windows offline from the
              closed 'request' spans of that telemetry artifact and
              cross-check them against the live windows; exits 1 when
              they disagree.
    anomaly   Compare a timeline artifact against an archived baseline,
              per series, on total observation counts (stable under a
              wall clock, unlike nanosecond sums). Exits 1 when any
              series drifted beyond the threshold in either direction or
              is missing on one side — the CI timeline anomaly gate.

OPTIONS (summary, trace, timeline):
    --json                Emit fixed-field NDJSON records instead of the
                          human-readable rendering.

OPTIONS (diff):
    --threshold-pct <P>   Relative slack in percent; a quantile regresses
                          only when it grew by more than P% (default 25).
    --min-ns <N>          Absolute noise floor in nanoseconds; deltas of
                          at most N ns never count (default 10000).

OPTIONS (slo):
    --objective-ns <N>    Latency objective in nanoseconds; a request at
                          most this slow is good (default 50000000).
    --window-ns <N>       Fixed window width in nanoseconds on the
                          artifact's clock (default 1000000000).

OPTIONS (timeline):
    --shard <S>           Shard section to render: a shard label or
                          'merged' (default 0).
    --series <NAME>       Restrict to this series; repeatable.
    --spans <FILE>        Telemetry NDJSON artifact to recompute the
                          request-latency windows from as a cross-check.

OPTIONS (anomaly):
    --shard <S>           Shard section to compare (default merged).
    --series <NAME>       Compare this series; repeatable. A named
                          series missing on either side is an anomaly.
                          Default: every series in either artifact.
    --threshold-pct <P>   Count-drift tolerance in percent, either
                          direction (default 25).

EXIT CODES:
    0   success / no regression / no anomaly
    1   gate failed (regression, empty span tree, sequence gaps,
        missing/orphaned/unclosed request, no request spans, timeline
        recompute mismatch, timeline count drift or missing series)
    2   usage, I/O or parse error
";

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("missing subcommand (try --help)".into()));
    };

    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            print!("{HELP}");
            Ok(())
        }
        "summary" | "flame" => {
            let (json, rest): (bool, Vec<&String>) = split_json_flag(&args[1..]);
            let [path] = rest.as_slice() else {
                return Err(CliError::Usage(format!(
                    "{cmd} takes exactly one file argument"
                )));
            };
            if json && cmd == "flame" {
                return Err(CliError::Usage("flame has no --json mode".into()));
            }
            let path = PathBuf::from(path);
            let out = match (cmd.as_str(), json) {
                ("summary", false) => summary(&path)?,
                ("summary", true) => summary_json(&path)?,
                _ => flame(&path)?,
            };
            print!("{out}");
            Ok(())
        }
        "trace" => {
            let (json, rest): (bool, Vec<&String>) = split_json_flag(&args[1..]);
            let [path, request] = rest.as_slice() else {
                return Err(CliError::Usage(
                    "trace takes exactly two arguments: <telemetry.ndjson> <request-id>".into(),
                ));
            };
            let request: u64 = request.parse().map_err(|_| {
                CliError::Usage(format!("trace: cannot parse request id {request:?}"))
            })?;
            let path = PathBuf::from(path);
            let out = if json {
                trace_request_json(&path, request)?
            } else {
                trace_request(&path, request)?
            };
            print!("{out}");
            Ok(())
        }
        "timeline" => {
            let mut opts = TimelineOptions::default();
            let mut spans: Option<PathBuf> = None;
            let mut files: Vec<PathBuf> = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--shard" => {
                        opts.shard = require_value(rest.next(), "--shard")?;
                    }
                    "--series" => {
                        opts.series.push(require_value(rest.next(), "--series")?);
                    }
                    "--spans" => {
                        spans = Some(PathBuf::from(require_value(rest.next(), "--spans")?));
                    }
                    "--json" => opts.json = true,
                    flag if flag.starts_with('-') => {
                        return Err(CliError::Usage(format!("unknown flag {flag}")));
                    }
                    path => files.push(PathBuf::from(path)),
                }
            }
            let [path] = files.as_slice() else {
                return Err(CliError::Usage(
                    "timeline takes exactly one file argument: <timeline.ndjson>".into(),
                ));
            };
            let out = timeline_report(path, spans.as_deref(), &opts)?;
            print!("{out}");
            Ok(())
        }
        "anomaly" => {
            let mut opts = AnomalyOptions::default();
            let mut files: Vec<PathBuf> = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--threshold-pct" => {
                        opts.threshold_pct = parse_flag(rest.next(), "--threshold-pct")?;
                    }
                    "--shard" => {
                        opts.shard = require_value(rest.next(), "--shard")?;
                    }
                    "--series" => {
                        opts.series.push(require_value(rest.next(), "--series")?);
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError::Usage(format!("unknown flag {flag}")));
                    }
                    path => files.push(PathBuf::from(path)),
                }
            }
            let [current, baseline] = files.as_slice() else {
                return Err(CliError::Usage(
                    "anomaly takes exactly two file arguments: <current> <baseline>".into(),
                ));
            };
            let report = anomaly(current, baseline, &opts)?;
            print!("{}", report.render());
            if report.anomalous() {
                return Err(CliError::Gate(format!(
                    "{} series anomalous beyond {}%, {} missing",
                    report.rows.iter().filter(|r| r.anomalous).count(),
                    opts.threshold_pct,
                    report.missing.len()
                )));
            }
            Ok(())
        }
        "slo" => {
            let mut config = canti_obs::SloConfig::default();
            let mut files: Vec<PathBuf> = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--objective-ns" => {
                        config.objective_ns = parse_flag(rest.next(), "--objective-ns")?;
                    }
                    "--window-ns" => {
                        config.window_ns = parse_flag(rest.next(), "--window-ns")?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError::Usage(format!("unknown flag {flag}")));
                    }
                    path => files.push(PathBuf::from(path)),
                }
            }
            let [path] = files.as_slice() else {
                return Err(CliError::Usage(
                    "slo takes exactly one file argument: <telemetry.ndjson>".into(),
                ));
            };
            let out = slo_report(path, config)?;
            print!("{out}");
            Ok(())
        }
        "diff" => {
            let mut opts = DiffOptions::default();
            let mut files: Vec<PathBuf> = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--threshold-pct" => {
                        opts.threshold_pct = parse_flag(rest.next(), "--threshold-pct")?;
                    }
                    "--min-ns" => {
                        opts.min_delta_ns = parse_flag(rest.next(), "--min-ns")?;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError::Usage(format!("unknown flag {flag}")));
                    }
                    path => files.push(PathBuf::from(path)),
                }
            }
            let [old, new] = files.as_slice() else {
                return Err(CliError::Usage(
                    "diff takes exactly two file arguments: <old> <new>".into(),
                ));
            };
            let report = diff(old, new, opts)?;
            print!("{}", report.render());
            if report.regressed() {
                return Err(CliError::Gate(format!(
                    "{} stage quantile(s) regressed beyond {}% (+{} ns floor)",
                    report.rows.iter().filter(|r| r.regressed).count(),
                    opts.threshold_pct,
                    opts.min_delta_ns
                )));
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other} (try --help)"
        ))),
    }
}

fn parse_flag<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> Result<T, CliError> {
    let raw = value.ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    raw.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse {raw:?}")))
}

fn require_value(value: Option<&String>, flag: &str) -> Result<String, CliError> {
    value
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

/// Pulls a trailing/leading `--json` out of an argument slice.
fn split_json_flag(args: &[String]) -> (bool, Vec<&String>) {
    let json = args.iter().any(|a| a == "--json");
    (json, args.iter().filter(|a| *a != "--json").collect())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("obsctl: {err}");
            ExitCode::from(u8::try_from(err.exit_code()).unwrap_or(2))
        }
    }
}
