//! `obsctl` — the consumption-side CLI over canti telemetry artifacts.
//!
//! Seven subcommands, all pure functions in this library so tests (and
//! CI) can drive them without spawning the binary:
//!
//! * [`summary`] — parse a telemetry NDJSON artifact, reconstruct the
//!   span tree, print per-stage aggregates and the critical path;
//!   **fails** (the CI gate) when the span tree is empty or the trace
//!   sequence has gaps,
//! * [`flame`] — folded-stack flamegraph lines from the same artifact
//!   (pipe into `flamegraph.pl` / inferno),
//! * [`diff`] — compare per-stage `p50`/`p95`/`p99` between two bench or
//!   telemetry JSON files and report regressions beyond a configurable
//!   threshold; the binary exits non-zero on any regression, which is
//!   the perf-regression gate `scripts/ci.sh` runs,
//! * [`trace_request`] — reconstruct one request's span chain (admission
//!   `request` span through the farm `job` span that executed it) and
//!   its critical path; **fails** when the request is absent, orphaned
//!   (no admission-side span), unclosed, or the sequence has gaps —
//!   the serve-artifact health gate,
//! * [`slo_report`] — recompute deterministic SLO windows offline from
//!   the closed `request` spans in an artifact, for auditing the live
//!   `/debug/slo` view against the raw trace,
//! * [`timeline_report`] — render the per-window series of a
//!   `/debug/timeline` NDJSON artifact as tables with count sparklines,
//!   and optionally recompute the request-latency windows offline from a
//!   span artifact as a cross-check (**fails** when they disagree),
//! * [`anomaly`] — compare a timeline artifact against an archived
//!   baseline, per-series, and report count drift beyond a threshold;
//!   the binary exits non-zero on drift or a missing series — the
//!   timeline anomaly gate `scripts/ci.sh` runs between smoke runs.
//!
//! `diff` understands every timing shape the workspace writes: the
//! `ExperimentReport::to_json` document (`"timings": [...]`), NDJSON
//! `farm_stage` records, and NDJSON metric-dump histogram lines.
//! [`summary`] and [`trace_request`] have `*_json` twins emitting
//! fixed-field NDJSON for machine consumers (`--json` on the binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

use canti_obs::parse::{parse_json, parse_ndjson, Json};
use canti_obs::Trace;

/// What went wrong, and how the process should exit.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown flag, missing file argument…) — exit 2.
    Usage(String),
    /// A file could not be read or parsed — exit 2.
    Input(String),
    /// A gate tripped (regression found, empty span tree, seq gaps) —
    /// exit 1.
    Gate(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "usage error: {msg}"),
            Self::Input(msg) => write!(f, "input error: {msg}"),
            Self::Gate(msg) => write!(f, "gate failed: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// The process exit code this error maps to.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::Gate(_) => 1,
            Self::Usage(_) | Self::Input(_) => 2,
        }
    }
}

fn read_file(path: &Path) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("{}: {e}", path.display())))
}

/// One named stage's latency summary extracted from an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummary {
    /// Median, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns — `None` for artifacts written before the
    /// histogram summaries carried tail quantiles (archived baselines
    /// keep diffing cleanly).
    pub p99_ns: Option<u64>,
    /// Largest sample, ns — `None` for the same legacy artifacts.
    pub max_ns: Option<u64>,
    /// Samples behind the quantiles.
    pub count: u64,
}

/// Extracts `(stage name, summary)` pairs from a bench/telemetry file.
///
/// Accepted shapes, unioned (first occurrence of a name wins):
/// * `ExperimentReport::to_json`: `{"timings": [{"name", "p50_ns", ...}]}`
/// * NDJSON farm records: `{"record":"farm_stage","stage",...,"p50_ns",..}`
/// * NDJSON metric dumps: `{"metric":..,"type":"histogram","p50":..}`
///
/// # Errors
///
/// [`CliError::Input`] when the file is unreadable, unparsable, or
/// contains no recognizable timings.
pub fn load_stages(path: &Path) -> Result<Vec<(String, StageSummary)>, CliError> {
    let text = read_file(path)?;
    let docs = match parse_json(&text) {
        Ok(doc) => vec![doc],
        Err(_) => {
            parse_ndjson(&text).map_err(|e| CliError::Input(format!("{}: {e}", path.display())))?
        }
    };

    let mut stages: Vec<(String, StageSummary)> = Vec::new();
    let mut push = |name: &str, summary: StageSummary| {
        if !stages.iter().any(|(n, _)| n == name) {
            stages.push((name.to_owned(), summary));
        }
    };

    // the bench/farm shapes suffix keys with `_ns`; metric dumps don't
    let summarize = |doc: &Json, suffix: &str| -> Option<StageSummary> {
        let field = |key: &str| doc.get(&format!("{key}{suffix}")).and_then(Json::as_u64);
        Some(StageSummary {
            p50_ns: field("p50")?,
            p95_ns: field("p95")?,
            p99_ns: field("p99"),
            max_ns: field("max"),
            count: doc.get("count").and_then(Json::as_u64).unwrap_or(0),
        })
    };

    for doc in &docs {
        // ExperimentReport document
        if let Some(timings) = doc.get("timings").and_then(Json::as_array) {
            for t in timings {
                if let (Some(name), Some(summary)) =
                    (t.get("name").and_then(Json::as_str), summarize(t, "_ns"))
                {
                    push(name, summary);
                }
            }
        }
        // farm_stage NDJSON record
        if doc.get("record").and_then(Json::as_str) == Some("farm_stage") {
            if let (Some(name), Some(summary)) = (
                doc.get("stage").and_then(Json::as_str),
                summarize(doc, "_ns"),
            ) {
                push(name, summary);
            }
        }
        // metrics histogram dump line
        if doc.get("type").and_then(Json::as_str) == Some("histogram") {
            if let (Some(name), Some(summary)) =
                (doc.get("metric").and_then(Json::as_str), summarize(doc, ""))
            {
                push(name, summary);
            }
        }
    }

    if stages.is_empty() {
        return Err(CliError::Input(format!(
            "{}: no stage timings found (expected ExperimentReport timings, \
             farm_stage records or histogram metric lines)",
            path.display()
        )));
    }
    Ok(stages)
}

/// Tuning for [`diff`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative slack: a stage regresses when `new > old * (1 + pct/100)`.
    pub threshold_pct: f64,
    /// Absolute noise floor: deltas of at most this many ns never count.
    pub min_delta_ns: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            threshold_pct: 25.0,
            min_delta_ns: 10_000,
        }
    }
}

/// One quantile comparison inside a [`DiffReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Stage name.
    pub stage: String,
    /// `"p50"`, `"p95"` or `"p99"`.
    pub quantile: &'static str,
    /// Baseline value, ns.
    pub old_ns: u64,
    /// Candidate value, ns.
    pub new_ns: u64,
    /// Signed relative change, percent.
    pub delta_pct: f64,
    /// Whether this row trips the gate.
    pub regressed: bool,
}

/// The outcome of comparing two artifacts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// All compared rows (two per common stage).
    pub rows: Vec<DiffRow>,
    /// Stages present in only one file (name, which side).
    pub unmatched: Vec<(String, &'static str)>,
}

impl DiffReport {
    /// Whether any row regressed.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// An aligned human-readable table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>4} {:>14} {:>14} {:>9}  verdict",
            "stage", "q", "old (ns)", "new (ns)", "delta"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<24} {:>4} {:>14} {:>14} {:>+8.1}%  {}",
                r.stage,
                r.quantile,
                r.old_ns,
                r.new_ns,
                r.delta_pct,
                if r.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for (name, side) in &self.unmatched {
            let _ = writeln!(out, "{name:<24} (only in {side} file, skipped)");
        }
        out
    }
}

/// Compares per-stage `p50`/`p95` (and `p99`, when both artifacts carry
/// it) between a baseline and a candidate.
///
/// A quantile regresses when it grew by more than
/// [`DiffOptions::threshold_pct`] **and** by more than
/// [`DiffOptions::min_delta_ns`] (so nanosecond jitter on fast stages
/// cannot trip the gate). Improvements never fail.
///
/// # Errors
///
/// [`CliError::Input`] when either file is unreadable or carries no
/// timings; [`CliError::Gate`] is *not* returned here — callers check
/// [`DiffReport::regressed`] (the binary maps it to exit 1).
pub fn diff(old: &Path, new: &Path, opts: DiffOptions) -> Result<DiffReport, CliError> {
    let old_stages = load_stages(old)?;
    let new_stages = load_stages(new)?;
    let mut report = DiffReport::default();

    for (name, old_summary) in &old_stages {
        let Some((_, new_summary)) = new_stages.iter().find(|(n, _)| n == name) else {
            report.unmatched.push((name.clone(), "old"));
            continue;
        };
        let mut quantiles = vec![
            ("p50", old_summary.p50_ns, new_summary.p50_ns),
            ("p95", old_summary.p95_ns, new_summary.p95_ns),
        ];
        // tail rows only when both sides carry them, so archived
        // baselines written before p99/max keep diffing cleanly
        if let (Some(old_p99), Some(new_p99)) = (old_summary.p99_ns, new_summary.p99_ns) {
            quantiles.push(("p99", old_p99, new_p99));
        }
        for (quantile, old_ns, new_ns) in quantiles {
            let delta = new_ns as f64 - old_ns as f64;
            let delta_pct = if old_ns == 0 {
                if new_ns == 0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                delta / old_ns as f64 * 100.0
            };
            let regressed =
                delta_pct > opts.threshold_pct && new_ns.saturating_sub(old_ns) > opts.min_delta_ns;
            report.rows.push(DiffRow {
                stage: name.clone(),
                quantile,
                old_ns,
                new_ns,
                delta_pct,
                regressed,
            });
        }
    }
    for (name, _) in &new_stages {
        if !old_stages.iter().any(|(n, _)| n == name) {
            report.unmatched.push((name.clone(), "new"));
        }
    }
    Ok(report)
}

/// Event names the robustness layer emits: instrument-side fault
/// injection and recovery, plus farm-side supervision. `obsctl summary`
/// tallies these into its fault-health section.
pub const FAULT_EVENT_NAMES: &[&str] = &[
    "fault_injected",
    "measure_retry",
    "channel_quarantined",
    "channel_skipped",
    "watchdog_trip",
    "recovered",
    "scan_fault",
    "retry_wave",
    "breaker_state",
];

/// The fault/recovery event tally of one telemetry artifact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultHealth {
    /// `(event name, occurrences)` for every fault/recovery event
    /// present, in [`FAULT_EVENT_NAMES`] order.
    pub counts: Vec<(String, u64)>,
}

impl FaultHealth {
    /// Whether the artifact recorded no fault or recovery activity.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.counts.is_empty()
    }

    /// The section `summary` appends to its report.
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_quiet() {
            return "fault health: clean (no fault or recovery events)\n".to_owned();
        }
        let mut out = String::from("fault health:\n");
        for (name, count) in &self.counts {
            let _ = writeln!(out, "  {name:<20} {count}");
        }
        out
    }
}

/// Tallies the robustness layer's fault/recovery events in a trace.
#[must_use]
pub fn fault_health(trace: &Trace) -> FaultHealth {
    let all = trace.event_counts();
    let counts = FAULT_EVENT_NAMES
        .iter()
        .filter_map(|name| {
            all.iter()
                .find(|(n, _)| n == name)
                .map(|(n, c)| (n.clone(), *c))
        })
        .collect();
    FaultHealth { counts }
}

/// Event names the serve layer's self-healing path emits, in reporting
/// order: the shard lifecycle (down → failover → recovered) plus
/// scripted batcher stalls.
pub const SHARD_EVENT_NAMES: [&str; 4] =
    ["shard_down", "failover", "shard_recovered", "batcher_stall"];

/// The serve-resilience event tally of one telemetry artifact: shard
/// deaths, failovers off them, and supervised restarts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardHealthReport {
    /// `(event name, occurrences)` for every serve-resilience event
    /// present, in [`SHARD_EVENT_NAMES`] order.
    pub counts: Vec<(String, u64)>,
}

impl ShardHealthReport {
    /// Whether the artifact recorded no shard failures or failovers.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.counts.is_empty()
    }

    /// Occurrences of one event name (0 when absent).
    #[must_use]
    pub fn count(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, c)| c)
    }

    /// The section `summary` appends to its report.
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_quiet() {
            return "shard health: clean (no shard failures or failovers)\n".to_owned();
        }
        let mut out = String::from("shard health:\n");
        for (name, count) in &self.counts {
            let _ = writeln!(out, "  {name:<20} {count}");
        }
        out
    }
}

/// Tallies the serve layer's self-healing events in a trace.
#[must_use]
pub fn shard_health(trace: &Trace) -> ShardHealthReport {
    let all = trace.event_counts();
    let counts = SHARD_EVENT_NAMES
        .iter()
        .filter_map(|name| {
            all.iter()
                .find(|(n, _)| n == name)
                .map(|(n, c)| (n.clone(), *c))
        })
        .collect();
    ShardHealthReport { counts }
}

/// Event names the serve layer's result-cache path emits, in reporting
/// order: admission-time hits and misses plus in-flight coalescing.
pub const CACHE_EVENT_NAMES: [&str; 3] = ["cache_hit", "cache_miss", "coalesced"];

/// The result-cache event tally of one telemetry artifact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheReport {
    /// `(event name, occurrences)` for every cache event present, in
    /// [`CACHE_EVENT_NAMES`] order.
    pub counts: Vec<(String, u64)>,
}

impl CacheReport {
    /// Whether the artifact recorded no cache activity at all (caching
    /// off, or no repeated requests).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.counts.is_empty()
    }

    /// Occurrences of one event name (0 when absent).
    #[must_use]
    pub fn count(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, c)| c)
    }

    /// The section `summary` appends to its report.
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_quiet() {
            return "cache: quiet (no cache activity recorded)\n".to_owned();
        }
        let mut out = String::from("cache:\n");
        for (name, count) in &self.counts {
            let _ = writeln!(out, "  {name:<20} {count}");
        }
        out
    }
}

/// Tallies the serve layer's result-cache events in a trace. Uses the
/// complete event tally ([`Trace::all_event_counts`]): cache hits and
/// coalescing fire at admission time, often outside any request span,
/// and the span-attached tally would drop those nondeterministically.
#[must_use]
pub fn cache_report(trace: &Trace) -> CacheReport {
    let all = trace.all_event_counts();
    let counts = CACHE_EVENT_NAMES
        .iter()
        .filter_map(|name| {
            all.iter()
                .find(|(n, _)| n == name)
                .map(|(n, c)| (n.clone(), *c))
        })
        .collect();
    CacheReport { counts }
}

/// Parses a telemetry NDJSON artifact into a [`Trace`] and renders the
/// span-tree summary plus a fault-health section, gating on artifact
/// health.
///
/// # Errors
///
/// [`CliError::Gate`] when the span tree is empty or the trace sequence
/// has gaps; [`CliError::Input`] on unreadable/unparsable files.
pub fn summary(path: &Path) -> Result<String, CliError> {
    let trace = load_trace(path)?;
    if trace.span_count() == 0 {
        return Err(CliError::Gate(format!(
            "{}: span tree is empty ({} trace records, {} non-trace lines)",
            path.display(),
            trace.trace_records,
            trace.skipped_records
        )));
    }
    if !trace.seq_gaps.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: trace sequence has {} gap(s): {:?}",
            path.display(),
            trace.seq_gaps.len(),
            trace.seq_gaps
        )));
    }
    let mut out = trace.render_summary();
    out.push_str(&fault_health(&trace).render());
    out.push_str(&shard_health(&trace).render());
    out.push_str(&cache_report(&trace).render());
    Ok(out)
}

/// Folded-stack flamegraph lines for a telemetry NDJSON artifact.
///
/// # Errors
///
/// [`CliError::Gate`] when no spans reconstruct (nothing to graph);
/// [`CliError::Input`] on unreadable/unparsable files.
pub fn flame(path: &Path) -> Result<String, CliError> {
    let trace = load_trace(path)?;
    let folded = trace.folded_stacks();
    if folded.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: no spans to graph",
            path.display()
        )));
    }
    Ok(folded)
}

/// The gates [`trace_request`] and [`trace_request_json`] share: a
/// healthy sequence, a present and non-orphaned request, closed owners.
fn request_paths_checked<'t>(
    trace: &'t Trace,
    path: &Path,
    request: u64,
) -> Result<Vec<Vec<&'t canti_obs::SpanNode>>, CliError> {
    if !trace.seq_gaps.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: trace sequence has {} gap(s): {:?}",
            path.display(),
            trace.seq_gaps.len(),
            trace.seq_gaps
        )));
    }
    let paths = trace.request_paths(request);
    if paths.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: no span carries request {request} ({} spans total)",
            path.display(),
            trace.span_count()
        )));
    }
    let owners: Vec<&canti_obs::SpanNode> = paths
        .iter()
        .map(|p| *p.last().expect("request path is never empty"))
        .collect();
    if let Some(open) = owners.iter().find(|s| s.dur_ns.is_none()) {
        return Err(CliError::Gate(format!(
            "{}: span '{}' (seq {}) owning request {request} never closed",
            path.display(),
            open.name,
            open.seq
        )));
    }
    if !owners.iter().any(|s| s.name == "request") {
        return Err(CliError::Gate(format!(
            "{}: request {request} is orphaned — {} span(s) executed on \
             its behalf but no admission-side 'request' span exists",
            path.display(),
            owners.len()
        )));
    }
    Ok(paths)
}

/// Reconstructs one request's span chain from a serve telemetry
/// artifact: the admission-side `request` span plus every farm `job`
/// span that executed on its behalf, each with its ancestry path, then
/// the critical path under the slowest owning span.
///
/// # Errors
///
/// [`CliError::Gate`] when the artifact is unhealthy for this request —
/// the trace sequence has gaps, no span carries the request id, the
/// request is orphaned (farm spans reference it but no admission-side
/// `request` span exists), or an owning span never closed.
/// [`CliError::Input`] on unreadable/unparsable files.
pub fn trace_request(path: &Path, request: u64) -> Result<String, CliError> {
    let trace = load_trace(path)?;
    let paths = request_paths_checked(&trace, path, request)?;
    let owners: Vec<&canti_obs::SpanNode> = paths
        .iter()
        .map(|p| *p.last().expect("request path is never empty"))
        .collect();

    let trace_id = owners.iter().find_map(|s| s.trace_id);
    let mut out = String::new();
    match trace_id {
        Some(id) => {
            let _ = writeln!(
                out,
                "request {request}: trace {id:#018x}, {} owning span(s)",
                owners.len()
            );
        }
        None => {
            let _ = writeln!(out, "request {request}: {} owning span(s)", owners.len());
        }
    }
    for p in &paths {
        let owner = p.last().expect("non-empty");
        let chain: Vec<&str> = p.iter().map(|s| s.name.as_str()).collect();
        let _ = writeln!(
            out,
            "  {} [{} ns] ({} events)",
            chain.join(" -> "),
            owner.duration_ns(),
            owner.events.len()
        );
    }
    let slowest = owners
        .iter()
        .max_by_key(|s| s.duration_ns())
        .expect("at least one owning span");
    let critical: Vec<String> = slowest
        .critical_path()
        .iter()
        .map(|s| format!("{} ({} ns)", s.name, s.duration_ns()))
        .collect();
    let _ = writeln!(out, "critical path: {}", critical.join(" -> "));
    Ok(out)
}

/// Recomputes deterministic SLO windows offline from the closed
/// admission-side `request` spans in a telemetry artifact: each span's
/// duration is its latency, judged against `config.objective_ns` and
/// bucketed by its end time into `config.window_ns`-wide windows — the
/// same pure function of `(latency, clock)` the live tracker applies,
/// so a virtual-clock artifact reproduces `/debug/slo` exactly.
///
/// # Errors
///
/// [`CliError::Gate`] when the artifact holds no closed `request`
/// spans (nothing to aggregate — the serve run came untraced);
/// [`CliError::Input`] on unreadable/unparsable files.
pub fn slo_report(path: &Path, config: canti_obs::SloConfig) -> Result<String, CliError> {
    use canti_obs::WindowCounts;
    use std::collections::BTreeMap;

    let trace = load_trace(path)?;
    fn collect<'t>(node: &'t canti_obs::SpanNode, out: &mut Vec<&'t canti_obs::SpanNode>) {
        if node.name == "request" && node.request.is_some() && node.dur_ns.is_some() {
            out.push(node);
        }
        for child in &node.children {
            collect(child, out);
        }
    }
    let mut samples = Vec::new();
    for root in &trace.roots {
        collect(root, &mut samples);
    }
    if samples.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: no closed 'request' spans to aggregate ({} spans total)",
            path.display(),
            trace.span_count()
        )));
    }

    let mut windows: BTreeMap<u64, WindowCounts> = BTreeMap::new();
    let (mut good_total, mut breached_total) = (0u64, 0u64);
    for span in &samples {
        let latency_ns = span.duration_ns();
        let end_ns = span.start_ns + latency_ns;
        let index = config.window_index(end_ns);
        let slot = windows.entry(index).or_insert(WindowCounts {
            index,
            good: 0,
            breached: 0,
        });
        if latency_ns <= config.objective_ns {
            slot.good += 1;
            good_total += 1;
        } else {
            slot.breached += 1;
            breached_total += 1;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "slo (offline, {} request span(s)): objective={} ns window={} ns \
         good={good_total} breached={breached_total}",
        samples.len(),
        config.objective_ns,
        config.width(),
    );
    for w in windows.values() {
        let _ = writeln!(
            out,
            "  window {} [t={} ns): good={} breached={} breach={:.3}",
            w.index,
            w.index * config.width(),
            w.good,
            w.breached,
            w.breach_fraction()
        );
    }
    Ok(out)
}

fn load_trace(path: &Path) -> Result<Trace, CliError> {
    let text = read_file(path)?;
    Trace::from_ndjson(&text).map_err(|e| CliError::Input(format!("{}: {e}", path.display())))
}

/// Machine-readable [`summary`]: the same artifact-health gates, but
/// fixed-field NDJSON output — one `trace_health` line, one `stage`
/// line per span name, one `critical` line per critical-path hop, one
/// `fault` line per fault/recovery event present.
///
/// # Errors
///
/// Identical to [`summary`].
pub fn summary_json(path: &Path) -> Result<String, CliError> {
    use canti_obs::ndjson::{self, JsonValue};

    let trace = load_trace(path)?;
    if trace.span_count() == 0 {
        return Err(CliError::Gate(format!(
            "{}: span tree is empty ({} trace records, {} non-trace lines)",
            path.display(),
            trace.trace_records,
            trace.skipped_records
        )));
    }
    if !trace.seq_gaps.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: trace sequence has {} gap(s): {:?}",
            path.display(),
            trace.seq_gaps.len(),
            trace.seq_gaps
        )));
    }

    let mut out = String::new();
    out.push_str(&ndjson::object(&[
        ("record", JsonValue::from("trace_health")),
        ("spans", JsonValue::from(trace.span_count())),
        ("trace_records", JsonValue::from(trace.trace_records)),
        ("skipped_records", JsonValue::from(trace.skipped_records)),
    ]));
    out.push('\n');
    for (stage, stats) in trace.stage_stats() {
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("stage")),
            ("stage", JsonValue::from(stage)),
            ("count", JsonValue::U64(stats.count)),
            ("sum_ns", JsonValue::U64(stats.sum_ns)),
            ("min_ns", JsonValue::U64(stats.min_ns)),
            ("max_ns", JsonValue::U64(stats.max_ns)),
        ]));
        out.push('\n');
    }
    for (depth, span) in trace.critical_path().iter().enumerate() {
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("critical")),
            ("depth", JsonValue::from(depth)),
            ("span", JsonValue::from(span.name.as_str())),
            ("dur_ns", JsonValue::U64(span.duration_ns())),
        ]));
        out.push('\n');
    }
    for (name, count) in fault_health(&trace).counts {
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("fault")),
            ("name", JsonValue::from(name)),
            ("count", JsonValue::U64(count)),
        ]));
        out.push('\n');
    }
    for (name, count) in shard_health(&trace).counts {
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("shard")),
            ("name", JsonValue::from(name)),
            ("count", JsonValue::U64(count)),
        ]));
        out.push('\n');
    }
    for (name, count) in cache_report(&trace).counts {
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("cache")),
            ("name", JsonValue::from(name)),
            ("count", JsonValue::U64(count)),
        ]));
        out.push('\n');
    }
    Ok(out)
}

/// Machine-readable [`trace_request`]: the same gates, fixed-field
/// NDJSON output — one `request` line, one `owning_span` line per
/// ancestry path, one `critical` line per critical-path hop.
///
/// # Errors
///
/// Identical to [`trace_request`].
pub fn trace_request_json(path: &Path, request: u64) -> Result<String, CliError> {
    use canti_obs::ndjson::{self, JsonValue};

    let trace = load_trace(path)?;
    let paths = request_paths_checked(&trace, path, request)?;
    let owners: Vec<&canti_obs::SpanNode> = paths
        .iter()
        .map(|p| *p.last().expect("request path is never empty"))
        .collect();

    let mut out = String::new();
    let mut header: Vec<(&str, JsonValue)> = vec![
        ("record", JsonValue::from("request")),
        ("request", JsonValue::U64(request)),
    ];
    if let Some(id) = owners.iter().find_map(|s| s.trace_id) {
        header.push(("trace", JsonValue::U64(id)));
    }
    header.push(("owners", JsonValue::from(owners.len())));
    out.push_str(&ndjson::object(&header));
    out.push('\n');
    for p in &paths {
        let owner = p.last().expect("non-empty");
        let chain: Vec<&str> = p.iter().map(|s| s.name.as_str()).collect();
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("owning_span")),
            ("chain", JsonValue::from(chain.join(" -> "))),
            ("dur_ns", JsonValue::U64(owner.duration_ns())),
            ("events", JsonValue::from(owner.events.len())),
        ]));
        out.push('\n');
    }
    let slowest = owners
        .iter()
        .max_by_key(|s| s.duration_ns())
        .expect("at least one owning span");
    for (depth, span) in slowest.critical_path().iter().enumerate() {
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("critical")),
            ("depth", JsonValue::from(depth)),
            ("span", JsonValue::from(span.name.as_str())),
            ("dur_ns", JsonValue::U64(span.duration_ns())),
        ]));
        out.push('\n');
    }
    Ok(out)
}

/// One per-window point of a timeline series, as parsed back from a
/// `/debug/timeline` artifact line (`min` is 0 for an empty window,
/// matching the emission side's `min_or_zero`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Window index (`t_ns / window_ns`).
    pub window: u64,
    /// Observations folded into this window.
    pub count: u64,
    /// Saturating sum of the observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

/// One `(shard, series)` section of a timeline artifact, points in
/// ascending window order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSeries {
    /// Shard label — `"merged"` for the cross-shard fold.
    pub shard: String,
    /// Series name, e.g. `serve.admitted`.
    pub name: String,
    /// `"delta"` (additive, shard-merge invariant) or `"sample"`.
    pub kind: String,
    /// The per-window points.
    pub points: Vec<TimelinePoint>,
}

impl TimelineSeries {
    /// Total observation count across the retained windows.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.points
            .iter()
            .fold(0u64, |acc, p| acc.saturating_add(p.count))
    }

    /// Total observed sum across the retained windows.
    #[must_use]
    pub fn total_sum(&self) -> u64 {
        self.points
            .iter()
            .fold(0u64, |acc, p| acc.saturating_add(p.sum))
    }
}

/// A parsed `/debug/timeline` NDJSON artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineArtifact {
    /// Window width on the producer's clock, ns.
    pub window_ns: u64,
    /// Retention limit per series (newest windows win).
    pub max_windows: u64,
    /// Every `(shard, series)` section, in artifact order.
    pub series: Vec<TimelineSeries>,
}

impl TimelineArtifact {
    /// The section for `(shard, name)`, if the artifact carries it.
    #[must_use]
    pub fn section(&self, shard: &str, name: &str) -> Option<&TimelineSeries> {
        self.series
            .iter()
            .find(|s| s.shard == shard && s.name == name)
    }
}

/// Parses a `/debug/timeline` NDJSON artifact: one `timeline_config`
/// record (the first wins) plus `timeline` point records. Lines of
/// other record types ride along untouched, so a combined artifact
/// still loads. A `timeline` record without a `shard` field (a bare
/// `TimelineRecorder::to_ndjson` dump) lands under shard `"0"`.
///
/// # Errors
///
/// [`CliError::Input`] when the file is unreadable/unparsable, lacks a
/// `timeline_config` record, holds no `timeline` records, or a
/// `timeline` record is missing a required field.
pub fn load_timeline(path: &Path) -> Result<TimelineArtifact, CliError> {
    let text = read_file(path)?;
    let docs =
        parse_ndjson(&text).map_err(|e| CliError::Input(format!("{}: {e}", path.display())))?;

    let mut config: Option<(u64, u64)> = None;
    let mut series: Vec<TimelineSeries> = Vec::new();
    for (i, doc) in docs.iter().enumerate() {
        match doc.get("record").and_then(Json::as_str) {
            Some("timeline_config") if config.is_none() => {
                let window_ns = doc.get("window_ns").and_then(Json::as_u64);
                let max_windows = doc.get("max_windows").and_then(Json::as_u64);
                match (window_ns, max_windows) {
                    (Some(w), Some(m)) if w > 0 => config = Some((w, m.max(1))),
                    _ => {
                        return Err(CliError::Input(format!(
                            "{}: line {}: malformed timeline_config record",
                            path.display(),
                            i + 1
                        )));
                    }
                }
            }
            Some("timeline_config") => {}
            Some("timeline") => {
                let field = |key: &str| -> Result<u64, CliError> {
                    doc.get(key).and_then(Json::as_u64).ok_or_else(|| {
                        CliError::Input(format!(
                            "{}: line {}: timeline record is missing {key:?}",
                            path.display(),
                            i + 1
                        ))
                    })
                };
                let Some(name) = doc.get("series").and_then(Json::as_str) else {
                    return Err(CliError::Input(format!(
                        "{}: line {}: timeline record is missing \"series\"",
                        path.display(),
                        i + 1
                    )));
                };
                let shard = doc.get("shard").and_then(Json::as_str).unwrap_or("0");
                let kind = doc.get("kind").and_then(Json::as_str).unwrap_or("delta");
                let point = TimelinePoint {
                    window: field("window")?,
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                };
                match series
                    .iter_mut()
                    .find(|s| s.shard == shard && s.name == name)
                {
                    Some(existing) => existing.points.push(point),
                    None => series.push(TimelineSeries {
                        shard: shard.to_owned(),
                        name: name.to_owned(),
                        kind: kind.to_owned(),
                        points: vec![point],
                    }),
                }
            }
            _ => {}
        }
    }

    let Some((window_ns, max_windows)) = config else {
        return Err(CliError::Input(format!(
            "{}: no timeline_config record (is this a /debug/timeline artifact?)",
            path.display()
        )));
    };
    if series.is_empty() {
        return Err(CliError::Input(format!(
            "{}: no timeline records",
            path.display()
        )));
    }
    for s in &mut series {
        s.points.sort_by_key(|p| p.window);
    }
    Ok(TimelineArtifact {
        window_ns,
        max_windows,
        series,
    })
}

/// What [`timeline_report`] shows and in which format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineOptions {
    /// Shard section to render (`"merged"` for the cross-shard fold).
    pub shard: String,
    /// Series-name filter; empty means every series of the shard.
    pub series: Vec<String>,
    /// Emit fixed-field NDJSON instead of tables.
    pub json: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        Self {
            shard: "0".to_owned(),
            series: Vec::new(),
            json: false,
        }
    }
}

/// One sparkline glyph per recorded window, count-scaled to the
/// series' busiest window.
fn sparkline(points: &[TimelinePoint]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = points.iter().map(|p| p.count).max().unwrap_or(0);
    points
        .iter()
        .map(|p| {
            if max == 0 || p.count == 0 {
                GLYPHS[0]
            } else {
                // ceil-scaled so any activity clears the baseline glyph
                let level = p.count.saturating_mul(7).div_ceil(max);
                GLYPHS[level.min(7) as usize]
            }
        })
        .collect()
}

/// Renders the selected shard's per-window series from a
/// `/debug/timeline` artifact — a table plus count sparkline per
/// series, or fixed-field NDJSON with `--json`. With `spans`, also
/// recomputes the request-latency windows offline from the closed
/// `request` spans in that telemetry artifact and cross-checks them
/// against the live `serve.request_latency_ns` section, the same way
/// [`slo_report`] audits `/debug/slo`.
///
/// # Errors
///
/// [`CliError::Gate`] when nothing matches the shard/series selection,
/// or when the offline recompute disagrees with the live windows;
/// [`CliError::Input`] on unreadable/unparsable files.
pub fn timeline_report(
    path: &Path,
    spans: Option<&Path>,
    opts: &TimelineOptions,
) -> Result<String, CliError> {
    use canti_obs::ndjson::{self, JsonValue};

    let artifact = load_timeline(path)?;
    let selected: Vec<&TimelineSeries> = artifact
        .series
        .iter()
        .filter(|s| s.shard == opts.shard)
        .filter(|s| opts.series.is_empty() || opts.series.contains(&s.name))
        .collect();
    if selected.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: no timeline series match shard {:?}{}",
            path.display(),
            opts.shard,
            if opts.series.is_empty() {
                String::new()
            } else {
                format!(" and series filter {:?}", opts.series)
            }
        )));
    }

    let mut out = String::new();
    if opts.json {
        out.push_str(&ndjson::object(&[
            ("record", JsonValue::from("timeline_config")),
            ("window_ns", JsonValue::U64(artifact.window_ns)),
            ("max_windows", JsonValue::U64(artifact.max_windows)),
        ]));
        out.push('\n');
        for s in &selected {
            for p in &s.points {
                out.push_str(&ndjson::object(&[
                    ("record", JsonValue::from("timeline")),
                    ("shard", JsonValue::from(s.shard.as_str())),
                    ("series", JsonValue::from(s.name.as_str())),
                    ("kind", JsonValue::from(s.kind.as_str())),
                    ("window", JsonValue::U64(p.window)),
                    (
                        "t_ns",
                        JsonValue::U64(p.window.saturating_mul(artifact.window_ns)),
                    ),
                    ("count", JsonValue::U64(p.count)),
                    ("sum", JsonValue::U64(p.sum)),
                    ("min", JsonValue::U64(p.min)),
                    ("max", JsonValue::U64(p.max)),
                ]));
                out.push('\n');
            }
        }
    } else {
        let _ = writeln!(
            out,
            "timeline: window={} ns, {} window(s) retained, shard {:?}, {} series",
            artifact.window_ns,
            artifact.max_windows,
            opts.shard,
            selected.len()
        );
        for s in &selected {
            let _ = writeln!(
                out,
                "{} ({}): {} window(s) count={} sum={}  {}",
                s.name,
                s.kind,
                s.points.len(),
                s.total_count(),
                s.total_sum(),
                sparkline(&s.points)
            );
            for p in &s.points {
                let mean = p.sum.checked_div(p.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  window {} [t={} ns): count={} sum={} mean={} min={} max={}",
                    p.window,
                    p.window.saturating_mul(artifact.window_ns),
                    p.count,
                    p.sum,
                    mean,
                    p.min,
                    p.max
                );
            }
        }
    }

    if let Some(spans_path) = spans {
        out.push_str(&timeline_crosscheck(
            &artifact,
            &opts.shard,
            path,
            spans_path,
            opts.json,
        )?);
    }
    Ok(out)
}

/// Recomputes the per-window request-latency series offline from the
/// closed `request` spans of a telemetry artifact and compares it to
/// the live `serve.request_latency_ns` section, window by window.
/// Expired requests are excluded (their spans close without a latency
/// contribution), matching the serve layer's recording rule.
fn timeline_crosscheck(
    artifact: &TimelineArtifact,
    shard: &str,
    artifact_path: &Path,
    spans_path: &Path,
    json: bool,
) -> Result<String, CliError> {
    use canti_obs::ndjson::{self, JsonValue};
    use std::collections::{BTreeMap, BTreeSet};

    let Some(live) = artifact.section(shard, "serve.request_latency_ns") else {
        return Err(CliError::Gate(format!(
            "{}: shard {:?} has no serve.request_latency_ns series to cross-check",
            artifact_path.display(),
            shard
        )));
    };

    let text = read_file(spans_path)?;
    let docs = parse_ndjson(&text)
        .map_err(|e| CliError::Input(format!("{}: {e}", spans_path.display())))?;
    let mut expired: BTreeSet<u64> = BTreeSet::new();
    for doc in &docs {
        if doc.get("kind").and_then(Json::as_str) == Some("event")
            && doc.get("name").and_then(Json::as_str) == Some("request_expired")
        {
            if let Some(r) = doc
                .get("fields")
                .and_then(|f| f.get("request"))
                .and_then(Json::as_u64)
            {
                expired.insert(r);
            }
        }
    }

    let trace = Trace::from_docs(&docs);
    fn collect<'t>(node: &'t canti_obs::SpanNode, out: &mut Vec<&'t canti_obs::SpanNode>) {
        if node.name == "request" && node.request.is_some() && node.dur_ns.is_some() {
            out.push(node);
        }
        for child in &node.children {
            collect(child, out);
        }
    }
    let mut samples = Vec::new();
    for root in &trace.roots {
        collect(root, &mut samples);
    }
    samples.retain(|s| !expired.contains(&s.request.expect("filtered on request")));
    if samples.is_empty() {
        return Err(CliError::Gate(format!(
            "{}: no closed non-expired 'request' spans to recompute from",
            spans_path.display()
        )));
    }

    let mut windows: BTreeMap<u64, TimelinePoint> = BTreeMap::new();
    for span in &samples {
        let latency_ns = span.duration_ns();
        let end_ns = span.start_ns.saturating_add(latency_ns);
        let index = end_ns / artifact.window_ns.max(1);
        let slot = windows.entry(index).or_insert(TimelinePoint {
            window: index,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        });
        slot.count = slot.count.saturating_add(1);
        slot.sum = slot.sum.saturating_add(latency_ns);
        slot.min = slot.min.min(latency_ns);
        slot.max = slot.max.max(latency_ns);
    }
    // the live recorder retains only the newest max_windows windows
    while windows.len() as u64 > artifact.max_windows {
        windows.pop_first();
    }
    let recomputed: Vec<TimelinePoint> = windows
        .into_values()
        .map(|mut p| {
            if p.min == u64::MAX {
                p.min = 0;
            }
            p
        })
        .collect();

    if recomputed != live.points {
        let detail = recomputed
            .iter()
            .zip(&live.points)
            .find(|(r, l)| r != l)
            .map_or_else(
                || {
                    format!(
                        "{} recomputed window(s) vs {} live",
                        recomputed.len(),
                        live.points.len()
                    )
                },
                |(r, l)| format!("first divergence: recomputed {r:?} vs live {l:?}"),
            );
        return Err(CliError::Gate(format!(
            "{}: offline recompute from {} disagrees with live \
             serve.request_latency_ns windows ({detail})",
            artifact_path.display(),
            spans_path.display()
        )));
    }

    if json {
        let mut line = ndjson::object(&[
            ("record", JsonValue::from("timeline_crosscheck")),
            ("shard", JsonValue::from(shard)),
            ("requests", JsonValue::from(samples.len())),
            ("windows", JsonValue::from(recomputed.len())),
            ("verdict", JsonValue::from("match")),
        ]);
        line.push('\n');
        Ok(line)
    } else {
        Ok(format!(
            "offline recompute ({}): {} request span(s), {} window(s) — \
             matches live serve.request_latency_ns\n",
            spans_path.display(),
            samples.len(),
            recomputed.len()
        ))
    }
}

/// Tuning for [`anomaly`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyOptions {
    /// Relative slack: a series is anomalous when its total count
    /// drifted (either direction) by more than this percentage.
    pub threshold_pct: f64,
    /// Shard section to compare — the merged fold by default, so the
    /// verdict does not depend on how requests happened to shard.
    pub shard: String,
    /// Series to compare; empty means every series present in either
    /// artifact's shard section. A named series missing on either side
    /// is itself an anomaly.
    pub series: Vec<String>,
}

impl Default for AnomalyOptions {
    fn default() -> Self {
        Self {
            threshold_pct: 25.0,
            shard: "merged".to_owned(),
            series: Vec::new(),
        }
    }
}

/// One series comparison inside an [`AnomalyReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyRow {
    /// Series name.
    pub series: String,
    /// Baseline total count.
    pub baseline: u64,
    /// Current total count.
    pub current: u64,
    /// Absolute relative drift, percent.
    pub drift_pct: f64,
    /// Whether this row trips the gate.
    pub anomalous: bool,
}

/// The outcome of comparing a timeline artifact against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnomalyReport {
    /// All compared series.
    pub rows: Vec<AnomalyRow>,
    /// Series present on only one side: `(name, missing side)` where
    /// the side is `"baseline"` or `"current"`.
    pub missing: Vec<(String, &'static str)>,
}

impl AnomalyReport {
    /// Whether any series drifted beyond the threshold or went missing.
    #[must_use]
    pub fn anomalous(&self) -> bool {
        !self.missing.is_empty() || self.rows.iter().any(|r| r.anomalous)
    }

    /// An aligned human-readable table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>9}  verdict",
            "series", "baseline", "current", "drift"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>12} {:>8.1}%  {}",
                r.series,
                r.baseline,
                r.current,
                r.drift_pct,
                if r.anomalous { "ANOMALOUS" } else { "ok" }
            );
        }
        for (name, side) in &self.missing {
            let _ = writeln!(out, "{name:<28} missing in {side}  ANOMALOUS");
        }
        out
    }
}

/// Compares the per-series total observation counts of a current
/// `/debug/timeline` artifact against an archived baseline.
///
/// Counts — not sums — carry the verdict: on a wall clock the nanosecond
/// sums jitter run to run, while the number of admissions, completions
/// and expiries of a scripted smoke run is stable. Drift in **either**
/// direction beyond [`AnomalyOptions::threshold_pct`] is anomalous (a
/// vanished series is a worse regression than a slow one), as is a
/// series present on only one side.
///
/// # Errors
///
/// [`CliError::Gate`] when the shard/series selection matches nothing
/// at all; [`CliError::Input`] on unreadable/unparsable artifacts.
/// Drift itself is *not* an error — callers check
/// [`AnomalyReport::anomalous`] (the binary maps it to exit 1).
pub fn anomaly(
    current: &Path,
    baseline: &Path,
    opts: &AnomalyOptions,
) -> Result<AnomalyReport, CliError> {
    let cur = load_timeline(current)?;
    let base = load_timeline(baseline)?;

    let names: Vec<String> = if opts.series.is_empty() {
        let mut names: Vec<String> = cur
            .series
            .iter()
            .chain(&base.series)
            .filter(|s| s.shard == opts.shard)
            .map(|s| s.name.clone())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    } else {
        opts.series.clone()
    };
    if names.is_empty() {
        return Err(CliError::Gate(format!(
            "neither {} nor {} has timeline series for shard {:?}",
            current.display(),
            baseline.display(),
            opts.shard
        )));
    }

    let mut report = AnomalyReport::default();
    for name in names {
        let cur_total = cur
            .section(&opts.shard, &name)
            .map(TimelineSeries::total_count);
        let base_total = base
            .section(&opts.shard, &name)
            .map(TimelineSeries::total_count);
        match (base_total, cur_total) {
            (None, None) => {
                report.missing.push((name.clone(), "baseline"));
                report.missing.push((name, "current"));
            }
            (None, Some(_)) => report.missing.push((name, "baseline")),
            (Some(_), None) => report.missing.push((name, "current")),
            (Some(b), Some(c)) => {
                let drift_pct = if b == 0 {
                    if c == 0 {
                        0.0
                    } else {
                        100.0
                    }
                } else {
                    (c as f64 - b as f64).abs() / b as f64 * 100.0
                };
                report.rows.push(AnomalyRow {
                    series: name,
                    baseline: b,
                    current: c,
                    drift_pct,
                    anomalous: drift_pct > opts.threshold_pct,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("obsctl-unit-{name}-{}", std::process::id()));
        std::fs::write(&path, content).expect("write temp fixture");
        path
    }

    #[test]
    fn load_stages_reads_all_three_shapes() {
        let report = write_temp(
            "report",
            r#"{"timings": [{"name": "solve", "count": 5, "sum_ns": 50, "min_ns": 1, "max_ns": 20, "p50_ns": 10, "p95_ns": 20, "p99_ns": 20}]}"#,
        );
        let stages = load_stages(&report).unwrap();
        assert_eq!(
            stages,
            vec![(
                "solve".to_owned(),
                StageSummary {
                    p50_ns: 10,
                    p95_ns: 20,
                    p99_ns: Some(20),
                    max_ns: Some(20),
                    count: 5
                }
            )]
        );

        let ndjson = write_temp(
            "ndjson",
            "{\"record\":\"farm_stage\",\"stage\":\"queue_wait\",\"count\":4,\"sum_ns\":40,\"p50_ns\":9,\"p95_ns\":11,\"max_ns\":12}\n\
             {\"metric\":\"farm.solve_ns\",\"type\":\"histogram\",\"count\":4,\"sum\":40,\"min\":1,\"max\":30,\"p50\":8,\"p95\":30,\"p99\":30}\n",
        );
        let stages = load_stages(&ndjson).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "queue_wait");
        // a legacy record without p99 still loads, with the tail absent
        assert_eq!((stages[0].1.p99_ns, stages[0].1.max_ns), (None, Some(12)));
        assert_eq!(stages[1].0, "farm.solve_ns");
        assert_eq!(stages[1].1.p95_ns, 30);
        assert_eq!(stages[1].1.p99_ns, Some(30));
    }

    #[test]
    fn summary_reports_fault_health() {
        let artifact = write_temp(
            "fault-health",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"scan\"}\n\
             {\"seq\":1,\"t_ns\":1,\"kind\":\"event\",\"name\":\"fault_injected\"}\n\
             {\"seq\":2,\"t_ns\":2,\"kind\":\"event\",\"name\":\"measure_retry\"}\n\
             {\"seq\":3,\"t_ns\":3,\"kind\":\"event\",\"name\":\"measure_retry\"}\n\
             {\"seq\":4,\"t_ns\":4,\"kind\":\"event\",\"name\":\"channel_quarantined\"}\n\
             {\"seq\":5,\"t_ns\":5,\"kind\":\"span_end\",\"name\":\"scan\",\"dur_ns\":5}\n",
        );
        let text = summary(&artifact).unwrap();
        assert!(text.contains("fault health:"), "{text}");
        assert!(text.contains("fault_injected       1"), "{text}");
        assert!(text.contains("measure_retry        2"), "{text}");
        assert!(text.contains("channel_quarantined  1"), "{text}");
    }

    #[test]
    fn clean_trace_reports_quiet_fault_health() {
        let artifact = write_temp(
            "fault-quiet",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"scan\"}\n\
             {\"seq\":1,\"t_ns\":9,\"kind\":\"span_end\",\"name\":\"scan\",\"dur_ns\":9}\n",
        );
        let text = summary(&artifact).unwrap();
        assert!(
            text.contains("fault health: clean"),
            "a fault-free artifact must say so: {text}"
        );
    }

    #[test]
    fn summary_reports_shard_health() {
        let artifact = write_temp(
            "shard-health",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"serve_batch\"}\n\
             {\"seq\":1,\"t_ns\":1,\"kind\":\"event\",\"name\":\"shard_down\",\"fields\":{\"batch\":0}}\n\
             {\"seq\":2,\"t_ns\":2,\"kind\":\"event\",\"name\":\"failover\",\"fields\":{\"request\":7,\"from\":1,\"to\":0}}\n\
             {\"seq\":3,\"t_ns\":3,\"kind\":\"event\",\"name\":\"failover\",\"fields\":{\"request\":9,\"from\":1,\"to\":0}}\n\
             {\"seq\":4,\"t_ns\":4,\"kind\":\"event\",\"name\":\"shard_recovered\",\"fields\":{\"restarts\":1}}\n\
             {\"seq\":5,\"t_ns\":5,\"kind\":\"span_end\",\"name\":\"serve_batch\",\"dur_ns\":5}\n",
        );
        let text = summary(&artifact).unwrap();
        assert!(text.contains("shard health:"), "{text}");
        assert!(text.contains("shard_down           1"), "{text}");
        assert!(text.contains("failover             2"), "{text}");
        assert!(text.contains("shard_recovered      1"), "{text}");

        let report = shard_health(&load_trace(&artifact).unwrap());
        assert!(!report.is_quiet());
        assert_eq!(report.count("failover"), 2);
        assert_eq!(report.count("batcher_stall"), 0, "absent reads as zero");

        let json = summary_json(&artifact).unwrap();
        assert!(
            json.contains("{\"record\":\"shard\",\"name\":\"failover\",\"count\":2}"),
            "{json}"
        );
    }

    #[test]
    fn clean_trace_reports_quiet_shard_health() {
        let artifact = write_temp(
            "shard-quiet",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"scan\"}\n\
             {\"seq\":1,\"t_ns\":9,\"kind\":\"span_end\",\"name\":\"scan\",\"dur_ns\":9}\n",
        );
        let text = summary(&artifact).unwrap();
        assert!(
            text.contains("shard health: clean"),
            "a failure-free artifact must say so: {text}"
        );
        assert!(shard_health(&load_trace(&artifact).unwrap()).is_quiet());
    }

    #[test]
    fn summary_reports_cache_activity() {
        let artifact = write_temp(
            "cache-activity",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"serve_batch\"}\n\
             {\"seq\":1,\"t_ns\":1,\"kind\":\"event\",\"name\":\"cache_miss\",\"fields\":{\"kind\":\"probe\"}}\n\
             {\"seq\":2,\"t_ns\":2,\"kind\":\"event\",\"name\":\"coalesced\",\"fields\":{\"request\":2,\"leader\":1}}\n\
             {\"seq\":3,\"t_ns\":3,\"kind\":\"event\",\"name\":\"cache_hit\",\"fields\":{\"request\":3,\"kind\":\"probe\"}}\n\
             {\"seq\":4,\"t_ns\":4,\"kind\":\"event\",\"name\":\"cache_hit\",\"fields\":{\"request\":4,\"kind\":\"probe\"}}\n\
             {\"seq\":5,\"t_ns\":5,\"kind\":\"span_end\",\"name\":\"serve_batch\",\"dur_ns\":5}\n\
             {\"seq\":6,\"t_ns\":6,\"kind\":\"event\",\"name\":\"cache_hit\",\"fields\":{\"request\":5,\"kind\":\"probe\"}}\n",
        );
        let text = summary(&artifact).unwrap();
        assert!(text.contains("cache:"), "{text}");
        // the seq-6 hit fired outside any span and must still be counted
        assert!(text.contains("cache_hit            3"), "{text}");
        assert!(text.contains("cache_miss           1"), "{text}");
        assert!(text.contains("coalesced            1"), "{text}");

        let report = cache_report(&load_trace(&artifact).unwrap());
        assert!(!report.is_quiet());
        assert_eq!(report.count("cache_hit"), 3);
        assert_eq!(report.count("cache_miss"), 1);
        assert_eq!(report.count("coalesced"), 1);

        let json = summary_json(&artifact).unwrap();
        assert!(
            json.contains("{\"record\":\"cache\",\"name\":\"cache_hit\",\"count\":3}"),
            "{json}"
        );
        assert!(
            json.contains("{\"record\":\"cache\",\"name\":\"coalesced\",\"count\":1}"),
            "{json}"
        );
    }

    #[test]
    fn uncached_trace_reports_quiet_cache() {
        let artifact = write_temp(
            "cache-quiet",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"scan\"}\n\
             {\"seq\":1,\"t_ns\":9,\"kind\":\"span_end\",\"name\":\"scan\",\"dur_ns\":9}\n",
        );
        let text = summary(&artifact).unwrap();
        assert!(
            text.contains("cache: quiet"),
            "a cache-free artifact must say so: {text}"
        );
        assert!(cache_report(&load_trace(&artifact).unwrap()).is_quiet());
    }

    #[test]
    fn no_timings_is_an_input_error() {
        let path = write_temp(
            "empty",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"event\",\"name\":\"x\"}\n",
        );
        let err = load_stages(&path).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn trace_request_renders_the_chain_and_critical_path() {
        let artifact = write_temp(
            "trace-chain",
            "{\"seq\":0,\"t_ns\":100,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":7,\"trace\":153,\"kind\":\"probe\"}}\n\
             {\"seq\":1,\"t_ns\":150,\"kind\":\"span_end\",\"name\":\"request\",\"fields\":{\"dur_ns\":50}}\n\
             {\"seq\":2,\"t_ns\":150,\"kind\":\"span_start\",\"name\":\"serve_batch\",\"fields\":{\"batch\":0}}\n\
             {\"seq\":3,\"t_ns\":150,\"kind\":\"span_start\",\"name\":\"job\",\"fields\":{\"request\":7,\"trace\":153}}\n\
             {\"seq\":4,\"t_ns\":450,\"kind\":\"span_end\",\"name\":\"job\",\"fields\":{\"dur_ns\":300}}\n\
             {\"seq\":5,\"t_ns\":460,\"kind\":\"span_start\",\"name\":\"job\",\"fields\":{\"request\":8,\"trace\":154}}\n\
             {\"seq\":6,\"t_ns\":470,\"kind\":\"span_end\",\"name\":\"job\",\"fields\":{\"dur_ns\":10}}\n\
             {\"seq\":7,\"t_ns\":480,\"kind\":\"span_end\",\"name\":\"serve_batch\",\"fields\":{\"dur_ns\":330}}\n",
        );
        let text = trace_request(&artifact, 7).unwrap();
        assert!(
            text.contains("request 7: trace 0x0000000000000099, 2 owning span(s)"),
            "{text}"
        );
        assert!(text.contains("request [50 ns]"), "{text}");
        assert!(text.contains("serve_batch -> job [300 ns]"), "{text}");
        assert!(text.contains("critical path: job (300 ns)"), "{text}");

        // a request id nothing carries is a gate failure, not silence
        let err = trace_request(&artifact, 6).unwrap_err();
        assert_eq!(err.exit_code(), 1, "{err}");
    }

    #[test]
    fn trace_request_gates_on_orphaned_and_unclosed_requests() {
        // a farm job references request 9 but no admission span exists
        let orphan = write_temp(
            "trace-orphan",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"job\",\"fields\":{\"request\":9}}\n\
             {\"seq\":1,\"t_ns\":5,\"kind\":\"span_end\",\"name\":\"job\",\"fields\":{\"dur_ns\":5}}\n",
        );
        let err = trace_request(&orphan, 9).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("orphaned"), "{err}");

        // an admission span that never closed (request stuck in flight)
        let unclosed = write_temp(
            "trace-unclosed",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":3,\"trace\":9}}\n",
        );
        let err = trace_request(&unclosed, 3).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("never closed"), "{err}");

        // a sequence gap poisons the whole artifact for tracing
        let gapped = write_temp(
            "trace-gap",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":3}}\n\
             {\"seq\":2,\"t_ns\":5,\"kind\":\"span_end\",\"name\":\"request\",\"fields\":{\"dur_ns\":5}}\n",
        );
        let err = trace_request(&gapped, 3).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("gap"), "{err}");
    }

    #[test]
    fn slo_report_rebuilds_windows_from_request_spans() {
        let artifact = write_temp(
            "slo-windows",
            "{\"seq\":0,\"t_ns\":100,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":1,\"trace\":5}}\n\
             {\"seq\":1,\"t_ns\":150,\"kind\":\"span_end\",\"name\":\"request\",\"fields\":{\"dur_ns\":50}}\n\
             {\"seq\":2,\"t_ns\":900,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":2,\"trace\":6}}\n\
             {\"seq\":3,\"t_ns\":1300,\"kind\":\"span_end\",\"name\":\"request\",\"fields\":{\"dur_ns\":400}}\n",
        );
        let config = canti_obs::SloConfig {
            window_ns: 1_000,
            objective_ns: 100,
            max_windows: 64,
        };
        let text = slo_report(&artifact, config).unwrap();
        assert!(text.contains("good=1 breached=1"), "{text}");
        assert!(
            text.contains("window 0 [t=0 ns): good=1 breached=0"),
            "{text}"
        );
        assert!(
            text.contains("window 1 [t=1000 ns): good=0 breached=1"),
            "{text}"
        );

        // an artifact with no request spans has nothing to audit
        let jobs_only = write_temp(
            "slo-empty",
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"span_start\",\"name\":\"job\"}\n\
             {\"seq\":1,\"t_ns\":5,\"kind\":\"span_end\",\"name\":\"job\",\"fields\":{\"dur_ns\":5}}\n",
        );
        let err = slo_report(&jobs_only, config).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn diff_thresholds_and_noise_floor() {
        let old = write_temp(
            "diff-old",
            r#"{"timings": [{"name": "solve", "count": 5, "p50_ns": 1000000, "p95_ns": 2000000}, {"name": "tiny", "count": 5, "p50_ns": 100, "p95_ns": 200}]}"#,
        );
        // solve p95 +100% (regression), tiny +100% but only +200 ns (noise)
        let new = write_temp(
            "diff-new",
            r#"{"timings": [{"name": "solve", "count": 5, "p50_ns": 1000000, "p95_ns": 4000000}, {"name": "tiny", "count": 5, "p50_ns": 200, "p95_ns": 400}]}"#,
        );
        let report = diff(&old, &new, DiffOptions::default()).unwrap();
        assert!(report.regressed());
        let regressed: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| (r.stage.as_str(), r.quantile))
            .collect();
        assert_eq!(regressed, vec![("solve", "p95")]);
        assert!(report.render().contains("REGRESSED"));

        // identical inputs never regress
        let report = diff(&old, &old, DiffOptions::default()).unwrap();
        assert!(!report.regressed());
    }

    #[test]
    fn diff_compares_p99_only_when_both_sides_carry_it() {
        let legacy = write_temp(
            "p99-legacy",
            r#"{"timings": [{"name": "solve", "count": 5, "p50_ns": 100, "p95_ns": 200}]}"#,
        );
        let tailed = write_temp(
            "p99-tailed",
            r#"{"timings": [{"name": "solve", "count": 5, "p50_ns": 100, "p95_ns": 200, "p99_ns": 900, "max_ns": 1000}]}"#,
        );
        // legacy baseline: no p99 row, so archived artifacts keep diffing
        let report = diff(&legacy, &tailed, DiffOptions::default()).unwrap();
        assert!(report.rows.iter().all(|r| r.quantile != "p99"));

        // both sides tailed: the p99 row exists and can trip the gate
        let worse = write_temp(
            "p99-worse",
            r#"{"timings": [{"name": "solve", "count": 5, "p50_ns": 100, "p95_ns": 200, "p99_ns": 2000000, "max_ns": 3000000}]}"#,
        );
        let report = diff(&tailed, &worse, DiffOptions::default()).unwrap();
        let p99: Vec<_> = report.rows.iter().filter(|r| r.quantile == "p99").collect();
        assert_eq!(p99.len(), 1);
        assert!(p99[0].regressed, "{:?}", p99[0]);
    }

    #[test]
    fn improvements_do_not_regress_and_unmatched_are_listed() {
        let old = write_temp(
            "imp-old",
            r#"{"timings": [{"name": "solve", "count": 5, "p50_ns": 2000000, "p95_ns": 4000000}, {"name": "gone", "count": 1, "p50_ns": 5, "p95_ns": 6}]}"#,
        );
        let new = write_temp(
            "imp-new",
            r#"{"timings": [{"name": "solve", "count": 5, "p50_ns": 1000000, "p95_ns": 2000000}, {"name": "fresh", "count": 1, "p50_ns": 5, "p95_ns": 6}]}"#,
        );
        let report = diff(&old, &new, DiffOptions::default()).unwrap();
        assert!(!report.regressed());
        assert!(report.unmatched.contains(&("gone".to_owned(), "old")));
        assert!(report.unmatched.contains(&("fresh".to_owned(), "new")));
    }
}
