//! End-to-end tests for the `obsctl` binary: the perf-regression gate
//! (`diff`) and the artifact-health gate (`summary`) with real process
//! exit codes, driven through `CARGO_BIN_EXE_obsctl`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

use canti_obs::clock::VirtualClock;
use canti_obs::trace::{RingCollector, Tracer};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn obsctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obsctl"))
        .args(args)
        .output()
        .expect("spawn obsctl")
}

fn temp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("obsctl-cli-{name}-{}", std::process::id()));
    std::fs::write(&path, content).expect("write temp fixture");
    path
}

/// A small healthy trace stream: batch → 3 jobs, gap-free.
fn healthy_trace() -> String {
    let ring = Arc::new(RingCollector::new(64));
    let clock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(Arc::clone(&ring) as _, Arc::clone(&clock) as _);
    let batch = tracer.span("batch", &[("jobs", 3u64.into())]);
    for i in 0..3u64 {
        let job = tracer.span("job", &[("job", i.into())]);
        clock.advance_ns(1_000 * (i + 1));
        drop(job);
    }
    drop(batch);
    ring.to_ndjson()
}

#[test]
fn diff_passes_on_identical_inputs() {
    let old = fixture("bench_old.json");
    let out = obsctl(&["diff", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "identical inputs must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("farm.solve_ns"));
    assert!(!stdout.contains("REGRESSED"));
}

#[test]
fn diff_detects_injected_p95_regression() {
    let old = fixture("bench_old.json");
    let new = fixture("bench_regressed.json");
    let out = obsctl(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Injected: solve p95 1.3ms → 2.2ms (+69%). p50 +5% stays inside the
    // default 25% threshold; only the p95 row may trip.
    assert!(stdout.contains("REGRESSED"), "stdout: {stdout}");
    let regressed: Vec<&str> = stdout.lines().filter(|l| l.contains("REGRESSED")).collect();
    assert_eq!(regressed.len(), 1);
    assert!(regressed[0].contains("farm.solve_ns"));
    assert!(regressed[0].contains("p95"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("gate failed"));
}

#[test]
fn diff_threshold_flags_are_honoured() {
    let old = fixture("bench_old.json");
    let new = fixture("bench_regressed.json");
    // With a huge threshold the same pair passes…
    let out = obsctl(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold-pct",
        "200",
    ]);
    assert!(out.status.success());
    // …and with a zero threshold + zero floor even the +5% p50 trips.
    let out = obsctl(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold-pct",
        "0",
        "--min-ns",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout
        .lines()
        .any(|l| l.contains("p50") && l.contains("REGRESSED")));
}

#[test]
fn summary_renders_a_healthy_artifact() {
    let path = temp("healthy", &healthy_trace());
    let out = obsctl(&["summary", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("batch"), "stdout: {stdout}");
    assert!(stdout.contains("job"));
    assert!(stdout.contains("critical path"));
}

#[test]
fn summary_gates_on_empty_span_tree() {
    let path = temp(
        "spanless",
        "{\"metric\":\"x\",\"type\":\"counter\",\"value\":1}\n",
    );
    let out = obsctl(&["summary", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("span tree is empty"));
}

#[test]
fn summary_gates_on_sequence_gaps() {
    // Drop a middle line to fabricate a gap in the seq numbering.
    let full = healthy_trace();
    let gappy: Vec<&str> = full
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, l)| l)
        .collect();
    let path = temp("gappy", &(gappy.join("\n") + "\n"));
    let out = obsctl(&["summary", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("gap"));
}

#[test]
fn flame_emits_folded_stacks() {
    let path = temp("flame", &healthy_trace());
    let out = obsctl(&["flame", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().any(|l| l.starts_with("batch;job ")),
        "stdout: {stdout}"
    );
    // Folded-stack grammar: every line is `stack<space>weight`.
    for line in stdout.lines() {
        let (_, weight) = line.rsplit_once(' ').expect("weight column");
        weight.parse::<u64>().expect("numeric weight");
    }
}

#[test]
fn usage_errors_exit_2_and_help_exits_0() {
    let out = obsctl(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["diff", "only-one-file.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["--help"]);
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "summary",
        "flame",
        "diff",
        "--threshold-pct",
        "--min-ns",
        "EXIT CODES",
    ] {
        assert!(help.contains(needle), "help missing {needle}");
    }
}

#[test]
fn missing_file_is_an_input_error() {
    let out = obsctl(&["summary", "/nonexistent/telemetry.ndjson"]);
    assert_eq!(out.status.code(), Some(2));
}
