//! End-to-end tests for the `obsctl` binary: the perf-regression gate
//! (`diff`) and the artifact-health gate (`summary`) with real process
//! exit codes, driven through `CARGO_BIN_EXE_obsctl`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::Arc;

use canti_obs::clock::VirtualClock;
use canti_obs::trace::{RingCollector, Tracer};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn obsctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obsctl"))
        .args(args)
        .output()
        .expect("spawn obsctl")
}

fn temp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("obsctl-cli-{name}-{}", std::process::id()));
    std::fs::write(&path, content).expect("write temp fixture");
    path
}

/// A small healthy trace stream: batch → 3 jobs, gap-free.
fn healthy_trace() -> String {
    let ring = Arc::new(RingCollector::new(64));
    let clock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(Arc::clone(&ring) as _, Arc::clone(&clock) as _);
    let batch = tracer.span("batch", &[("jobs", 3u64.into())]);
    for i in 0..3u64 {
        let job = tracer.span("job", &[("job", i.into())]);
        clock.advance_ns(1_000 * (i + 1));
        drop(job);
    }
    drop(batch);
    ring.to_ndjson()
}

/// A serve-shaped trace stream: an admission-side `request` span closed
/// before the `serve_batch`/`job` pair that executed it, the way the
/// sharded front and executor interleave on one tracer.
fn serve_trace() -> String {
    let ring = Arc::new(RingCollector::new(64));
    let clock = Arc::new(VirtualClock::new());
    let tracer = Tracer::new(Arc::clone(&ring) as _, Arc::clone(&clock) as _);
    let request = tracer.span(
        "request",
        &[
            ("request", 5u64.into()),
            ("trace", 0xABu64.into()),
            ("kind", "probe".into()),
        ],
    );
    clock.advance_ns(2_000);
    drop(request);
    let batch = tracer.span("serve_batch", &[("batch", 0u64.into())]);
    let job = tracer.span(
        "job",
        &[
            ("job", 0u64.into()),
            ("request", 5u64.into()),
            ("trace", 0xABu64.into()),
        ],
    );
    clock.advance_ns(1_500);
    drop(job);
    drop(batch);
    ring.to_ndjson()
}

#[test]
fn trace_reconstructs_a_request_chain() {
    let path = temp("trace-ok", &serve_trace());
    let out = obsctl(&["trace", path.to_str().unwrap(), "5"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("request 5: trace 0x00000000000000ab"),
        "{stdout}"
    );
    assert!(stdout.contains("serve_batch -> job [1500 ns]"), "{stdout}");
    assert!(stdout.contains("critical path:"), "{stdout}");
}

#[test]
fn trace_gates_on_unknown_requests_and_rejects_bad_ids() {
    let path = temp("trace-miss", &serve_trace());
    let out = obsctl(&["trace", path.to_str().unwrap(), "999"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "absent request is a gate failure"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("no span carries request 999"));

    let out = obsctl(&["trace", path.to_str().unwrap(), "not-a-number"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["trace", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn slo_recomputes_windows_offline() {
    let path = temp("slo-offline", &serve_trace());
    // the request ran 2000 ns: good under a loose objective…
    let out = obsctl(&["slo", path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("good=1 breached=0"));
    // …and a breach under a 1 µs one
    let out = obsctl(&[
        "slo",
        path.to_str().unwrap(),
        "--objective-ns",
        "1000",
        "--window-ns",
        "1000000",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("good=0 breached=1"), "{stdout}");
    assert!(stdout.contains("window 0 "), "{stdout}");
}

#[test]
fn diff_passes_on_identical_inputs() {
    let old = fixture("bench_old.json");
    let out = obsctl(&["diff", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "identical inputs must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("farm.solve_ns"));
    assert!(!stdout.contains("REGRESSED"));
}

#[test]
fn diff_detects_injected_p95_regression() {
    let old = fixture("bench_old.json");
    let new = fixture("bench_regressed.json");
    let out = obsctl(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Injected: solve p95 1.3ms → 2.2ms (+69%). p50 +5% stays inside the
    // default 25% threshold; only the p95 row may trip.
    assert!(stdout.contains("REGRESSED"), "stdout: {stdout}");
    let regressed: Vec<&str> = stdout.lines().filter(|l| l.contains("REGRESSED")).collect();
    assert_eq!(regressed.len(), 1);
    assert!(regressed[0].contains("farm.solve_ns"));
    assert!(regressed[0].contains("p95"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("gate failed"));
}

#[test]
fn diff_threshold_flags_are_honoured() {
    let old = fixture("bench_old.json");
    let new = fixture("bench_regressed.json");
    // With a huge threshold the same pair passes…
    let out = obsctl(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold-pct",
        "200",
    ]);
    assert!(out.status.success());
    // …and with a zero threshold + zero floor even the +5% p50 trips.
    let out = obsctl(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--threshold-pct",
        "0",
        "--min-ns",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout
        .lines()
        .any(|l| l.contains("p50") && l.contains("REGRESSED")));
}

#[test]
fn summary_renders_a_healthy_artifact() {
    let path = temp("healthy", &healthy_trace());
    let out = obsctl(&["summary", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("batch"), "stdout: {stdout}");
    assert!(stdout.contains("job"));
    assert!(stdout.contains("critical path"));
}

#[test]
fn summary_gates_on_empty_span_tree() {
    let path = temp(
        "spanless",
        "{\"metric\":\"x\",\"type\":\"counter\",\"value\":1}\n",
    );
    let out = obsctl(&["summary", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("span tree is empty"));
}

#[test]
fn summary_gates_on_sequence_gaps() {
    // Drop a middle line to fabricate a gap in the seq numbering.
    let full = healthy_trace();
    let gappy: Vec<&str> = full
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, l)| l)
        .collect();
    let path = temp("gappy", &(gappy.join("\n") + "\n"));
    let out = obsctl(&["summary", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("gap"));
}

#[test]
fn flame_emits_folded_stacks() {
    let path = temp("flame", &healthy_trace());
    let out = obsctl(&["flame", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().any(|l| l.starts_with("batch;job ")),
        "stdout: {stdout}"
    );
    // Folded-stack grammar: every line is `stack<space>weight`.
    for line in stdout.lines() {
        let (_, weight) = line.rsplit_once(' ').expect("weight column");
        weight.parse::<u64>().expect("numeric weight");
    }
}

#[test]
fn usage_errors_exit_2_and_help_exits_0() {
    let out = obsctl(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["diff", "only-one-file.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["--help"]);
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "summary",
        "flame",
        "diff",
        "trace",
        "slo",
        "--threshold-pct",
        "--min-ns",
        "--objective-ns",
        "--window-ns",
        "EXIT CODES",
    ] {
        assert!(help.contains(needle), "help missing {needle}");
    }
}

#[test]
fn missing_file_is_an_input_error() {
    let out = obsctl(&["summary", "/nonexistent/telemetry.ndjson"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn summary_and_trace_emit_ndjson_with_json_flag() {
    let path = temp("json-summary", &healthy_trace());
    let out = obsctl(&["summary", path.to_str().unwrap(), "--json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let docs = canti_obs::parse_ndjson(&stdout).expect("summary --json parses back");
    let records: Vec<&str> = docs
        .iter()
        .filter_map(|d| d.get("record").and_then(canti_obs::Json::as_str))
        .collect();
    assert!(records.contains(&"trace_health"), "{stdout}");
    assert!(records.contains(&"stage"), "{stdout}");
    assert!(records.contains(&"critical"), "{stdout}");

    let path = temp("json-trace", &serve_trace());
    let out = obsctl(&["trace", path.to_str().unwrap(), "5", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let docs = canti_obs::parse_ndjson(&stdout).expect("trace --json parses back");
    let request = docs
        .iter()
        .find(|d| d.get("record").and_then(canti_obs::Json::as_str) == Some("request"))
        .expect("request record");
    assert_eq!(
        request.get("request").and_then(canti_obs::Json::as_u64),
        Some(5)
    );
    assert_eq!(
        request.get("trace").and_then(canti_obs::Json::as_u64),
        Some(0xAB)
    );
    assert!(docs
        .iter()
        .any(|d| d.get("record").and_then(canti_obs::Json::as_str) == Some("owning_span")));

    // the gates apply identically in --json mode
    let out = obsctl(&["trace", path.to_str().unwrap(), "999", "--json"]);
    assert_eq!(out.status.code(), Some(1));
}

/// A timeline artifact plus a span artifact whose offline recompute
/// reproduces its `serve.request_latency_ns` windows exactly: requests
/// 1 (end 150, latency 50) and 2 (end 1300, latency 400) land in
/// windows 0 and 1 of a 1000 ns grid; request 3 expired and must be
/// excluded from the recompute.
fn matching_timeline_and_spans() -> (String, String) {
    let timeline = "\
{\"record\":\"timeline_config\",\"window_ns\":1000,\"max_windows\":64}\n\
{\"record\":\"timeline\",\"shard\":\"0\",\"series\":\"serve.request_latency_ns\",\"kind\":\"delta\",\"window\":0,\"t_ns\":0,\"count\":1,\"sum\":50,\"min\":50,\"max\":50}\n\
{\"record\":\"timeline\",\"shard\":\"0\",\"series\":\"serve.request_latency_ns\",\"kind\":\"delta\",\"window\":1,\"t_ns\":1000,\"count\":1,\"sum\":400,\"min\":400,\"max\":400}\n";
    let spans = "\
{\"seq\":0,\"t_ns\":100,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":1,\"trace\":11}}\n\
{\"seq\":1,\"t_ns\":150,\"kind\":\"span_end\",\"name\":\"request\",\"fields\":{\"dur_ns\":50}}\n\
{\"seq\":2,\"t_ns\":900,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":2,\"trace\":12}}\n\
{\"seq\":3,\"t_ns\":1300,\"kind\":\"span_end\",\"name\":\"request\",\"fields\":{\"dur_ns\":400}}\n\
{\"seq\":4,\"t_ns\":1400,\"kind\":\"span_start\",\"name\":\"request\",\"fields\":{\"request\":3,\"trace\":13}}\n\
{\"seq\":5,\"t_ns\":1410,\"kind\":\"event\",\"name\":\"request_expired\",\"fields\":{\"request\":3,\"trace\":13}}\n\
{\"seq\":6,\"t_ns\":1410,\"kind\":\"span_end\",\"name\":\"request\",\"fields\":{\"dur_ns\":10}}\n";
    (timeline.to_owned(), spans.to_owned())
}

#[test]
fn timeline_renders_tables_and_sparklines() {
    let old = fixture("timeline_old.ndjson");
    let out = obsctl(&["timeline", old.to_str().unwrap(), "--shard", "merged"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("window=1000 ns"), "{stdout}");
    assert!(stdout.contains("serve.admitted (delta)"), "{stdout}");
    assert!(
        stdout.contains("window 0 [t=0 ns): count=10 sum=10 mean=1 min=1 max=1"),
        "{stdout}"
    );
    assert!(stdout.contains('█'), "sparkline glyphs: {stdout}");

    // a shard nothing recorded under is a gate failure, not silence
    let out = obsctl(&["timeline", old.to_str().unwrap(), "--shard", "7"]);
    assert_eq!(out.status.code(), Some(1));

    // --series filters, --json re-emits the artifact records
    let out = obsctl(&[
        "timeline",
        old.to_str().unwrap(),
        "--shard",
        "merged",
        "--series",
        "serve.expired",
        "--json",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 2, "config + one point: {stdout}");
    assert!(
        stdout.contains("\"series\":\"serve.expired\",\"kind\":\"delta\",\"window\":1"),
        "{stdout}"
    );
}

#[test]
fn timeline_offline_recompute_matches_and_gates_on_divergence() {
    let (timeline, spans) = matching_timeline_and_spans();
    let timeline_path = temp("tl-match", &timeline);
    let spans_path = temp("tl-spans", &spans);
    let out = obsctl(&[
        "timeline",
        timeline_path.to_str().unwrap(),
        "--spans",
        spans_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2 request span(s), 2 window(s) — matches live serve.request_latency_ns"),
        "{stdout}"
    );

    // tamper with one live window: the cross-check must trip
    let tampered = temp(
        "tl-tampered",
        &timeline.replace("\"sum\":400", "\"sum\":401"),
    );
    let out = obsctl(&[
        "timeline",
        tampered.to_str().unwrap(),
        "--spans",
        spans_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "divergence must gate");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("disagrees with live"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn anomaly_passes_a_self_diff_and_catches_a_seeded_regression() {
    let old = fixture("timeline_old.ndjson");
    let out = obsctl(&["anomaly", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "self-diff must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("serve.completed"), "{stdout}");
    assert!(!stdout.contains("ANOMALOUS"), "{stdout}");

    // the regressed fixture drops merged serve.completed 10 -> 6 (-40%)
    let regressed = fixture("timeline_regressed.ndjson");
    let out = obsctl(&[
        "anomaly",
        regressed.to_str().unwrap(),
        old.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "seeded regression must gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let anomalous: Vec<&str> = stdout.lines().filter(|l| l.contains("ANOMALOUS")).collect();
    assert_eq!(anomalous.len(), 1, "{stdout}");
    assert!(anomalous[0].contains("serve.completed"), "{stdout}");
    assert!(anomalous[0].contains("40.0%"), "{stdout}");

    // inside a loose threshold the same pair passes
    let out = obsctl(&[
        "anomaly",
        regressed.to_str().unwrap(),
        old.to_str().unwrap(),
        "--threshold-pct",
        "50",
    ]);
    assert!(out.status.success());

    // a named series missing from one side is itself an anomaly
    let out = obsctl(&[
        "anomaly",
        regressed.to_str().unwrap(),
        old.to_str().unwrap(),
        "--series",
        "serve.vanished",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("missing in"));
}

#[test]
fn timeline_and_anomaly_usage_errors_exit_2() {
    let out = obsctl(&["timeline"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["anomaly", "only-one.ndjson"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["timeline", "x.ndjson", "--shard"]);
    assert_eq!(out.status.code(), Some(2));
    let out = obsctl(&["anomaly", "a.ndjson", "b.ndjson", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    // a non-artifact file is an input error, not a crash
    let not_timeline = temp("not-timeline", "{\"metric\":\"x\",\"value\":1}\n");
    let out = obsctl(&["timeline", not_timeline.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("timeline_config"));
}
