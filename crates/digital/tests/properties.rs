//! Property-based tests for the digital substrate.

use canti_digital::allan::FrequencyRecord;
use canti_digital::comparator::ZeroCrossingDetector;
use canti_digital::counter::{GatedCounter, ReciprocalCounter};
use canti_units::{Hertz, Seconds};
use proptest::prelude::*;

fn sine(n: usize, fs: f64, f: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The gated counter is always within its ±1-count bound, for any
    /// frequency and gate in range.
    #[test]
    fn gated_counter_within_quantization(f in 5e3f64..2e5, gate_ms in 10.0f64..100.0) {
        let fs = 2e6;
        let gate = Seconds::from_millis(gate_ms);
        let n = ((gate.value() * fs) as usize) + 100;
        let wave = sine(n, fs, f);
        let counter = GatedCounter::new(gate).expect("counter");
        let measured = counter.measure(&wave, fs).expect("measure").value();
        prop_assert!(
            (measured - f).abs() <= counter.quantization().value() + 1e-6,
            "f {f}, measured {measured}, bound {}",
            counter.quantization().value()
        );
    }

    /// The reciprocal counter is within its relative quantization bound.
    #[test]
    fn reciprocal_counter_within_quantization(f in 1e4f64..2e5, periods in 50usize..500) {
        let fs = 4e6;
        let n = ((periods as f64 + 2.0) / f * fs) as usize + 100;
        let wave = sine(n, fs, f);
        let counter = ReciprocalCounter::new(Hertz::from_megahertz(10.0), periods)
            .expect("counter");
        let measured = counter.measure(&wave, fs).expect("measure").value();
        let bound = counter.relative_quantization(Hertz::new(f)) * f
            // plus the waveform sampling granularity of the edge times
            + f * f / fs;
        prop_assert!(
            (measured - f).abs() <= bound * 2.0 + 1e-6,
            "f {f}, measured {measured}, bound {bound}"
        );
    }

    /// The comparator counts ~f·T cycles of any clean tone.
    #[test]
    fn comparator_counts_cycles(f in 1e3f64..5e4) {
        let fs = 1e6;
        let n = 100_000; // 0.1 s
        let wave = sine(n, fs, f);
        let mut det = ZeroCrossingDetector::new(0.01).expect("detector");
        let edges = det.rising_edges(&wave).len() as f64;
        let expected = f * 0.1;
        prop_assert!((edges - expected).abs() <= 1.0, "f {f}: {edges} vs {expected}");
    }

    /// Scaling a frequency record scales its Allan deviation linearly.
    #[test]
    fn allan_scales_linearly(scale in 0.1f64..100.0, seed in 0u64..100) {
        let base: Vec<f64> = (0..2000)
            .map(|i| ((((i as u64) + seed).wrapping_mul(2654435761) % 1001) as f64 / 500.0 - 1.0) * 1e-6)
            .collect();
        let scaled: Vec<f64> = base.iter().map(|y| y * scale).collect();
        let r1 = FrequencyRecord::new(base, Seconds::new(1.0)).expect("record");
        let r2 = FrequencyRecord::new(scaled, Seconds::new(1.0)).expect("record");
        for m in [1usize, 7, 50] {
            let a = r1.allan_deviation(m).expect("adev");
            let b = r2.allan_deviation(m).expect("adev");
            if a > 0.0 {
                prop_assert!((b / a - scale).abs() / scale < 1e-9);
            }
        }
    }

    /// Allan deviation is invariant under a constant frequency offset.
    #[test]
    fn allan_offset_invariant(offset in -1e-3f64..1e-3) {
        let base: Vec<f64> = (0..1500)
            .map(|i| (((i * 48271) % 997) as f64 / 500.0 - 1.0) * 1e-6)
            .collect();
        let shifted: Vec<f64> = base.iter().map(|y| y + offset).collect();
        let r1 = FrequencyRecord::new(base, Seconds::new(1.0)).expect("record");
        let r2 = FrequencyRecord::new(shifted, Seconds::new(1.0)).expect("record");
        for m in [1usize, 10] {
            let a = r1.allan_deviation(m).expect("adev");
            let b = r2.allan_deviation(m).expect("adev");
            prop_assert!((a - b).abs() <= 1e-12 + 1e-6 * a);
        }
    }
}
