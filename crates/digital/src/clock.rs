//! Reference clock with frequency error and cycle jitter.
//!
//! The on-chip counter is only as good as its time base. An integrated
//! relaxation oscillator has percent-level absolute error; a crystal in the
//! package gets to ppm. Both matter to how well the frequency counter's
//! reading maps back to an absolute mass.

use canti_units::Hertz;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::ensure_positive;
use crate::DigitalError;

/// A reference clock with static ppm error and white cycle-to-cycle jitter.
#[derive(Debug, Clone)]
pub struct ReferenceClock {
    nominal: Hertz,
    ppm_error: f64,
    jitter_rms_seconds: f64,
    rng: ChaCha8Rng,
}

impl ReferenceClock {
    /// Creates a clock.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] unless the nominal frequency is strictly
    /// positive and the jitter non-negative.
    pub fn new(
        nominal: Hertz,
        ppm_error: f64,
        jitter_rms_seconds: f64,
        seed: u64,
    ) -> Result<Self, DigitalError> {
        ensure_positive("nominal clock frequency", nominal.value())?;
        if !jitter_rms_seconds.is_finite() || jitter_rms_seconds < 0.0 {
            return Err(DigitalError::NonPositive {
                what: "clock jitter (must be >= 0)",
                value: jitter_rms_seconds,
            });
        }
        if !ppm_error.is_finite() {
            return Err(DigitalError::NonPositive {
                what: "ppm error (must be finite)",
                value: ppm_error,
            });
        }
        Ok(Self {
            nominal,
            ppm_error,
            jitter_rms_seconds,
            rng: ChaCha8Rng::seed_from_u64(seed),
        })
    }

    /// A packaged crystal: 10 MHz, ±20 ppm, 5 ps RMS jitter.
    ///
    /// # Errors
    ///
    /// Never fails; mirrors [`Self::new`].
    pub fn crystal_10mhz(seed: u64) -> Result<Self, DigitalError> {
        Self::new(Hertz::from_megahertz(10.0), 20.0, 5e-12, seed)
    }

    /// A fully integrated RC relaxation oscillator: 4 MHz, ±2 % (20 000
    /// ppm), 500 ps RMS jitter — what "autonomous device operation" without
    /// external components buys you.
    ///
    /// # Errors
    ///
    /// Never fails; mirrors [`Self::new`].
    pub fn on_chip_rc_4mhz(seed: u64) -> Result<Self, DigitalError> {
        Self::new(Hertz::from_megahertz(4.0), 20_000.0, 500e-12, seed)
    }

    /// Nominal frequency.
    #[must_use]
    pub fn nominal(&self) -> Hertz {
        self.nominal
    }

    /// The actual (error-shifted) frequency.
    #[must_use]
    pub fn actual(&self) -> Hertz {
        Hertz::new(self.nominal.value() * (1.0 + self.ppm_error * 1e-6))
    }

    /// The static fractional error.
    #[must_use]
    pub fn fractional_error(&self) -> f64 {
        self.ppm_error * 1e-6
    }

    /// Duration of `cycles` clock cycles including jitter (RMS jitter
    /// accumulates as √N for white cycle jitter).
    pub fn elapsed_seconds(&mut self, cycles: u64) -> f64 {
        let ideal = cycles as f64 / self.actual().value();
        if self.jitter_rms_seconds == 0.0 {
            return ideal;
        }
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        ideal + g * self.jitter_rms_seconds * (cycles as f64).sqrt()
    }

    /// How a frequency measured against this clock maps to truth: the
    /// counter reports `f_true · f_nominal/f_actual`.
    #[must_use]
    pub fn reported_frequency(&self, f_true: Hertz) -> Hertz {
        Hertz::new(f_true.value() * self.nominal.value() / self.actual().value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actual_reflects_ppm() {
        let c = ReferenceClock::new(Hertz::from_megahertz(10.0), 100.0, 0.0, 0).unwrap();
        assert!((c.actual().value() - 10e6 * (1.0 + 1e-4)).abs() < 1e-3);
        assert!((c.fractional_error() - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn crystal_beats_rc_on_error() {
        let xtal = ReferenceClock::crystal_10mhz(0).unwrap();
        let rc = ReferenceClock::on_chip_rc_4mhz(0).unwrap();
        assert!(xtal.fractional_error().abs() < rc.fractional_error().abs() / 100.0);
    }

    #[test]
    fn elapsed_without_jitter_is_exact() {
        let mut c = ReferenceClock::new(Hertz::from_megahertz(1.0), 0.0, 0.0, 0).unwrap();
        assert!((c.elapsed_seconds(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_accumulates_as_sqrt_n() {
        let trials = 3000;
        let spread = |cycles: u64| {
            let mut c = ReferenceClock::new(Hertz::from_megahertz(1.0), 0.0, 1e-9, 42).unwrap();
            let ideal = cycles as f64 / 1e6;
            let var: f64 = (0..trials)
                .map(|_| (c.elapsed_seconds(cycles) - ideal).powi(2))
                .sum::<f64>()
                / f64::from(trials);
            var.sqrt()
        };
        let s100 = spread(100);
        let s10000 = spread(10_000);
        assert!(
            (s10000 / s100 - 10.0).abs() < 1.0,
            "sqrt-N accumulation: {}",
            s10000 / s100
        );
    }

    #[test]
    fn reported_frequency_error() {
        // a fast clock makes signals look slow
        let c = ReferenceClock::new(Hertz::from_megahertz(10.0), 1000.0, 0.0, 0).unwrap();
        let reported = c.reported_frequency(Hertz::from_kilohertz(100.0));
        let rel = (reported.value() - 100e3) / 100e3;
        assert!((rel + 1e-3).abs() < 1e-6, "relative error {rel}");
    }

    #[test]
    fn validation() {
        assert!(ReferenceClock::new(Hertz::zero(), 0.0, 0.0, 0).is_err());
        assert!(ReferenceClock::new(Hertz::new(1e6), 0.0, -1.0, 0).is_err());
        assert!(ReferenceClock::new(Hertz::new(1e6), f64::NAN, 0.0, 0).is_err());
    }
}
