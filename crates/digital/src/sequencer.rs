//! The autonomous measurement sequencer: the on-chip controller FSM.
//!
//! "Enables autonomous device operation" ultimately means a state machine
//! next to the analog blocks: power up, self-calibrate the offset DACs,
//! scan the mux channels, report, repeat — with a watchdog so a stuck
//! analog step faults instead of hanging the instrument.
//!
//! The sequencer is deliberately event-driven and side-effect-free: the
//! surrounding system feeds it events ([`SequencerEvent`]) and executes
//! whatever [`SequencerAction`] it returns. That makes every transition
//! unit-testable without analog machinery.

use canti_obs::ndjson::JsonValue;
use canti_obs::Tracer;

use crate::DigitalError;

/// Controller states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerState {
    /// Just powered, nothing trusted yet.
    PowerOn,
    /// Offset calibration in progress.
    Calibrating,
    /// Calibrated and waiting for a scan trigger.
    Idle,
    /// Scanning the mux; `channel` is in progress.
    Scanning {
        /// Channel currently being measured.
        channel: usize,
    },
    /// Latched fault; only `Reset` leaves it.
    Fault {
        /// Human-readable cause.
        reason: String,
    },
}

/// Events fed to the sequencer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerEvent {
    /// Power-on self test passed.
    SelfTestPassed,
    /// The offset calibration routine finished.
    CalibrationDone,
    /// The offset calibration routine failed (e.g. DAC range exceeded).
    CalibrationFailed,
    /// Host/system requests a scan pass.
    StartScan,
    /// The current channel's measurement is complete.
    ChannelDone,
    /// The current channel's measurement failed (e.g. a non-finite or
    /// out-of-range output).
    MeasurementFailed,
    /// Fault acknowledgment / global reset.
    Reset,
}

/// Actions the surrounding system must execute after a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerAction {
    /// Run the offset-calibration routine.
    RunCalibration,
    /// Select and measure `channel`.
    MeasureChannel(usize),
    /// A full scan finished; report the results.
    Report,
    /// Nothing to do.
    None,
}

/// The measurement controller.
///
/// # Examples
///
/// ```
/// use canti_digital::sequencer::{MeasurementSequencer, SequencerEvent, SequencerAction, SequencerState};
///
/// let mut seq = MeasurementSequencer::new(4, 1000)?;
/// assert_eq!(seq.handle(SequencerEvent::SelfTestPassed)?, SequencerAction::RunCalibration);
/// assert_eq!(seq.handle(SequencerEvent::CalibrationDone)?, SequencerAction::None);
/// assert_eq!(seq.handle(SequencerEvent::StartScan)?, SequencerAction::MeasureChannel(0));
/// # Ok::<(), canti_digital::DigitalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementSequencer {
    state: SequencerState,
    channels: usize,
    /// Watchdog budget per state, in ticks.
    watchdog_limit: u64,
    ticks_in_state: u64,
    /// Completed scan passes since reset.
    scans_completed: u64,
    /// Whether a calibration has completed since the last reset — the
    /// precondition for fault recovery straight back to `Idle`.
    calibrated: bool,
    /// Trace sink for state changes and faults; disabled (one branch per
    /// transition) unless attached via [`Self::with_tracer`].
    tracer: Tracer,
}

/// Equality is over the controller state only — the attached tracer is
/// diagnostics plumbing, not sequencer state.
impl PartialEq for MeasurementSequencer {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state
            && self.channels == other.channels
            && self.watchdog_limit == other.watchdog_limit
            && self.ticks_in_state == other.ticks_in_state
            && self.scans_completed == other.scans_completed
            && self.calibrated == other.calibrated
    }
}

fn state_label(state: &SequencerState) -> &'static str {
    match state {
        SequencerState::PowerOn => "power_on",
        SequencerState::Calibrating => "calibrating",
        SequencerState::Idle => "idle",
        SequencerState::Scanning { .. } => "scanning",
        SequencerState::Fault { .. } => "fault",
    }
}

impl MeasurementSequencer {
    /// Creates a sequencer for `channels` mux channels with a per-state
    /// watchdog budget of `watchdog_limit` ticks.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] for zero channels or a zero watchdog.
    pub fn new(channels: usize, watchdog_limit: u64) -> Result<Self, DigitalError> {
        if channels == 0 {
            return Err(DigitalError::NonPositive {
                what: "sequencer channels",
                value: 0.0,
            });
        }
        if watchdog_limit == 0 {
            return Err(DigitalError::NonPositive {
                what: "watchdog limit",
                value: 0.0,
            });
        }
        Ok(Self {
            state: SequencerState::PowerOn,
            channels,
            watchdog_limit,
            ticks_in_state: 0,
            scans_completed: 0,
            calibrated: false,
            tracer: Tracer::disabled(),
        })
    }

    /// Attaches a tracer; every subsequent state change, watchdog trip
    /// and measurement failure is emitted as a structured event. Tracing
    /// never alters transition behavior.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Replaces the attached tracer in place (see [`Self::with_tracer`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> &SequencerState {
        &self.state
    }

    /// Completed scan passes since the last reset.
    #[must_use]
    pub fn scans_completed(&self) -> u64 {
        self.scans_completed
    }

    fn goto(&mut self, state: SequencerState) {
        if self.tracer.is_enabled() && state != self.state {
            let mut fields: Vec<(&'static str, JsonValue)> = vec![
                ("from", state_label(&self.state).into()),
                ("to", state_label(&state).into()),
            ];
            match &state {
                SequencerState::Scanning { channel } => {
                    fields.push(("channel", (*channel).into()));
                }
                SequencerState::Fault { reason } => {
                    fields.push(("reason", reason.as_str().into()));
                }
                _ => {}
            }
            self.tracer.event("state_change", &fields);
        }
        self.state = state;
        self.ticks_in_state = 0;
    }

    /// Handles one event, returning the action to execute.
    ///
    /// Unexpected events in a state latch a [`SequencerState::Fault`] —
    /// silent event swallowing is how real sequencers end up in undefined
    /// states.
    ///
    /// # Errors
    ///
    /// Never errs currently; the `Result` reserves room for future
    /// hard-failure signaling.
    pub fn handle(&mut self, event: SequencerEvent) -> Result<SequencerAction, DigitalError> {
        use SequencerEvent as E;
        use SequencerState as S;

        // Reset works from anywhere.
        if event == E::Reset {
            self.goto(S::PowerOn);
            self.scans_completed = 0;
            self.calibrated = false;
            return Ok(SequencerAction::None);
        }

        let (next, action) = match (&self.state, &event) {
            (S::PowerOn, E::SelfTestPassed) => (S::Calibrating, SequencerAction::RunCalibration),
            (S::Calibrating, E::CalibrationDone) => {
                self.calibrated = true;
                (S::Idle, SequencerAction::None)
            }
            (S::Calibrating, E::CalibrationFailed) => (
                S::Fault {
                    reason: "offset calibration failed".to_owned(),
                },
                SequencerAction::None,
            ),
            (S::Idle, E::StartScan) => (
                S::Scanning { channel: 0 },
                SequencerAction::MeasureChannel(0),
            ),
            (S::Scanning { channel }, E::MeasurementFailed) => {
                self.tracer
                    .event("measurement_failed", &[("channel", (*channel).into())]);
                (
                    S::Fault {
                        reason: format!("measurement failed on channel {channel}"),
                    },
                    SequencerAction::None,
                )
            }
            (S::Scanning { channel }, E::ChannelDone) => {
                let next_ch = channel + 1;
                if next_ch >= self.channels {
                    self.scans_completed += 1;
                    (S::Idle, SequencerAction::Report)
                } else {
                    (
                        S::Scanning { channel: next_ch },
                        SequencerAction::MeasureChannel(next_ch),
                    )
                }
            }
            (S::Fault { .. }, _) => (self.state.clone(), SequencerAction::None),
            (state, event) => (
                S::Fault {
                    reason: format!("unexpected {event:?} in {state:?}"),
                },
                SequencerAction::None,
            ),
        };
        self.goto(next);
        Ok(action)
    }

    /// Clears a latched fault without a full reset: back to `Idle` when
    /// a calibration has completed since the last reset (the instrument
    /// can scan again immediately), back to `PowerOn` otherwise (nothing
    /// downstream is trusted yet). Unlike [`SequencerEvent::Reset`],
    /// recovery keeps the completed-scan count and calibration flag.
    ///
    /// Emits a `recovered` trace event carrying the cleared reason, then
    /// the usual `state_change`. Returns `true` if a fault was cleared;
    /// outside `Fault` this is a no-op returning `false`.
    pub fn recover(&mut self) -> bool {
        let SequencerState::Fault { reason } = &self.state else {
            return false;
        };
        let next = if self.calibrated {
            SequencerState::Idle
        } else {
            SequencerState::PowerOn
        };
        self.tracer.event(
            "recovered",
            &[
                ("reason", reason.as_str().into()),
                ("to", state_label(&next).into()),
            ],
        );
        self.goto(next);
        true
    }

    /// Whether a calibration has completed since the last reset.
    #[must_use]
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Advances the watchdog one tick; trips to `Fault` when a state
    /// overstays its budget. Returns `true` if the watchdog fired.
    pub fn tick(&mut self) -> bool {
        if matches!(
            self.state,
            SequencerState::Idle | SequencerState::Fault { .. }
        ) {
            // Idle may legitimately wait forever; Fault is already latched.
            return false;
        }
        self.ticks_in_state += 1;
        if self.ticks_in_state > self.watchdog_limit {
            self.tracer.event(
                "watchdog_trip",
                &[
                    ("state", state_label(&self.state).into()),
                    ("ticks", self.ticks_in_state.into()),
                ],
            );
            self.goto(SequencerState::Fault {
                reason: "watchdog timeout".to_owned(),
            });
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SequencerAction as A;
    use SequencerEvent as E;
    use SequencerState as S;

    fn ready() -> MeasurementSequencer {
        let mut seq = MeasurementSequencer::new(4, 100).unwrap();
        seq.handle(E::SelfTestPassed).unwrap();
        seq.handle(E::CalibrationDone).unwrap();
        seq
    }

    #[test]
    fn happy_path_scans_all_channels_in_order() {
        let mut seq = ready();
        assert_eq!(seq.state(), &S::Idle);
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::MeasureChannel(0));
        for expected in [
            A::MeasureChannel(1),
            A::MeasureChannel(2),
            A::MeasureChannel(3),
        ] {
            assert_eq!(seq.handle(E::ChannelDone).unwrap(), expected);
        }
        assert_eq!(seq.handle(E::ChannelDone).unwrap(), A::Report);
        assert_eq!(seq.state(), &S::Idle);
        assert_eq!(seq.scans_completed(), 1);
        // a second pass works identically
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::MeasureChannel(0));
    }

    #[test]
    fn calibration_failure_faults() {
        let mut seq = MeasurementSequencer::new(4, 100).unwrap();
        seq.handle(E::SelfTestPassed).unwrap();
        seq.handle(E::CalibrationFailed).unwrap();
        assert!(matches!(seq.state(), S::Fault { .. }));
        // fault latches: further events do nothing
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::None);
        assert!(matches!(seq.state(), S::Fault { .. }));
        // reset recovers
        seq.handle(E::Reset).unwrap();
        assert_eq!(seq.state(), &S::PowerOn);
    }

    #[test]
    fn unexpected_event_faults_with_context() {
        let mut seq = ready();
        // ChannelDone while idle is a protocol violation
        seq.handle(E::ChannelDone).unwrap();
        match seq.state() {
            S::Fault { reason } => {
                assert!(reason.contains("ChannelDone"), "{reason}");
                assert!(reason.contains("Idle"), "{reason}");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn measurement_failure_faults_with_channel() {
        let mut seq = ready();
        seq.handle(E::StartScan).unwrap();
        seq.handle(E::ChannelDone).unwrap(); // now scanning channel 1
        assert_eq!(seq.handle(E::MeasurementFailed).unwrap(), A::None);
        match seq.state() {
            S::Fault { reason } => assert!(reason.contains("channel 1"), "{reason}"),
            other => panic!("expected fault, got {other:?}"),
        }
        // outside Scanning it is a protocol violation like any other event
        let mut idle = ready();
        idle.handle(E::MeasurementFailed).unwrap();
        assert!(matches!(idle.state(), S::Fault { .. }));
    }

    #[test]
    fn watchdog_trips_in_active_states_only() {
        let mut seq = ready();
        // Idle never times out
        for _ in 0..1000 {
            assert!(!seq.tick());
        }
        seq.handle(E::StartScan).unwrap();
        // Scanning does
        for _ in 0..100 {
            assert!(!seq.tick());
        }
        assert!(seq.tick(), "101st tick must fire the watchdog");
        assert!(matches!(seq.state(), S::Fault { reason } if reason.contains("watchdog")));
        // no double-fire
        assert!(!seq.tick());
    }

    #[test]
    fn event_progress_resets_watchdog() {
        let mut seq = ready();
        seq.handle(E::StartScan).unwrap();
        for _ in 0..90 {
            seq.tick();
        }
        // progress to the next channel: budget starts over
        seq.handle(E::ChannelDone).unwrap();
        for _ in 0..90 {
            assert!(!seq.tick());
        }
    }

    #[test]
    fn recover_returns_to_idle_once_calibrated() {
        let mut seq = ready();
        seq.handle(E::StartScan).unwrap();
        seq.handle(E::ChannelDone).unwrap();
        seq.handle(E::ChannelDone).unwrap();
        seq.handle(E::ChannelDone).unwrap();
        seq.handle(E::ChannelDone).unwrap(); // one full pass
        assert_eq!(seq.scans_completed(), 1);
        seq.handle(E::StartScan).unwrap();
        seq.handle(E::MeasurementFailed).unwrap();
        assert!(matches!(seq.state(), S::Fault { .. }));
        // recovery clears the latch but keeps progress state
        assert!(seq.recover());
        assert_eq!(seq.state(), &S::Idle);
        assert_eq!(seq.scans_completed(), 1, "recovery keeps the scan count");
        assert!(seq.is_calibrated());
        // and the instrument can scan again immediately
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::MeasureChannel(0));
    }

    #[test]
    fn recover_before_calibration_demands_a_power_on() {
        let mut seq = MeasurementSequencer::new(4, 100).unwrap();
        seq.handle(E::SelfTestPassed).unwrap();
        seq.handle(E::CalibrationFailed).unwrap();
        assert!(matches!(seq.state(), S::Fault { .. }));
        assert!(seq.recover());
        assert_eq!(
            seq.state(),
            &S::PowerOn,
            "an uncalibrated instrument must re-run power-on, not jump to Idle"
        );
    }

    #[test]
    fn recover_outside_fault_is_a_noop() {
        let mut seq = ready();
        assert!(!seq.recover());
        assert_eq!(seq.state(), &S::Idle);
        seq.handle(E::StartScan).unwrap();
        assert!(!seq.recover());
        assert_eq!(seq.state(), &S::Scanning { channel: 0 });
    }

    #[test]
    fn reset_clears_scan_count() {
        let mut seq = ready();
        seq.handle(E::StartScan).unwrap();
        for _ in 0..4 {
            seq.handle(E::ChannelDone).unwrap();
        }
        assert_eq!(seq.scans_completed(), 1);
        seq.handle(E::Reset).unwrap();
        assert_eq!(seq.scans_completed(), 0);
    }

    mod tracing {
        use super::*;
        use canti_obs::clock::VirtualClock;
        use canti_obs::ndjson::JsonValue;
        use canti_obs::trace::{Collector, RingCollector};
        use std::sync::Arc;

        fn traced(channels: usize, watchdog: u64) -> (MeasurementSequencer, Arc<RingCollector>) {
            let ring = Arc::new(RingCollector::new(256));
            let tracer = Tracer::new(
                Arc::clone(&ring) as Arc<dyn Collector>,
                Arc::new(VirtualClock::new()),
            );
            let seq = MeasurementSequencer::new(channels, watchdog)
                .unwrap()
                .with_tracer(tracer);
            (seq, ring)
        }

        /// `(name, from, to)` triples, with `-` for non-state-change events.
        fn stream(ring: &RingCollector) -> Vec<(String, String, String)> {
            ring.events()
                .iter()
                .map(|e| {
                    let get = |k: &str| match e.field(k) {
                        Some(JsonValue::Str(s)) => s.clone(),
                        _ => "-".to_owned(),
                    };
                    (e.name.clone(), get("from"), get("to"))
                })
                .collect()
        }

        fn owned(items: &[(&str, &str, &str)]) -> Vec<(String, String, String)> {
            items
                .iter()
                .map(|(a, b, c)| ((*a).to_owned(), (*b).to_owned(), (*c).to_owned()))
                .collect()
        }

        #[test]
        fn full_scan_emits_the_exact_ordered_event_stream() {
            let (mut seq, ring) = traced(2, 100);
            seq.handle(E::SelfTestPassed).unwrap();
            seq.handle(E::CalibrationDone).unwrap();
            seq.handle(E::StartScan).unwrap();
            seq.handle(E::ChannelDone).unwrap();
            seq.handle(E::ChannelDone).unwrap();
            assert_eq!(
                stream(&ring),
                owned(&[
                    ("state_change", "power_on", "calibrating"),
                    ("state_change", "calibrating", "idle"),
                    ("state_change", "idle", "scanning"),
                    ("state_change", "scanning", "scanning"),
                    ("state_change", "scanning", "idle"),
                ])
            );
            // the channel advance carries the new channel index
            let events = ring.events();
            assert_eq!(events[2].field("channel"), Some(&JsonValue::U64(0)));
            assert_eq!(events[3].field("channel"), Some(&JsonValue::U64(1)));
            // sequence numbers are gap-free and events are in emission order
            assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        }

        #[test]
        fn watchdog_trip_is_traced_before_the_fault_transition() {
            let (mut seq, ring) = traced(2, 3);
            seq.handle(E::SelfTestPassed).unwrap();
            seq.handle(E::CalibrationDone).unwrap();
            seq.handle(E::StartScan).unwrap();
            for _ in 0..3 {
                assert!(!seq.tick());
            }
            assert!(seq.tick());
            assert_eq!(
                stream(&ring),
                owned(&[
                    ("state_change", "power_on", "calibrating"),
                    ("state_change", "calibrating", "idle"),
                    ("state_change", "idle", "scanning"),
                    ("watchdog_trip", "-", "-"),
                    ("state_change", "scanning", "fault"),
                ])
            );
            let events = ring.events();
            assert_eq!(
                events[3].field("state"),
                Some(&JsonValue::Str("scanning".into()))
            );
            assert_eq!(events[3].field("ticks"), Some(&JsonValue::U64(4)));
            assert_eq!(
                events[4].field("reason"),
                Some(&JsonValue::Str("watchdog timeout".into()))
            );
        }

        #[test]
        fn measurement_failure_and_reset_are_traced() {
            let (mut seq, ring) = traced(4, 100);
            seq.handle(E::SelfTestPassed).unwrap();
            seq.handle(E::CalibrationDone).unwrap();
            seq.handle(E::StartScan).unwrap();
            seq.handle(E::ChannelDone).unwrap(); // now on channel 1
            seq.handle(E::MeasurementFailed).unwrap();
            seq.handle(E::Reset).unwrap();
            assert_eq!(
                stream(&ring),
                owned(&[
                    ("state_change", "power_on", "calibrating"),
                    ("state_change", "calibrating", "idle"),
                    ("state_change", "idle", "scanning"),
                    ("state_change", "scanning", "scanning"),
                    ("measurement_failed", "-", "-"),
                    ("state_change", "scanning", "fault"),
                    ("state_change", "fault", "power_on"),
                ])
            );
            let events = ring.events();
            assert_eq!(events[4].field("channel"), Some(&JsonValue::U64(1)));
            assert_eq!(
                events[5].field("reason"),
                Some(&JsonValue::Str("measurement failed on channel 1".into()))
            );
        }

        #[test]
        fn recovery_emits_the_exact_ordered_event_stream() {
            let (mut seq, ring) = traced(2, 100);
            seq.handle(E::SelfTestPassed).unwrap();
            seq.handle(E::CalibrationDone).unwrap();
            seq.handle(E::StartScan).unwrap();
            seq.handle(E::MeasurementFailed).unwrap();
            assert!(seq.recover());
            assert_eq!(
                stream(&ring),
                owned(&[
                    ("state_change", "power_on", "calibrating"),
                    ("state_change", "calibrating", "idle"),
                    ("state_change", "idle", "scanning"),
                    ("measurement_failed", "-", "-"),
                    ("state_change", "scanning", "fault"),
                    ("recovered", "-", "idle"),
                    ("state_change", "fault", "idle"),
                ])
            );
            // the recovered event carries the cleared reason
            let events = ring.events();
            assert_eq!(
                events[5].field("reason"),
                Some(&JsonValue::Str("measurement failed on channel 0".into()))
            );
            // the stream stays gap-free across the recovery
            assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        }

        #[test]
        fn latched_fault_emits_nothing_and_tracing_preserves_equality() {
            let (mut traced_seq, ring) = traced(4, 100);
            let mut plain = MeasurementSequencer::new(4, 100).unwrap();
            for event in [E::SelfTestPassed, E::CalibrationFailed, E::StartScan] {
                let a = traced_seq.handle(event.clone()).unwrap();
                let b = plain.handle(event).unwrap();
                assert_eq!(a, b, "tracing must not change actions");
            }
            assert_eq!(traced_seq, plain, "tracing must not change state");
            // the post-fault StartScan is swallowed by the latch: no event
            let names: Vec<_> = ring.events().iter().map(|e| e.name.clone()).collect();
            assert_eq!(names, vec!["state_change", "state_change"]);
        }
    }

    #[test]
    fn construction_validation() {
        assert!(MeasurementSequencer::new(0, 100).is_err());
        assert!(MeasurementSequencer::new(4, 0).is_err());
    }

    #[test]
    fn single_channel_sequencer() {
        let mut seq = MeasurementSequencer::new(1, 10).unwrap();
        seq.handle(E::SelfTestPassed).unwrap();
        seq.handle(E::CalibrationDone).unwrap();
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::MeasureChannel(0));
        assert_eq!(seq.handle(E::ChannelDone).unwrap(), A::Report);
    }
}
