//! The autonomous measurement sequencer: the on-chip controller FSM.
//!
//! "Enables autonomous device operation" ultimately means a state machine
//! next to the analog blocks: power up, self-calibrate the offset DACs,
//! scan the mux channels, report, repeat — with a watchdog so a stuck
//! analog step faults instead of hanging the instrument.
//!
//! The sequencer is deliberately event-driven and side-effect-free: the
//! surrounding system feeds it events ([`SequencerEvent`]) and executes
//! whatever [`SequencerAction`] it returns. That makes every transition
//! unit-testable without analog machinery.

use crate::DigitalError;

/// Controller states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerState {
    /// Just powered, nothing trusted yet.
    PowerOn,
    /// Offset calibration in progress.
    Calibrating,
    /// Calibrated and waiting for a scan trigger.
    Idle,
    /// Scanning the mux; `channel` is in progress.
    Scanning {
        /// Channel currently being measured.
        channel: usize,
    },
    /// Latched fault; only `Reset` leaves it.
    Fault {
        /// Human-readable cause.
        reason: String,
    },
}

/// Events fed to the sequencer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerEvent {
    /// Power-on self test passed.
    SelfTestPassed,
    /// The offset calibration routine finished.
    CalibrationDone,
    /// The offset calibration routine failed (e.g. DAC range exceeded).
    CalibrationFailed,
    /// Host/system requests a scan pass.
    StartScan,
    /// The current channel's measurement is complete.
    ChannelDone,
    /// The current channel's measurement failed (e.g. a non-finite or
    /// out-of-range output).
    MeasurementFailed,
    /// Fault acknowledgment / global reset.
    Reset,
}

/// Actions the surrounding system must execute after a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencerAction {
    /// Run the offset-calibration routine.
    RunCalibration,
    /// Select and measure `channel`.
    MeasureChannel(usize),
    /// A full scan finished; report the results.
    Report,
    /// Nothing to do.
    None,
}

/// The measurement controller.
///
/// # Examples
///
/// ```
/// use canti_digital::sequencer::{MeasurementSequencer, SequencerEvent, SequencerAction, SequencerState};
///
/// let mut seq = MeasurementSequencer::new(4, 1000)?;
/// assert_eq!(seq.handle(SequencerEvent::SelfTestPassed)?, SequencerAction::RunCalibration);
/// assert_eq!(seq.handle(SequencerEvent::CalibrationDone)?, SequencerAction::None);
/// assert_eq!(seq.handle(SequencerEvent::StartScan)?, SequencerAction::MeasureChannel(0));
/// # Ok::<(), canti_digital::DigitalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSequencer {
    state: SequencerState,
    channels: usize,
    /// Watchdog budget per state, in ticks.
    watchdog_limit: u64,
    ticks_in_state: u64,
    /// Completed scan passes since reset.
    scans_completed: u64,
}

impl MeasurementSequencer {
    /// Creates a sequencer for `channels` mux channels with a per-state
    /// watchdog budget of `watchdog_limit` ticks.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] for zero channels or a zero watchdog.
    pub fn new(channels: usize, watchdog_limit: u64) -> Result<Self, DigitalError> {
        if channels == 0 {
            return Err(DigitalError::NonPositive {
                what: "sequencer channels",
                value: 0.0,
            });
        }
        if watchdog_limit == 0 {
            return Err(DigitalError::NonPositive {
                what: "watchdog limit",
                value: 0.0,
            });
        }
        Ok(Self {
            state: SequencerState::PowerOn,
            channels,
            watchdog_limit,
            ticks_in_state: 0,
            scans_completed: 0,
        })
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> &SequencerState {
        &self.state
    }

    /// Completed scan passes since the last reset.
    #[must_use]
    pub fn scans_completed(&self) -> u64 {
        self.scans_completed
    }

    fn goto(&mut self, state: SequencerState) {
        self.state = state;
        self.ticks_in_state = 0;
    }

    /// Handles one event, returning the action to execute.
    ///
    /// Unexpected events in a state latch a [`SequencerState::Fault`] —
    /// silent event swallowing is how real sequencers end up in undefined
    /// states.
    ///
    /// # Errors
    ///
    /// Never errs currently; the `Result` reserves room for future
    /// hard-failure signaling.
    pub fn handle(&mut self, event: SequencerEvent) -> Result<SequencerAction, DigitalError> {
        use SequencerEvent as E;
        use SequencerState as S;

        // Reset works from anywhere.
        if event == E::Reset {
            self.goto(S::PowerOn);
            self.scans_completed = 0;
            return Ok(SequencerAction::None);
        }

        let (next, action) = match (&self.state, &event) {
            (S::PowerOn, E::SelfTestPassed) => (S::Calibrating, SequencerAction::RunCalibration),
            (S::Calibrating, E::CalibrationDone) => (S::Idle, SequencerAction::None),
            (S::Calibrating, E::CalibrationFailed) => (
                S::Fault {
                    reason: "offset calibration failed".to_owned(),
                },
                SequencerAction::None,
            ),
            (S::Idle, E::StartScan) => (
                S::Scanning { channel: 0 },
                SequencerAction::MeasureChannel(0),
            ),
            (S::Scanning { channel }, E::MeasurementFailed) => (
                S::Fault {
                    reason: format!("measurement failed on channel {channel}"),
                },
                SequencerAction::None,
            ),
            (S::Scanning { channel }, E::ChannelDone) => {
                let next_ch = channel + 1;
                if next_ch >= self.channels {
                    self.scans_completed += 1;
                    (S::Idle, SequencerAction::Report)
                } else {
                    (
                        S::Scanning { channel: next_ch },
                        SequencerAction::MeasureChannel(next_ch),
                    )
                }
            }
            (S::Fault { .. }, _) => (self.state.clone(), SequencerAction::None),
            (state, event) => (
                S::Fault {
                    reason: format!("unexpected {event:?} in {state:?}"),
                },
                SequencerAction::None,
            ),
        };
        self.goto(next);
        Ok(action)
    }

    /// Advances the watchdog one tick; trips to `Fault` when a state
    /// overstays its budget. Returns `true` if the watchdog fired.
    pub fn tick(&mut self) -> bool {
        if matches!(self.state, SequencerState::Idle | SequencerState::Fault { .. }) {
            // Idle may legitimately wait forever; Fault is already latched.
            return false;
        }
        self.ticks_in_state += 1;
        if self.ticks_in_state > self.watchdog_limit {
            self.goto(SequencerState::Fault {
                reason: "watchdog timeout".to_owned(),
            });
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SequencerAction as A;
    use SequencerEvent as E;
    use SequencerState as S;

    fn ready() -> MeasurementSequencer {
        let mut seq = MeasurementSequencer::new(4, 100).unwrap();
        seq.handle(E::SelfTestPassed).unwrap();
        seq.handle(E::CalibrationDone).unwrap();
        seq
    }

    #[test]
    fn happy_path_scans_all_channels_in_order() {
        let mut seq = ready();
        assert_eq!(seq.state(), &S::Idle);
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::MeasureChannel(0));
        for expected in [A::MeasureChannel(1), A::MeasureChannel(2), A::MeasureChannel(3)] {
            assert_eq!(seq.handle(E::ChannelDone).unwrap(), expected);
        }
        assert_eq!(seq.handle(E::ChannelDone).unwrap(), A::Report);
        assert_eq!(seq.state(), &S::Idle);
        assert_eq!(seq.scans_completed(), 1);
        // a second pass works identically
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::MeasureChannel(0));
    }

    #[test]
    fn calibration_failure_faults() {
        let mut seq = MeasurementSequencer::new(4, 100).unwrap();
        seq.handle(E::SelfTestPassed).unwrap();
        seq.handle(E::CalibrationFailed).unwrap();
        assert!(matches!(seq.state(), S::Fault { .. }));
        // fault latches: further events do nothing
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::None);
        assert!(matches!(seq.state(), S::Fault { .. }));
        // reset recovers
        seq.handle(E::Reset).unwrap();
        assert_eq!(seq.state(), &S::PowerOn);
    }

    #[test]
    fn unexpected_event_faults_with_context() {
        let mut seq = ready();
        // ChannelDone while idle is a protocol violation
        seq.handle(E::ChannelDone).unwrap();
        match seq.state() {
            S::Fault { reason } => {
                assert!(reason.contains("ChannelDone"), "{reason}");
                assert!(reason.contains("Idle"), "{reason}");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn measurement_failure_faults_with_channel() {
        let mut seq = ready();
        seq.handle(E::StartScan).unwrap();
        seq.handle(E::ChannelDone).unwrap(); // now scanning channel 1
        assert_eq!(seq.handle(E::MeasurementFailed).unwrap(), A::None);
        match seq.state() {
            S::Fault { reason } => assert!(reason.contains("channel 1"), "{reason}"),
            other => panic!("expected fault, got {other:?}"),
        }
        // outside Scanning it is a protocol violation like any other event
        let mut idle = ready();
        idle.handle(E::MeasurementFailed).unwrap();
        assert!(matches!(idle.state(), S::Fault { .. }));
    }

    #[test]
    fn watchdog_trips_in_active_states_only() {
        let mut seq = ready();
        // Idle never times out
        for _ in 0..1000 {
            assert!(!seq.tick());
        }
        seq.handle(E::StartScan).unwrap();
        // Scanning does
        for _ in 0..100 {
            assert!(!seq.tick());
        }
        assert!(seq.tick(), "101st tick must fire the watchdog");
        assert!(matches!(seq.state(), S::Fault { reason } if reason.contains("watchdog")));
        // no double-fire
        assert!(!seq.tick());
    }

    #[test]
    fn event_progress_resets_watchdog() {
        let mut seq = ready();
        seq.handle(E::StartScan).unwrap();
        for _ in 0..90 {
            seq.tick();
        }
        // progress to the next channel: budget starts over
        seq.handle(E::ChannelDone).unwrap();
        for _ in 0..90 {
            assert!(!seq.tick());
        }
    }

    #[test]
    fn reset_clears_scan_count() {
        let mut seq = ready();
        seq.handle(E::StartScan).unwrap();
        for _ in 0..4 {
            seq.handle(E::ChannelDone).unwrap();
        }
        assert_eq!(seq.scans_completed(), 1);
        seq.handle(E::Reset).unwrap();
        assert_eq!(seq.scans_completed(), 0);
    }

    #[test]
    fn construction_validation() {
        assert!(MeasurementSequencer::new(0, 100).is_err());
        assert!(MeasurementSequencer::new(4, 0).is_err());
    }

    #[test]
    fn single_channel_sequencer() {
        let mut seq = MeasurementSequencer::new(1, 10).unwrap();
        seq.handle(E::SelfTestPassed).unwrap();
        seq.handle(E::CalibrationDone).unwrap();
        assert_eq!(seq.handle(E::StartScan).unwrap(), A::MeasureChannel(0));
        assert_eq!(seq.handle(E::ChannelDone).unwrap(), A::Report);
    }
}
