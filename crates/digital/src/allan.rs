//! Allan deviation: the stability measure a detection limit is read from.
//!
//! A resonant mass sensor's resolution is set by how stable its oscillation
//! frequency is over the measurement interval. The (overlapped) Allan
//! deviation σ_y(τ) of the fractional-frequency record answers exactly
//! that: the minimum detectable relative frequency shift at averaging time
//! τ, hence (through the mass responsivity) the minimum detectable mass.

use canti_units::Seconds;

use crate::error::ensure_positive;
use crate::DigitalError;

/// A record of fractional-frequency samples y_i = (f_i − f₀)/f₀ taken at a
/// fixed interval τ₀.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyRecord {
    samples: Vec<f64>,
    tau0: Seconds,
}

impl FrequencyRecord {
    /// Wraps fractional-frequency samples at interval `tau0`.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] unless `tau0` is strictly positive.
    pub fn new(samples: Vec<f64>, tau0: Seconds) -> Result<Self, DigitalError> {
        ensure_positive("sample interval", tau0.value())?;
        Ok(Self { samples, tau0 })
    }

    /// Builds a record from absolute frequency readings and their nominal
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] unless `tau0` and `nominal` are positive.
    pub fn from_absolute(
        frequencies: &[f64],
        nominal: f64,
        tau0: Seconds,
    ) -> Result<Self, DigitalError> {
        ensure_positive("nominal frequency", nominal)?;
        Self::new(
            frequencies
                .iter()
                .map(|f| (f - nominal) / nominal)
                .collect(),
            tau0,
        )
    }

    /// The samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Base sampling interval τ₀.
    #[must_use]
    pub fn tau0(&self) -> Seconds {
        self.tau0
    }

    /// Overlapped Allan variance at τ = m·τ₀:
    ///
    /// σ_y²(mτ₀) = 1/(2·m²·(N−2m)) · Σ_{i=0}^{N-2m-1} (Σy_{i+m..i+2m} − Σy_{i..i+m})²
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] if fewer than `2m + 1` samples are
    /// available or `m == 0`.
    pub fn allan_variance(&self, m: usize) -> Result<f64, DigitalError> {
        if m == 0 {
            return Err(DigitalError::NonPositive {
                what: "averaging factor m",
                value: 0.0,
            });
        }
        let n = self.samples.len();
        if n <= 2 * m {
            return Err(DigitalError::InsufficientData {
                what: "allan variance",
                got: n,
                need: 2 * m + 1,
            });
        }
        // prefix sums for O(1) window sums
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for &y in &self.samples {
            prefix.push(prefix.last().expect("nonempty") + y);
        }
        let window = |i: usize| prefix[i + m] - prefix[i];
        let terms = n - 2 * m + 1;
        let mut acc = 0.0;
        for i in 0..terms {
            let d = window(i + m) - window(i);
            acc += d * d;
        }
        Ok(acc / (2.0 * (m as f64).powi(2) * terms as f64))
    }

    /// Overlapped Allan deviation σ_y(m·τ₀).
    ///
    /// # Errors
    ///
    /// As [`Self::allan_variance`].
    pub fn allan_deviation(&self, m: usize) -> Result<f64, DigitalError> {
        Ok(self.allan_variance(m)?.sqrt())
    }

    /// Allan deviation over a log-spaced set of averaging factors; returns
    /// `(τ, σ_y(τ))` pairs up to the longest computable τ.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] if even `m = 1` is not computable.
    pub fn allan_curve(&self) -> Result<Vec<(Seconds, f64)>, DigitalError> {
        let n = self.samples.len();
        if n < 3 {
            return Err(DigitalError::InsufficientData {
                what: "allan curve",
                got: n,
                need: 3,
            });
        }
        let mut out = Vec::new();
        let mut m = 1usize;
        while 2 * m < n {
            out.push((
                Seconds::new(self.tau0.value() * m as f64),
                self.allan_deviation(m)?,
            ));
            // ~3 points per octave
            m = ((m as f64) * 1.26).ceil() as usize;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn white_record(n: usize, sigma: f64, seed: u64) -> FrequencyRecord {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        FrequencyRecord::new(samples, Seconds::new(0.1)).unwrap()
    }

    #[test]
    fn white_fm_slope_minus_half() {
        // white frequency noise: sigma_y(tau) ~ tau^-1/2
        let rec = white_record(100_000, 1e-6, 1);
        let s1 = rec.allan_deviation(1).unwrap();
        let s100 = rec.allan_deviation(100).unwrap();
        let ratio = s1 / s100;
        assert!(
            (ratio - 10.0).abs() < 1.0,
            "tau x100 should reduce sigma x10, got {ratio}"
        );
    }

    #[test]
    fn allan_of_white_noise_at_m1_matches_sigma() {
        // for white y with std s: sigma_y(tau0) = s (expectation of
        // (y2-y1)^2/2 = s^2)
        let rec = white_record(200_000, 2e-6, 7);
        let s = rec.allan_deviation(1).unwrap();
        assert!((s - 2e-6).abs() / 2e-6 < 0.02, "sigma {s}");
    }

    #[test]
    fn constant_drift_gives_linear_tau() {
        // pure linear frequency drift: sigma_y(tau) = drift*tau/sqrt(2)
        let tau0 = 0.1;
        let drift_per_sample = 1e-9;
        let samples: Vec<f64> = (0..10_000).map(|i| i as f64 * drift_per_sample).collect();
        let rec = FrequencyRecord::new(samples, Seconds::new(tau0)).unwrap();
        let s10 = rec.allan_deviation(10).unwrap();
        let s100 = rec.allan_deviation(100).unwrap();
        assert!(
            (s100 / s10 - 10.0).abs() < 0.2,
            "drift slope +1: ratio {}",
            s100 / s10
        );
    }

    #[test]
    fn zero_noise_gives_zero_adev() {
        // constant offset: zero up to prefix-sum rounding residue
        let rec = FrequencyRecord::new(vec![5e-7; 1000], Seconds::new(1.0)).unwrap();
        assert!(rec.allan_deviation(1).unwrap() < 1e-18);
        assert!(rec.allan_deviation(100).unwrap() < 1e-18);
    }

    #[test]
    fn from_absolute_normalizes() {
        let rec =
            FrequencyRecord::from_absolute(&[100_001.0, 99_999.0], 100_000.0, Seconds::new(1.0))
                .unwrap();
        assert!((rec.samples()[0] - 1e-5).abs() < 1e-12);
        assert!((rec.samples()[1] + 1e-5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_log_spaced_and_bounded() {
        let rec = white_record(1000, 1e-6, 3);
        let curve = rec.allan_curve().unwrap();
        assert!(curve.len() > 5);
        // taus strictly increasing, all computable
        for pair in curve.windows(2) {
            assert!(pair[1].0.value() > pair[0].0.value());
        }
        let max_m = (1000 - 1) / 2;
        assert!(curve.last().unwrap().0.value() <= 0.1 * max_m as f64 + 1e-9);
    }

    #[test]
    fn errors() {
        let rec = white_record(10, 1e-6, 3);
        assert!(rec.allan_variance(0).is_err());
        assert!(rec.allan_variance(5).is_err());
        assert!(FrequencyRecord::new(vec![], Seconds::zero()).is_err());
        assert!(FrequencyRecord::new(vec![0.0, 0.0], Seconds::new(1.0))
            .unwrap()
            .allan_curve()
            .is_err());
        assert!(FrequencyRecord::from_absolute(&[1.0], 0.0, Seconds::new(1.0)).is_err());
    }
}
