//! Zero-crossing detection: analog oscillation → digital edges.
//!
//! The comparator squares up the sensed oscillation before the counter.
//! Hysteresis rejects noise-induced chatter near the threshold; input noise
//! still converts to timing jitter at a rate of `e_n / slew` seconds per
//! volt of noise — which is exactly why a larger oscillation amplitude
//! gives a quieter frequency readout.

use crate::error::ensure_positive;
use crate::DigitalError;

/// A comparator with symmetric hysteresis around zero.
///
/// # Examples
///
/// ```
/// use canti_digital::comparator::ZeroCrossingDetector;
///
/// let mut det = ZeroCrossingDetector::new(0.05)?;
/// let wave: Vec<f64> = (0..1000)
///     .map(|i| (2.0 * std::f64::consts::PI * 10.0 * i as f64 / 1000.0).sin())
///     .collect();
/// let edges = det.rising_edges(&wave);
/// assert_eq!(edges.len(), 10);
/// # Ok::<(), canti_digital::DigitalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZeroCrossingDetector {
    hysteresis: f64,
    state: bool,
}

impl ZeroCrossingDetector {
    /// Creates a detector with hysteresis half-width `hysteresis` (V): the
    /// output goes high above `+h`, low below `−h`.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] unless `hysteresis` is strictly positive.
    pub fn new(hysteresis: f64) -> Result<Self, DigitalError> {
        ensure_positive("comparator hysteresis", hysteresis)?;
        Ok(Self {
            hysteresis,
            state: false,
        })
    }

    /// The hysteresis half-width.
    #[must_use]
    pub fn hysteresis(&self) -> f64 {
        self.hysteresis
    }

    /// Processes one sample; returns `true` while the output is high.
    pub fn process(&mut self, x: f64) -> bool {
        if self.state {
            if x < -self.hysteresis {
                self.state = false;
            }
        } else if x > self.hysteresis {
            self.state = true;
        }
        self.state
    }

    /// Resets the output low.
    pub fn reset(&mut self) {
        self.state = false;
    }

    /// Returns the sub-sample times (in samples) of all rising output
    /// edges in `wave`, using linear interpolation across the `+h`
    /// threshold crossing.
    pub fn rising_edges(&mut self, wave: &[f64]) -> Vec<f64> {
        let mut edges = Vec::new();
        let mut prev = f64::NAN;
        for (i, &x) in wave.iter().enumerate() {
            let was = self.state;
            let now = self.process(x);
            if now && !was && i > 0 && prev.is_finite() {
                // interpolate crossing of +hysteresis between samples i-1, i
                let frac = if (x - prev).abs() > f64::MIN_POSITIVE {
                    ((self.hysteresis - prev) / (x - prev)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                edges.push((i - 1) as f64 + frac);
            }
            prev = x;
        }
        edges
    }

    /// RMS timing jitter (in seconds) induced by input voltage noise
    /// `noise_rms` on a sinusoid of amplitude `amplitude` at `frequency`:
    /// σ_t = e_n / (dV/dt at crossing) = e_n / (2π·f·A).
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] on non-positive amplitude or frequency.
    pub fn noise_jitter_rms(
        &self,
        noise_rms: f64,
        amplitude: f64,
        frequency: f64,
    ) -> Result<f64, DigitalError> {
        ensure_positive("oscillation amplitude", amplitude)?;
        ensure_positive("oscillation frequency", frequency)?;
        Ok(noise_rms / (2.0 * std::f64::consts::PI * frequency * amplitude))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, fs: f64, f: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn counts_cycles_of_clean_sine() {
        let mut det = ZeroCrossingDetector::new(0.01).unwrap();
        let wave = sine(100_000, 1e6, 5e3, 1.0);
        // 0.1 s of 5 kHz = 500 cycles
        let edges = det.rising_edges(&wave);
        assert_eq!(edges.len(), 500);
    }

    #[test]
    fn edge_spacing_matches_period() {
        let mut det = ZeroCrossingDetector::new(0.01).unwrap();
        let fs = 1e6;
        let wave = sine(100_000, fs, 9_973.0, 1.0); // deliberately not a divisor
        let edges = det.rising_edges(&wave);
        let spacings: Vec<f64> = edges.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = spacings.iter().sum::<f64>() / spacings.len() as f64;
        let period_samples = fs / 9_973.0;
        assert!(
            (mean - period_samples).abs() / period_samples < 1e-4,
            "mean spacing {mean}, expected {period_samples}"
        );
    }

    #[test]
    fn hysteresis_rejects_small_chatter() {
        let mut det = ZeroCrossingDetector::new(0.2).unwrap();
        // noise-like small signal never crosses +/-0.2
        let wave: Vec<f64> = (0..1000)
            .map(|i| 0.1 * ((i % 7) as f64 - 3.0) / 3.0)
            .collect();
        assert!(det.rising_edges(&wave).is_empty());
    }

    #[test]
    fn jitter_formula() {
        let det = ZeroCrossingDetector::new(0.01).unwrap();
        // 1 mV noise on 1 V amplitude at 100 kHz: 1e-3/(2pi*1e5) = 1.59 ns
        let j = det.noise_jitter_rms(1e-3, 1.0, 1e5).unwrap();
        assert!((j - 1.59e-9).abs() / 1.59e-9 < 0.01);
        // bigger amplitude, less jitter
        let j2 = det.noise_jitter_rms(1e-3, 2.0, 1e5).unwrap();
        assert!((j / j2 - 2.0).abs() < 1e-12);
        assert!(det.noise_jitter_rms(1e-3, 0.0, 1e5).is_err());
    }

    #[test]
    fn reset_restores_low_state() {
        let mut det = ZeroCrossingDetector::new(0.1).unwrap();
        det.process(1.0);
        assert!(det.process(0.0), "stays high inside hysteresis");
        det.reset();
        assert!(!det.process(0.0));
    }

    #[test]
    fn validation() {
        assert!(ZeroCrossingDetector::new(0.0).is_err());
        assert!(ZeroCrossingDetector::new(-0.1).is_err());
    }
}
