use std::fmt;

/// Error raised by `canti-digital` on invalid inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DigitalError {
    /// A quantity that must be strictly positive was zero or negative.
    NonPositive {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Not enough data for the requested measurement.
    InsufficientData {
        /// What was being measured.
        what: &'static str,
        /// Samples/edges available.
        got: usize,
        /// Samples/edges needed.
        need: usize,
    },
}

impl fmt::Display for DigitalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            Self::InsufficientData { what, got, need } => {
                write!(f, "insufficient data for {what}: got {got}, need {need}")
            }
        }
    }
}

impl std::error::Error for DigitalError {}

pub(crate) fn ensure_positive(what: &'static str, value: f64) -> Result<(), DigitalError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(DigitalError::NonPositive { what, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_error_and_display() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<DigitalError>();
        assert_eq!(
            DigitalError::InsufficientData {
                what: "allan deviation",
                got: 1,
                need: 3
            }
            .to_string(),
            "insufficient data for allan deviation: got 1, need 3"
        );
    }
}
