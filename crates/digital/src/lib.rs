//! # canti-digital — the on-chip digital readout
//!
//! "The readout block mainly consists of a digital counter to monitor the
//! resonant frequency of the sensor system." This crate models that block
//! and the analysis that turns counter readings into a mass resolution:
//!
//! * [`comparator`] — zero-crossing detection with hysteresis, converting
//!   the analog oscillation into edges,
//! * [`counter`] — direct (gated) and reciprocal frequency counters with
//!   their ±1-count quantization,
//! * [`allan`] — overlapped Allan deviation of a frequency record, the
//!   standard stability measure a detection limit is read from,
//! * [`clock`] — reference clock with ppm error and cycle jitter,
//! * [`sequencer`] — the autonomous measurement controller FSM
//!   (self-test → calibrate → scan → report, with a watchdog).
//!
//! # Examples
//!
//! ```
//! use canti_digital::comparator::ZeroCrossingDetector;
//! use canti_digital::counter::GatedCounter;
//! use canti_units::Seconds;
//!
//! // a clean 10 kHz square-ish wave sampled at 1 MHz
//! let fs = 1e6;
//! let wave: Vec<f64> = (0..1_000_000)
//!     .map(|i| (2.0 * std::f64::consts::PI * 10e3 * i as f64 / fs).sin())
//!     .collect();
//! let counter = GatedCounter::new(Seconds::new(0.1))?;
//! let f = counter.measure(&wave, fs)?;
//! assert!((f.value() - 10e3).abs() < 20.0);
//! # Ok::<(), canti_digital::DigitalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allan;
pub mod clock;
pub mod comparator;
pub mod counter;
pub mod sequencer;

mod error;

pub use error::DigitalError;
