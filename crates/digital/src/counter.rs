//! Frequency counters: the paper's "digital counter to monitor the
//! resonant frequency".
//!
//! Two classic architectures:
//!
//! * [`GatedCounter`] (direct counting) — count signal edges during a fixed
//!   gate time `T`; resolution is ±1 count → ±1/T Hz regardless of the
//!   signal frequency. Simple, but slow signals need long gates.
//! * [`ReciprocalCounter`] — time `N` whole signal periods against a fast
//!   reference clock; relative resolution is ±1 reference cycle over the
//!   measurement, i.e. Δf/f ≈ 1/(f_ref·T_meas): far better for the tens-of-
//!   kilohertz cantilever signals against an on-chip MHz reference.

use canti_units::{Hertz, Seconds};

use crate::comparator::ZeroCrossingDetector;
use crate::error::ensure_positive;
use crate::DigitalError;

/// Default comparator hysteresis used by the counters, as a fraction of
/// unit amplitude.
const DEFAULT_HYSTERESIS: f64 = 1e-3;

/// Direct (gated) frequency counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatedCounter {
    gate: Seconds,
}

impl GatedCounter {
    /// Creates a counter with gate time `gate`.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] unless the gate time is strictly positive.
    pub fn new(gate: Seconds) -> Result<Self, DigitalError> {
        ensure_positive("gate time", gate.value())?;
        Ok(Self { gate })
    }

    /// The gate time.
    #[must_use]
    pub fn gate_time(&self) -> Seconds {
        self.gate
    }

    /// Worst-case quantization error: ±1 count over the gate.
    #[must_use]
    pub fn quantization(&self) -> Hertz {
        Hertz::new(1.0 / self.gate.value())
    }

    /// Measures the frequency of `wave` (sampled at `fs`): counts whole
    /// edges within the first gate interval.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] if the record is shorter than the gate or
    /// contains fewer than one edge.
    pub fn measure(&self, wave: &[f64], fs: f64) -> Result<Hertz, DigitalError> {
        ensure_positive("sample rate", fs)?;
        let gate_samples = (self.gate.value() * fs).round() as usize;
        if wave.len() < gate_samples {
            return Err(DigitalError::InsufficientData {
                what: "gated count",
                got: wave.len(),
                need: gate_samples,
            });
        }
        let mut det = ZeroCrossingDetector::new(DEFAULT_HYSTERESIS).expect("positive hysteresis");
        let edges = det.rising_edges(&wave[..gate_samples]);
        if edges.is_empty() {
            return Err(DigitalError::InsufficientData {
                what: "signal edges in gate",
                got: 0,
                need: 1,
            });
        }
        // integer count, exactly like hardware: floor to whole edges
        Ok(Hertz::new(edges.len() as f64 / self.gate.value()))
    }
}

/// Reciprocal (period-averaging) frequency counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReciprocalCounter {
    reference: Hertz,
    periods: usize,
}

impl ReciprocalCounter {
    /// Creates a counter timing `periods` signal periods against a
    /// reference clock of `reference` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] on a non-positive reference or zero
    /// periods.
    pub fn new(reference: Hertz, periods: usize) -> Result<Self, DigitalError> {
        ensure_positive("reference clock", reference.value())?;
        if periods == 0 {
            return Err(DigitalError::NonPositive {
                what: "averaged periods",
                value: 0.0,
            });
        }
        Ok(Self { reference, periods })
    }

    /// The reference clock.
    #[must_use]
    pub fn reference(&self) -> Hertz {
        self.reference
    }

    /// Periods averaged per measurement.
    #[must_use]
    pub fn periods(&self) -> usize {
        self.periods
    }

    /// Relative quantization error ±1 reference cycle across the
    /// measurement of a signal at `f`: Δf/f = f/(N·f_ref).
    #[must_use]
    pub fn relative_quantization(&self, f: Hertz) -> f64 {
        f.value() / (self.periods as f64 * self.reference.value())
    }

    /// Measures frequency: finds `periods + 1` rising edges, quantizes the
    /// elapsed time to reference-clock cycles, divides.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] if the record holds too few edges.
    pub fn measure(&self, wave: &[f64], fs: f64) -> Result<Hertz, DigitalError> {
        ensure_positive("sample rate", fs)?;
        let mut det = ZeroCrossingDetector::new(DEFAULT_HYSTERESIS).expect("positive hysteresis");
        let edges = det.rising_edges(wave);
        if edges.len() < self.periods + 1 {
            return Err(DigitalError::InsufficientData {
                what: "signal periods",
                got: edges.len().saturating_sub(1),
                need: self.periods,
            });
        }
        let elapsed_samples = edges[self.periods] - edges[0];
        let elapsed_seconds = elapsed_samples / fs;
        // quantize to whole reference cycles, like the hardware counter
        let ref_cycles = (elapsed_seconds * self.reference.value()).round();
        let measured_period = ref_cycles / self.reference.value() / self.periods as f64;
        Ok(Hertz::new(1.0 / measured_period))
    }
}

/// Sweeps gate time and returns `(gate, |measured − true|)` pairs — the
/// resolution-vs-speed trade-off curve of the Figure 5 reproduction.
///
/// # Errors
///
/// Propagates measurement errors (e.g. record shorter than a gate).
pub fn gate_time_sweep(
    wave: &[f64],
    fs: f64,
    true_frequency: Hertz,
    gates: &[Seconds],
) -> Result<Vec<(Seconds, Hertz)>, DigitalError> {
    let mut out = Vec::with_capacity(gates.len());
    for &gate in gates {
        let counter = GatedCounter::new(gate)?;
        let f = counter.measure(wave, fs)?;
        out.push((gate, Hertz::new((f.value() - true_frequency.value()).abs())));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, fs: f64, f: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn gated_counter_within_quantization() {
        let fs = 1e6;
        let f_true = 84_321.0;
        let wave = sine(1_000_000, fs, f_true);
        let counter = GatedCounter::new(Seconds::new(0.5)).unwrap();
        let f = counter.measure(&wave, fs).unwrap();
        assert!(
            (f.value() - f_true).abs() <= counter.quantization().value(),
            "measured {f}, true {f_true}"
        );
    }

    #[test]
    fn longer_gate_better_resolution() {
        let fs = 1e6;
        let f_true = 84_321.4;
        let wave = sine(2_000_000, fs, f_true);
        let gates = [0.01, 0.1, 1.0].map(Seconds::new);
        let sweep = gate_time_sweep(&wave, fs, Hertz::new(f_true), &gates).unwrap();
        // error bound shrinks with the gate
        assert!(sweep[0].1.value() <= 1.0 / 0.01 + 1e-9);
        assert!(sweep[2].1.value() <= 1.0 / 1.0 + 1e-9);
        assert!(sweep[2].1.value() < sweep[0].1.value() + 1e-9);
    }

    #[test]
    fn reciprocal_counter_beats_gated_at_equal_time() {
        let fs = 2e6;
        let f_true = 73_456.7;
        let wave = sine(400_000, fs, f_true); // 0.2 s
                                              // gated with 0.1 s gate: +/- 10 Hz
        let gated = GatedCounter::new(Seconds::new(0.1)).unwrap();
        let fg = gated.measure(&wave, fs).unwrap();
        // reciprocal over ~0.1 s (7345 periods) against 10 MHz reference
        let recip = ReciprocalCounter::new(Hertz::from_megahertz(10.0), 7345).unwrap();
        let fr = recip.measure(&wave, fs).unwrap();
        let err_g = (fg.value() - f_true).abs();
        let err_r = (fr.value() - f_true).abs();
        assert!(
            err_r < err_g / 10.0,
            "reciprocal {err_r} Hz should beat gated {err_g} Hz"
        );
    }

    #[test]
    fn reciprocal_quantization_formula() {
        let c = ReciprocalCounter::new(Hertz::from_megahertz(10.0), 1000).unwrap();
        let rq = c.relative_quantization(Hertz::from_kilohertz(100.0));
        // 1e5/(1000*1e7) = 1e-5
        assert!((rq - 1e-5).abs() < 1e-15);
    }

    #[test]
    fn insufficient_data_errors() {
        let fs = 1e6;
        let wave = sine(1000, fs, 10e3); // 1 ms record
        let counter = GatedCounter::new(Seconds::new(0.1)).unwrap();
        assert!(matches!(
            counter.measure(&wave, fs),
            Err(DigitalError::InsufficientData { .. })
        ));
        let recip = ReciprocalCounter::new(Hertz::from_megahertz(1.0), 100).unwrap();
        assert!(recip.measure(&wave, fs).is_err());
        // flat signal: no edges
        let flat = vec![0.0; 200_000];
        let counter = GatedCounter::new(Seconds::new(0.1)).unwrap();
        assert!(counter.measure(&flat, fs).is_err());
    }

    #[test]
    fn validation() {
        assert!(GatedCounter::new(Seconds::zero()).is_err());
        assert!(ReciprocalCounter::new(Hertz::zero(), 10).is_err());
        assert!(ReciprocalCounter::new(Hertz::new(1e6), 0).is_err());
    }
}
