//! The admission front and the single-threaded serving engine.
//!
//! `Front` (crate-internal) bundles everything that must sit behind
//! one lock in the threaded service: the bounded queue, the request
//! spans, the serve tallies and the batch log. [`ServeEngine`] glues a
//! `Front` to a [`BatchExecutor`] into the deterministic, explicitly
//! pumped form the scripted determinism tests drive.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use canti_farm::{FarmObserver, JobSpec};
use canti_obs::trace::SpanGuard;
use canti_obs::ObsClock;

use crate::exec::BatchExecutor;
use crate::queue::{AdmissionQueue, BatchTrigger, FormedBatch, Pending, RejectReason};
use crate::response::{Disposition, ServeResponse};
use crate::ServeConfig;

/// Running tallies of everything the serving layer decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Submissions rejected at the door (queue full or draining).
    pub rejected: u64,
    /// Admitted requests that expired before entering a batch.
    pub expired: u64,
    /// Requests answered by a completed batch.
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Admitted requests answered [`RejectReason::ShardFailed`] because
    /// their shard died before their batch completed.
    pub failed: u64,
    /// Admitted requests evicted by brownout shedding.
    pub shed: u64,
    /// Requests answered straight from the content-addressed result
    /// cache (also counted in `admitted` and `completed`).
    pub cache_hits: u64,
    /// Requests that coalesced onto an identical in-flight leader (also
    /// counted in `admitted`; counted in `completed` when the leader's
    /// batch lands).
    pub coalesced: u64,
}

impl ServeStats {
    /// One-line human rendering.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "serve: {} admitted, {} rejected, {} expired, {} completed, {} failed, {} shed in {} batches ({} cache hits, {} coalesced)",
            self.admitted,
            self.rejected,
            self.expired,
            self.completed,
            self.failed,
            self.shed,
            self.batches,
            self.cache_hits,
            self.coalesced
        )
    }
}

/// One formed batch as the engine logged it: membership, trigger, seed.
///
/// The log is part of the determinism contract — two runs of the same
/// arrival script produce `==` batch logs at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Zero-based batch index.
    pub index: u64,
    /// What fired the batch.
    pub trigger: BatchTrigger,
    /// The farm seed the batch ran with.
    pub seed: u64,
    /// Member request ids in admission order.
    pub request_ids: Vec<u64>,
}

/// The lock-scoped half of the serving layer: admission, expiry, batch
/// formation, spans and tallies. No execution happens here — formed
/// batches are handed out for the caller to run, so the threaded
/// service can execute them outside its lock.
#[derive(Debug)]
pub(crate) struct Front {
    queue: AdmissionQueue,
    clock: Arc<dyn ObsClock>,
    observer: Option<FarmObserver>,
    instruments: Option<crate::exec::ServeInstruments>,
    spans: BTreeMap<u64, SpanGuard>,
    stats: ServeStats,
    batch_log: Vec<BatchRecord>,
    /// The shard's content-addressed result cache, shared with the
    /// executor. `None` with caching off.
    cache: Option<Arc<std::sync::Mutex<crate::cache::ReportCache>>>,
    /// Responses for requests answered from the cache at admission,
    /// buffered until the caller drains them with [`Self::take_hits`]
    /// (immediately after admit in the threaded service; at the next
    /// pump in the engine).
    hits: Vec<ServeResponse>,
}

impl Front {
    /// `instruments` must be the same set the executor records into —
    /// SLO windows and the request log live on the instrument struct
    /// itself (not in the name-keyed registry), so a second construction
    /// would silently split the debug views in half. Likewise `cache`
    /// must be the same handle the executor inserts into.
    pub(crate) fn new(
        config: ServeConfig,
        clock: Arc<dyn ObsClock>,
        observer: Option<FarmObserver>,
        instruments: Option<crate::exec::ServeInstruments>,
        cache: Option<Arc<std::sync::Mutex<crate::cache::ReportCache>>>,
    ) -> Self {
        Self {
            queue: AdmissionQueue::new(config),
            clock,
            observer,
            instruments,
            spans: BTreeMap::new(),
            stats: ServeStats::default(),
            batch_log: Vec::new(),
            cache,
            hits: Vec::new(),
        }
    }

    /// The shard's result-cache tallies (hits, misses, entries, ...),
    /// when caching is on.
    pub(crate) fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.cache.as_ref().map(|c| {
            c.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .stats()
        })
    }

    /// Drains the buffered cache-hit responses. Every hit response is
    /// terminal and already fully accounted (stats, counters, SLO,
    /// request log) — the caller only delivers it.
    pub(crate) fn take_hits(&mut self) -> Vec<ServeResponse> {
        std::mem::take(&mut self.hits)
    }

    pub(crate) fn stats(&self) -> ServeStats {
        self.stats
    }

    pub(crate) fn depth(&self) -> usize {
        self.queue.depth()
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.queue.is_draining()
    }

    pub(crate) fn batch_log(&self) -> &[BatchRecord] {
        &self.batch_log
    }

    pub(crate) fn next_wakeup_ns(&self) -> Option<u64> {
        self.queue.next_wakeup_ns()
    }

    pub(crate) fn instruments(&self) -> Option<&crate::exec::ServeInstruments> {
        self.instruments.as_ref()
    }

    /// Admits `job` (deadline relative to now, falling back to the
    /// config default) or rejects it, keeping tallies, the queue-depth
    /// gauge, the request span and the admission/rejection events.
    pub(crate) fn admit(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
    ) -> Result<u64, RejectReason> {
        self.admit_keyed(job, deadline_ns, None)
    }

    /// [`Self::admit`] with an explicit seed key (the global request id
    /// under a sharded front) — see
    /// [`crate::queue::AdmissionQueue::submit_keyed`].
    pub(crate) fn admit_keyed(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: Option<u64>,
    ) -> Result<u64, RejectReason> {
        self.admit_prioritized(job, deadline_ns, key, 0)
    }

    /// [`Self::admit_keyed`] with an explicit brownout priority class.
    pub(crate) fn admit_prioritized(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: Option<u64>,
        priority: u8,
    ) -> Result<u64, RejectReason> {
        let now_ns = self.clock.now_ns();
        let kind = job.kind();
        // Content-addressed fast path: a cached answer satisfies any
        // deadline, so the lookup precedes the feasibility check and the
        // capacity gate (a hit occupies no queue slot). Failed/draining
        // still refuse first, inside allocate_cached.
        if self.cache.is_some() && !self.queue.is_failed() && !self.queue.is_draining() {
            let job_key = crate::cache::job_key(&job);
            let hit = self
                .cache
                .as_ref()
                .expect("checked above")
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .lookup(job_key);
            match hit {
                Some(output) => {
                    let id = self
                        .queue
                        .allocate_cached()
                        .expect("failed/draining gated above");
                    return Ok(self.complete_hit(id, key.unwrap_or(id), kind, output, now_ns));
                }
                None => {
                    // no request field: the id is not allocated yet at
                    // miss time (the normal admission below assigns it)
                    if let Some(o) = &self.observer {
                        o.tracer().event("cache_miss", &[("kind", kind.into())]);
                    }
                    if let Some(ins) = &self.instruments {
                        ins.cache_miss.inc();
                        ins.timeline.record_delta("serve.cache_miss", 1, now_ns);
                    }
                }
            }
        }
        let submitted = match self.feasibility_reject(deadline_ns) {
            Some(reason) => Err(reason),
            None => self
                .queue
                .submit_prioritized(now_ns, job, deadline_ns, key, priority),
        };
        match submitted {
            Ok(admitted) => {
                let id = admitted.id();
                self.stats.admitted += 1;
                if let Some(o) = &self.observer {
                    // span fields carry the global key and trace id, so
                    // the chain stays joinable at any shard count
                    let ctx = canti_obs::TraceContext::from_admission(key.unwrap_or(id));
                    let span = o.tracer().span(
                        "request",
                        &[
                            ("request", ctx.request.into()),
                            ("trace", ctx.trace.into()),
                            ("kind", kind.into()),
                        ],
                    );
                    self.spans.insert(id, span);
                }
                if let Some(ins) = &self.instruments {
                    ins.admitted.inc();
                    ins.timeline.record_delta("serve.admitted", 1, now_ns);
                }
                match admitted {
                    crate::queue::Admitted::Queued(_) => self.observe_depth(),
                    crate::queue::Admitted::Coalesced { leader, .. } => {
                        // no depth change: the follower rides the
                        // leader's slot
                        self.stats.coalesced += 1;
                        if let Some(o) = &self.observer {
                            let ctx = canti_obs::TraceContext::from_admission(key.unwrap_or(id));
                            o.tracer().event(
                                "coalesced",
                                &[
                                    ("request", ctx.request.into()),
                                    ("trace", ctx.trace.into()),
                                    ("leader", leader.into()),
                                ],
                            );
                        }
                        if let Some(ins) = &self.instruments {
                            ins.coalesced.inc();
                            ins.timeline.record_delta("serve.coalesced", 1, now_ns);
                        }
                    }
                }
                Ok(id)
            }
            Err(reason) => {
                self.stats.rejected += 1;
                if let Some(o) = &self.observer {
                    o.tracer().event(
                        "request_rejected",
                        &[("kind", kind.into()), ("reason", reason.label().into())],
                    );
                }
                if let Some(ins) = &self.instruments {
                    ins.rejected.inc();
                    ins.timeline.record_delta("serve.rejected", 1, now_ns);
                }
                Err(reason)
            }
        }
    }

    /// One request answered from the result cache at admission: fully
    /// accounted (tallies, counters, SLO, request log, trace event) and
    /// buffered for [`Self::take_hits`]. No span opens — the request
    /// never enters the queue. On a virtual clock the lookup is
    /// instantaneous (`cache_ns` 0), so scripted traces stay pinned; on
    /// the wall clock `cache_ns` is the real lookup cost and the
    /// breakdown still tiles exactly.
    fn complete_hit(
        &mut self,
        id: u64,
        seed_key: u64,
        kind: &'static str,
        output: canti_farm::JobOutput,
        admitted_ns: u64,
    ) -> u64 {
        self.stats.admitted += 1;
        self.stats.cache_hits += 1;
        self.stats.completed += 1;
        let trace = canti_obs::trace_id(seed_key);
        let done_ns = self.clock.now_ns();
        let cache_ns = done_ns.saturating_sub(admitted_ns);
        if let Some(o) = &self.observer {
            o.tracer().event(
                "cache_hit",
                &[
                    ("request", seed_key.into()),
                    ("trace", trace.into()),
                    ("kind", kind.into()),
                ],
            );
        }
        if let Some(ins) = &self.instruments {
            ins.admitted.inc();
            ins.cache_hit.inc();
            ins.completed.inc();
            ins.request_latency_ns.record(cache_ns);
            ins.slo.record(cache_ns, done_ns);
            ins.timeline.record_delta("serve.admitted", 1, admitted_ns);
            ins.timeline.record_delta("serve.cache_hit", 1, done_ns);
            ins.timeline.record_delta("serve.completed", 1, done_ns);
            ins.timeline
                .record_delta("serve.request_latency_ns", cache_ns, done_ns);
            ins.timeline
                .record_delta("serve.cache_ns", cache_ns, done_ns);
            ins.requests.push(canti_obs::RequestRecord {
                request: seed_key,
                trace,
                outcome: "cache_hit",
                batch: None,
                latency_ns: cache_ns,
                queue_ns: 0,
                form_ns: 0,
                exec_ns: 0,
                respond_ns: 0,
                finished_ns: done_ns,
            });
        }
        self.hits.push(ServeResponse {
            request_id: id,
            trace,
            disposition: Disposition::CacheHit {
                latency_ns: cache_ns,
                breakdown: crate::response::LatencyBreakdown {
                    cache_ns,
                    ..Default::default()
                },
                result: Ok(output),
            },
        });
        id
    }

    /// The deadline-feasibility fast reject: refuses a request whose
    /// relative deadline is shorter than this shard's own p95
    /// admission-to-completion estimate. Opt-in via
    /// [`crate::FeasibilityConfig`] and inert until the latency
    /// histogram holds `min_samples` completions.
    fn feasibility_reject(&self, deadline_ns: Option<u64>) -> Option<RejectReason> {
        let policy = self.queue.config().feasibility?;
        let ins = self.instruments.as_ref()?;
        let deadline = deadline_ns.or(self.queue.config().default_deadline_ns)?;
        let snap = ins.request_latency_ns.snapshot();
        if snap.count >= policy.min_samples && deadline < snap.p95 {
            Some(RejectReason::Infeasible {
                needed_ns: snap.p95,
                deadline_ns: deadline,
            })
        } else {
            None
        }
    }

    /// Brownout shedding: evicts the lowest-priority waiting requests
    /// down to the configured high-water mark, answering each
    /// [`Disposition::Failed`] / [`RejectReason::Shed`]. Inert without a
    /// [`crate::BrownoutConfig`].
    pub(crate) fn take_shed(&mut self) -> Vec<ServeResponse> {
        let Some(policy) = self.queue.config().brownout else {
            return Vec::new();
        };
        let victims = self.queue.take_shed(policy.high_water);
        if victims.is_empty() {
            return Vec::new();
        }
        let now_ns = self.clock.now_ns();
        let mut responses = Vec::new();
        for p in &victims {
            self.stats.shed += 1;
            responses.push(self.abandon(
                p.id,
                p.key,
                p.trace,
                p.enqueued_ns,
                RejectReason::Shed,
                now_ns,
            ));
            // a shed leader takes its coalesced followers with it
            for f in &p.followers {
                self.stats.shed += 1;
                responses.push(self.abandon(
                    f.id,
                    f.key,
                    f.trace,
                    f.enqueued_ns,
                    RejectReason::Shed,
                    now_ns,
                ));
            }
        }
        self.observe_depth();
        responses
    }

    /// Marks the shard failed (later submissions get
    /// [`RejectReason::ShardFailed`]) and answers everything still
    /// queued terminally.
    pub(crate) fn fail_queued(&mut self) -> Vec<ServeResponse> {
        self.queue.fail();
        let victims = self.queue.take_all();
        let now_ns = self.clock.now_ns();
        let responses = victims
            .iter()
            .flat_map(|p| self.fail_pending_at(p, now_ns))
            .collect();
        self.observe_depth();
        responses
    }

    /// Answers one admitted request — and every follower coalesced onto
    /// it — [`RejectReason::ShardFailed`]. Used for batch members whose
    /// execution died underneath them.
    pub(crate) fn fail_pending(&mut self, p: &Pending) -> Vec<ServeResponse> {
        let now_ns = self.clock.now_ns();
        self.fail_pending_at(p, now_ns)
    }

    fn fail_pending_at(&mut self, p: &Pending, now_ns: u64) -> Vec<ServeResponse> {
        let mut out = Vec::with_capacity(1 + p.followers.len());
        self.stats.failed += 1;
        out.push(self.abandon(
            p.id,
            p.key,
            p.trace,
            p.enqueued_ns,
            RejectReason::ShardFailed,
            now_ns,
        ));
        for f in &p.followers {
            self.stats.failed += 1;
            out.push(self.abandon(
                f.id,
                f.key,
                f.trace,
                f.enqueued_ns,
                RejectReason::ShardFailed,
                now_ns,
            ));
        }
        out
    }

    /// Answers requests whose `Pending`s are gone (consumed by the batch
    /// that died) from what the ticket table still knows: `(local id,
    /// key, trace, enqueued_ns)` per request.
    pub(crate) fn fail_inflight(&mut self, known: &[(u64, u64, u64, u64)]) -> Vec<ServeResponse> {
        let now_ns = self.clock.now_ns();
        known
            .iter()
            .map(|&(id, key, trace, enqueued_ns)| {
                self.stats.failed += 1;
                self.abandon(
                    id,
                    key,
                    trace,
                    enqueued_ns,
                    RejectReason::ShardFailed,
                    now_ns,
                )
            })
            .collect()
    }

    /// Clears the failed mark after a restart.
    pub(crate) fn mark_recovered(&mut self) {
        self.queue.restore();
    }

    /// One abandoned request: span closed, SLO breached, debug record
    /// written, terminal [`Disposition::Failed`] response built. The
    /// caller bumps the matching `ServeStats` tally.
    fn abandon(
        &mut self,
        id: u64,
        key: u64,
        trace: u64,
        enqueued_ns: u64,
        reason: RejectReason,
        now_ns: u64,
    ) -> ServeResponse {
        let waited_ns = now_ns.saturating_sub(enqueued_ns);
        if let Some(o) = &self.observer {
            o.tracer().event(
                "request_abandoned",
                &[
                    ("request", key.into()),
                    ("trace", trace.into()),
                    ("reason", reason.label().into()),
                ],
            );
        }
        if let Some(ins) = &self.instruments {
            let (counter, series) = if matches!(reason, RejectReason::Shed) {
                (&ins.shed, "serve.shed")
            } else {
                (&ins.failed, "serve.failed")
            };
            counter.inc();
            ins.timeline.record_delta(series, 1, now_ns);
            // an abandoned request always burns error budget
            ins.slo.record_outcome(false, now_ns);
            ins.requests.push(canti_obs::RequestRecord {
                request: key,
                trace,
                outcome: reason.label(),
                batch: None,
                latency_ns: waited_ns,
                queue_ns: waited_ns,
                form_ns: 0,
                exec_ns: 0,
                respond_ns: 0,
                finished_ns: now_ns,
            });
        }
        if let Some(span) = self.spans.remove(&id) {
            span.end();
        }
        ServeResponse {
            request_id: id,
            trace,
            disposition: Disposition::Failed { reason },
        }
    }

    /// Expires overdue queued requests, answering each with
    /// [`Disposition::Expired`].
    pub(crate) fn take_expired(&mut self) -> Vec<ServeResponse> {
        let now_ns = self.clock.now_ns();
        let expired = self.queue.take_expired(now_ns);
        let responses: Vec<ServeResponse> = expired
            .into_iter()
            .map(|p: Pending| {
                self.stats.expired += 1;
                let waited_ns = now_ns.saturating_sub(p.enqueued_ns);
                if let Some(o) = &self.observer {
                    o.tracer().event(
                        "request_expired",
                        &[("request", p.key.into()), ("trace", p.trace.into())],
                    );
                }
                if let Some(ins) = &self.instruments {
                    ins.expired.inc();
                    ins.timeline.record_delta("serve.expired", 1, now_ns);
                    // an expiry always burns error budget, however
                    // briefly the request waited
                    ins.slo.record_outcome(false, now_ns);
                    ins.requests.push(canti_obs::RequestRecord {
                        request: p.key,
                        trace: p.trace,
                        outcome: "expired",
                        batch: None,
                        latency_ns: waited_ns,
                        queue_ns: waited_ns,
                        form_ns: 0,
                        exec_ns: 0,
                        respond_ns: 0,
                        finished_ns: now_ns,
                    });
                }
                if let Some(span) = self.spans.remove(&p.id) {
                    span.end();
                }
                ServeResponse {
                    request_id: p.id,
                    trace: p.trace,
                    disposition: Disposition::Expired {
                        waited_ns,
                        deadline_ns: p.deadline_ns.unwrap_or(now_ns),
                    },
                }
            })
            .collect();
        if !responses.is_empty() {
            self.observe_depth();
        }
        responses
    }

    /// Releases every currently ready batch (size threshold first, then
    /// linger), logging each.
    pub(crate) fn form_ready(&mut self) -> Vec<FormedBatch> {
        let now_ns = self.clock.now_ns();
        let mut batches = Vec::new();
        while let Some(batch) = self.queue.pop_ready(now_ns) {
            self.log_batch(&batch);
            batches.push(batch);
        }
        if !batches.is_empty() {
            self.observe_depth();
        }
        batches
    }

    /// Stops admission and releases the remaining queue as drain
    /// batches.
    pub(crate) fn begin_drain(&mut self) -> Vec<FormedBatch> {
        let now_ns = self.clock.now_ns();
        self.queue.begin_drain();
        let mut batches = Vec::new();
        while let Some(batch) = self.queue.pop_drain(now_ns) {
            self.log_batch(&batch);
            batches.push(batch);
        }
        self.observe_depth();
        batches
    }

    /// Closes the request spans of completed responses and bumps the
    /// completion tallies (batch metrics themselves are recorded by the
    /// executor).
    pub(crate) fn finish(&mut self, responses: &[ServeResponse]) {
        for r in responses {
            if let Some(span) = self.spans.remove(&r.request_id) {
                span.end();
            }
            if matches!(r.disposition, Disposition::Completed { .. }) {
                self.stats.completed += 1;
            }
        }
        self.stats.batches = self.queue.batches_formed();
    }

    fn log_batch(&mut self, batch: &FormedBatch) {
        self.batch_log.push(BatchRecord {
            index: batch.index,
            trigger: batch.trigger,
            seed: batch.seed,
            request_ids: batch.request_ids(),
        });
    }

    fn observe_depth(&self) {
        if let Some(ins) = &self.instruments {
            let depth = self.queue.depth();
            ins.queue_depth.set(depth as i64);
            // sampled whenever the depth changes; the cadence depends on
            // batch formation, so this series is not shard-invariant
            ins.timeline
                .sample("serve.queue_depth", depth as u64, self.clock.now_ns());
        }
    }
}

/// The single-threaded serving engine: submit requests, then [`pump`]
/// whenever the clock has moved (or a threshold may have been crossed)
/// to expire, batch and execute them.
///
/// This is the deterministic form of the serving layer: given the same
/// [`ServeConfig`] and the same scripted sequence of submissions and
/// clock advances, the batch log, every response payload and the final
/// [`ServeStats`] are bit-identical at any worker count.
///
/// [`pump`]: Self::pump
#[derive(Debug)]
pub struct ServeEngine {
    front: Front,
    executor: BatchExecutor,
    failed: bool,
    restarts: u64,
}

impl ServeEngine {
    /// An engine under `config`, timing everything on `clock`.
    #[must_use]
    pub fn new(config: ServeConfig, clock: Arc<dyn ObsClock>) -> Self {
        // one result cache per shard, shared by front (lookups) and
        // executor (inserts)
        let cache = config
            .cache
            .map(|c| Arc::new(std::sync::Mutex::new(crate::cache::ReportCache::new(c))));
        let mut executor = BatchExecutor::new(config.threads, Arc::clone(&clock));
        if let Some(c) = &cache {
            executor = executor.with_report_cache(Arc::clone(c));
        }
        Self {
            front: Front::new(config, clock, None, None, cache),
            executor,
            failed: false,
            restarts: 0,
        }
    }

    /// Arms a [`canti_fault::ServeFaultPlan`]: this engine consumes the
    /// plan's slice for `shard`. An empty slice installs nothing at all,
    /// so a default plan is provably identical to no plan.
    #[must_use]
    pub fn with_chaos_plan(mut self, plan: &canti_fault::ServeFaultPlan, shard: usize) -> Self {
        let chaos = canti_fault::ServeChaos::new(plan, shard);
        if !chaos.is_empty() {
            self.executor = self
                .executor
                .with_chaos(Arc::new(std::sync::Mutex::new(chaos)));
        }
        self
    }

    /// Attaches a farm observer: serve counters/histograms, request and
    /// batch spans, SLO windows, the request log and the farm's own
    /// telemetry all record into it. For coherent timestamps construct
    /// the observer over the same clock the engine was given.
    #[must_use]
    pub fn with_observer(mut self, observer: FarmObserver) -> Self {
        let config = *self.front.queue.config();
        let instruments =
            crate::exec::ServeInstruments::new(&observer, config.slo, config.timeline);
        self.front = Front::new(
            config,
            Arc::clone(&self.front.clock),
            Some(observer.clone()),
            Some(instruments.clone()),
            self.front.cache.clone(), // keep the executor's cache handle
        );
        self.executor = self.executor.with_instruments(observer, instruments);
        self
    }

    /// Whether the engine's shard has died (executor panic) and awaits
    /// [`Self::resurrect`]. Submissions meanwhile are rejected with
    /// [`RejectReason::ShardFailed`]; pumps are no-ops.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Times the engine was resurrected after a shard failure.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Rebuilds the dead shard: a fresh executor over a **fresh** worker
    /// pool (same clock, cache, observer, instruments and chaos state),
    /// admission re-opened. Returns `false` when the engine is healthy.
    pub fn resurrect(&mut self) -> bool {
        if !self.failed {
            return false;
        }
        self.executor = self.executor.resurrected();
        self.front.mark_recovered();
        self.failed = false;
        self.restarts += 1;
        if let Some(ins) = self.executor.instruments() {
            ins.shard_restarts.inc();
        }
        if let Some(o) = self.executor.observer() {
            o.tracer()
                .event("shard_recovered", &[("restarts", self.restarts.into())]);
        }
        true
    }

    /// Submits a request without an explicit deadline (the config
    /// default, if any, applies).
    ///
    /// # Errors
    ///
    /// Rejected with a [`RejectReason`] when the queue is full or the
    /// engine is draining.
    pub fn submit(&mut self, job: JobSpec) -> Result<u64, RejectReason> {
        self.front.admit(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission if
    /// still queued.
    ///
    /// # Errors
    ///
    /// Rejected with a [`RejectReason`] when the queue is full or the
    /// engine is draining.
    pub fn submit_with_deadline(
        &mut self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<u64, RejectReason> {
        self.front.admit(job, Some(deadline_ns))
    }

    /// Submits a request with an explicit brownout priority class:
    /// higher priorities survive shedding longer. [`Self::submit`] uses
    /// priority 0.
    ///
    /// # Errors
    ///
    /// Rejected with a [`RejectReason`] when the queue is full, the
    /// engine is draining, or the shard has failed.
    pub fn submit_prioritized(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        priority: u8,
    ) -> Result<u64, RejectReason> {
        self.front
            .admit_prioritized(job, deadline_ns, None, priority)
    }

    /// Submission with an explicit seed key: the sharded front passes
    /// the global request id so payloads are shard-count-invariant.
    pub(crate) fn submit_keyed(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: u64,
    ) -> Result<u64, RejectReason> {
        self.front.admit_keyed(job, deadline_ns, Some(key))
    }

    /// The shared instrument set, when observed (for the sharded front's
    /// failover counters).
    pub(crate) fn instruments(&self) -> Option<&crate::exec::ServeInstruments> {
        self.front.instruments()
    }

    /// Advances the serving state machine at the current clock reading:
    /// expires overdue requests, sheds over the brownout mark, then
    /// forms and executes every ready batch. Returns all responses
    /// produced — expirations, then shed evictions, then batch
    /// completions in admission order. A failed engine pumps to nothing
    /// until resurrected (its queue was already answered terminally).
    pub fn pump(&mut self) -> Vec<ServeResponse> {
        if self.failed {
            return Vec::new();
        }
        // cache hits buffered since the last pump flush first: they were
        // admitted (and answered) before anything that follows
        let mut out = self.front.take_hits();
        out.extend(self.front.take_expired());
        out.extend(self.front.take_shed());
        let batches = self.front.form_ready();
        out.extend(self.run_batches(batches));
        self.front.finish_noop();
        out
    }

    /// Stops admission and flushes everything still queued as final
    /// batches (expiring overdue requests first). After draining, every
    /// submission is rejected with [`RejectReason::Draining`].
    pub fn drain(&mut self) -> Vec<ServeResponse> {
        if self.failed {
            self.front.queue.begin_drain();
            return Vec::new();
        }
        let mut out = self.front.take_hits();
        out.extend(self.front.take_expired());
        let batches = self.front.begin_drain();
        out.extend(self.run_batches(batches));
        out
    }

    /// Executes formed batches, converting an executor panic (a chaos
    /// kill or a real bug) into terminal answers for **every**
    /// outstanding request — the batch that died, the batches formed
    /// behind it, and everything still queued. No admitted request is
    /// ever left hanging.
    fn run_batches(&mut self, batches: Vec<FormedBatch>) -> Vec<ServeResponse> {
        let mut out = Vec::new();
        let mut batches = batches.into_iter();
        while let Some(batch) = batches.next() {
            let members = batch.items.clone();
            let index = batch.index;
            match catch_unwind(AssertUnwindSafe(|| self.executor.execute(batch))) {
                Ok(responses) => {
                    self.front.finish(&responses);
                    out.extend(responses);
                }
                Err(_) => {
                    self.failed = true;
                    if let Some(o) = self.executor.observer() {
                        o.tracer().event("shard_down", &[("batch", index.into())]);
                    }
                    for p in &members {
                        out.extend(self.front.fail_pending(p));
                    }
                    for stranded in batches.by_ref() {
                        for p in &stranded.items {
                            out.extend(self.front.fail_pending(p));
                        }
                    }
                    out.extend(self.front.fail_queued());
                    break;
                }
            }
        }
        out
    }

    /// Requests currently queued.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.front.depth()
    }

    /// Whether the engine has drained and admits nothing new.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.front.is_draining()
    }

    /// The earliest future instant at which queued state can change on
    /// its own (linger or deadline); `None` while the queue is empty.
    #[must_use]
    pub fn next_wakeup_ns(&self) -> Option<u64> {
        self.front.next_wakeup_ns()
    }

    /// The running tallies.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.front.stats()
    }

    /// The result cache's counters, when [`ServeConfig::cache`] is set.
    #[must_use]
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.front.cache_stats()
    }

    /// Every batch formed so far, in formation order.
    #[must_use]
    pub fn batch_log(&self) -> &[BatchRecord] {
        self.front.batch_log()
    }

    /// The executor's observer, if one was attached.
    #[must_use]
    pub fn observer(&self) -> Option<&FarmObserver> {
        self.executor.observer()
    }

    /// The SLO tracker scoring this engine's requests (present once an
    /// observer is attached).
    #[must_use]
    pub fn slo(&self) -> Option<Arc<canti_obs::SloTracker>> {
        self.front.instruments().map(|i| Arc::clone(&i.slo))
    }

    /// The bounded finished-request log behind `/debug/requests`
    /// (present once an observer is attached).
    #[must_use]
    pub fn request_log(&self) -> Option<Arc<canti_obs::RequestLog>> {
        self.front.instruments().map(|i| Arc::clone(&i.requests))
    }

    /// The per-window timeline recorder behind `/debug/timeline`
    /// (present once an observer is attached).
    #[must_use]
    pub fn timeline(&self) -> Option<Arc<canti_obs::TimelineRecorder>> {
        self.front.instruments().map(|i| Arc::clone(&i.timeline))
    }
}

impl Front {
    /// Keeps `stats.batches` in step even on pumps that formed nothing.
    fn finish_noop(&mut self) {
        self.stats.batches = self.queue.batches_formed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_farm::ProbeMode;
    use canti_obs::VirtualClock;

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    fn engine(clock: &Arc<VirtualClock>, config: ServeConfig) -> ServeEngine {
        ServeEngine::new(config, Arc::clone(clock) as Arc<dyn ObsClock>)
    }

    #[test]
    fn size_threshold_executes_a_batch() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 2,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        assert_eq!(e.submit(probe(1.0)), Ok(0));
        assert_eq!(e.submit(probe(2.0)), Ok(1));
        assert_eq!(e.submit(probe(3.0)), Ok(2));
        let responses = e.pump();
        assert_eq!(responses.len(), 2, "one full batch fires, one queued");
        assert_eq!(e.queue_depth(), 1);
        assert_eq!(e.batch_log().len(), 1);
        assert_eq!(e.batch_log()[0].trigger, BatchTrigger::Size);
        assert_eq!(e.batch_log()[0].request_ids, vec![0, 1]);
        assert_eq!(e.stats().completed, 2);
    }

    #[test]
    fn linger_fires_only_after_the_clock_advances() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 8,
                linger_ns: 1_000,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        e.submit(probe(1.0)).unwrap();
        assert!(e.pump().is_empty(), "no time passed, nothing fires");
        clock.advance_ns(999);
        assert!(e.pump().is_empty(), "1 ns short of the linger");
        clock.advance_ns(1);
        let responses = e.pump();
        assert_eq!(responses.len(), 1);
        assert_eq!(e.batch_log()[0].trigger, BatchTrigger::Linger);
        match &responses[0].disposition {
            Disposition::Completed { latency_ns, .. } => assert_eq!(*latency_ns, 1_000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadlines_expire_before_batching() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 8,
                linger_ns: 500,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        e.submit_with_deadline(probe(1.0), 400).unwrap();
        e.submit(probe(2.0)).unwrap();
        clock.advance_ns(500); // linger AND deadline both due
        let responses = e.pump();
        assert_eq!(responses.len(), 2);
        assert_eq!(
            responses[0].disposition,
            Disposition::Expired {
                waited_ns: 500,
                deadline_ns: 400
            },
            "expiry wins over batching"
        );
        assert!(responses[1].disposition.is_ok());
        assert_eq!(e.batch_log()[0].request_ids, vec![1]);
        assert_eq!(e.stats().expired, 1);
    }

    #[test]
    fn drain_flushes_and_then_rejects() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 4,
                linger_ns: u64::MAX,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        for i in 0..3 {
            e.submit(probe(f64::from(i))).unwrap();
        }
        assert!(e.pump().is_empty(), "below threshold, linger unreachable");
        let responses = e.drain();
        assert_eq!(responses.len(), 3);
        assert_eq!(e.batch_log()[0].trigger, BatchTrigger::Drain);
        assert!(e.is_draining());
        assert_eq!(e.submit(probe(9.0)), Err(RejectReason::Draining));
        let stats = e.stats();
        assert_eq!(
            (
                stats.admitted,
                stats.rejected,
                stats.completed,
                stats.batches
            ),
            (3, 1, 3, 1)
        );
        assert!(stats.render().contains("3 admitted"));
    }

    #[test]
    fn queue_full_rejections_carry_the_capacity() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                queue_capacity: 2,
                max_batch: 8,
                linger_ns: u64::MAX,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        e.submit(probe(1.0)).unwrap();
        e.submit(probe(2.0)).unwrap();
        assert_eq!(
            e.submit(probe(3.0)),
            Err(RejectReason::QueueFull { capacity: 2 })
        );
        assert_eq!(e.stats().rejected, 1);
    }

    #[test]
    fn observed_engine_tracks_metrics_and_spans() {
        let (observer, ring) = FarmObserver::deterministic(8192);
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 2,
                threads: 2,
                ..ServeConfig::default()
            },
        )
        .with_observer(observer);
        e.submit(probe(1.0)).unwrap();
        e.submit(probe(2.0)).unwrap();
        let responses = e.pump();
        assert_eq!(responses.len(), 2);
        let m = e.observer().expect("observer").metrics();
        assert_eq!(m.counter("serve.admitted").get(), 2);
        assert_eq!(m.counter("serve.completed").get(), 2);
        assert_eq!(m.gauge("serve.queue_depth").get(), 0);
        // request spans open at admission and close after the batch
        let request_starts = ring
            .events()
            .iter()
            .filter(|e| e.name == "request" && e.kind == canti_obs::EventKind::SpanStart)
            .count();
        let request_ends = ring
            .events()
            .iter()
            .filter(|e| e.name == "request" && e.kind == canti_obs::EventKind::SpanEnd)
            .count();
        assert_eq!((request_starts, request_ends), (2, 2));
    }

    #[test]
    fn next_wakeup_reflects_linger_and_deadline() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 8,
                linger_ns: 1_000,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        assert_eq!(e.next_wakeup_ns(), None);
        clock.advance_ns(10);
        e.submit_with_deadline(probe(1.0), 400).unwrap();
        assert_eq!(e.next_wakeup_ns(), Some(410), "deadline before linger");
    }
}
