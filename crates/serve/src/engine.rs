//! The admission front and the single-threaded serving engine.
//!
//! `Front` (crate-internal) bundles everything that must sit behind
//! one lock in the threaded service: the bounded queue, the request
//! spans, the serve tallies and the batch log. [`ServeEngine`] glues a
//! `Front` to a [`BatchExecutor`] into the deterministic, explicitly
//! pumped form the scripted determinism tests drive.

use std::collections::BTreeMap;
use std::sync::Arc;

use canti_farm::{FarmObserver, JobSpec};
use canti_obs::trace::SpanGuard;
use canti_obs::ObsClock;

use crate::exec::BatchExecutor;
use crate::queue::{AdmissionQueue, BatchTrigger, FormedBatch, Pending, RejectReason};
use crate::response::{Disposition, ServeResponse};
use crate::ServeConfig;

/// Running tallies of everything the serving layer decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Submissions rejected at the door (queue full or draining).
    pub rejected: u64,
    /// Admitted requests that expired before entering a batch.
    pub expired: u64,
    /// Requests answered by a completed batch.
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
}

impl ServeStats {
    /// One-line human rendering.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "serve: {} admitted, {} rejected, {} expired, {} completed in {} batches",
            self.admitted, self.rejected, self.expired, self.completed, self.batches
        )
    }
}

/// One formed batch as the engine logged it: membership, trigger, seed.
///
/// The log is part of the determinism contract — two runs of the same
/// arrival script produce `==` batch logs at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Zero-based batch index.
    pub index: u64,
    /// What fired the batch.
    pub trigger: BatchTrigger,
    /// The farm seed the batch ran with.
    pub seed: u64,
    /// Member request ids in admission order.
    pub request_ids: Vec<u64>,
}

/// The lock-scoped half of the serving layer: admission, expiry, batch
/// formation, spans and tallies. No execution happens here — formed
/// batches are handed out for the caller to run, so the threaded
/// service can execute them outside its lock.
#[derive(Debug)]
pub(crate) struct Front {
    queue: AdmissionQueue,
    clock: Arc<dyn ObsClock>,
    observer: Option<FarmObserver>,
    instruments: Option<crate::exec::ServeInstruments>,
    spans: BTreeMap<u64, SpanGuard>,
    stats: ServeStats,
    batch_log: Vec<BatchRecord>,
}

impl Front {
    /// `instruments` must be the same set the executor records into —
    /// SLO windows and the request log live on the instrument struct
    /// itself (not in the name-keyed registry), so a second construction
    /// would silently split the debug views in half.
    pub(crate) fn new(
        config: ServeConfig,
        clock: Arc<dyn ObsClock>,
        observer: Option<FarmObserver>,
        instruments: Option<crate::exec::ServeInstruments>,
    ) -> Self {
        Self {
            queue: AdmissionQueue::new(config),
            clock,
            observer,
            instruments,
            spans: BTreeMap::new(),
            stats: ServeStats::default(),
            batch_log: Vec::new(),
        }
    }

    pub(crate) fn stats(&self) -> ServeStats {
        self.stats
    }

    pub(crate) fn depth(&self) -> usize {
        self.queue.depth()
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.queue.is_draining()
    }

    pub(crate) fn batch_log(&self) -> &[BatchRecord] {
        &self.batch_log
    }

    pub(crate) fn next_wakeup_ns(&self) -> Option<u64> {
        self.queue.next_wakeup_ns()
    }

    pub(crate) fn instruments(&self) -> Option<&crate::exec::ServeInstruments> {
        self.instruments.as_ref()
    }

    /// Admits `job` (deadline relative to now, falling back to the
    /// config default) or rejects it, keeping tallies, the queue-depth
    /// gauge, the request span and the admission/rejection events.
    pub(crate) fn admit(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
    ) -> Result<u64, RejectReason> {
        self.admit_keyed(job, deadline_ns, None)
    }

    /// [`Self::admit`] with an explicit seed key (the global request id
    /// under a sharded front) — see
    /// [`crate::queue::AdmissionQueue::submit_keyed`].
    pub(crate) fn admit_keyed(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: Option<u64>,
    ) -> Result<u64, RejectReason> {
        let now_ns = self.clock.now_ns();
        let kind = job.kind();
        match self.queue.submit_keyed(now_ns, job, deadline_ns, key) {
            Ok(id) => {
                self.stats.admitted += 1;
                if let Some(o) = &self.observer {
                    // span fields carry the global key and trace id, so
                    // the chain stays joinable at any shard count
                    let ctx = canti_obs::TraceContext::from_admission(key.unwrap_or(id));
                    let span = o.tracer().span(
                        "request",
                        &[
                            ("request", ctx.request.into()),
                            ("trace", ctx.trace.into()),
                            ("kind", kind.into()),
                        ],
                    );
                    self.spans.insert(id, span);
                }
                self.observe_depth();
                if let Some(ins) = &self.instruments {
                    ins.admitted.inc();
                    ins.timeline.record_delta("serve.admitted", 1, now_ns);
                }
                Ok(id)
            }
            Err(reason) => {
                self.stats.rejected += 1;
                if let Some(o) = &self.observer {
                    o.tracer().event(
                        "request_rejected",
                        &[("kind", kind.into()), ("reason", reason.label().into())],
                    );
                }
                if let Some(ins) = &self.instruments {
                    ins.rejected.inc();
                    ins.timeline.record_delta("serve.rejected", 1, now_ns);
                }
                Err(reason)
            }
        }
    }

    /// Expires overdue queued requests, answering each with
    /// [`Disposition::Expired`].
    pub(crate) fn take_expired(&mut self) -> Vec<ServeResponse> {
        let now_ns = self.clock.now_ns();
        let expired = self.queue.take_expired(now_ns);
        let responses: Vec<ServeResponse> = expired
            .into_iter()
            .map(|p: Pending| {
                self.stats.expired += 1;
                let waited_ns = now_ns.saturating_sub(p.enqueued_ns);
                if let Some(o) = &self.observer {
                    o.tracer().event(
                        "request_expired",
                        &[("request", p.key.into()), ("trace", p.trace.into())],
                    );
                }
                if let Some(ins) = &self.instruments {
                    ins.expired.inc();
                    ins.timeline.record_delta("serve.expired", 1, now_ns);
                    // an expiry always burns error budget, however
                    // briefly the request waited
                    ins.slo.record_outcome(false, now_ns);
                    ins.requests.push(canti_obs::RequestRecord {
                        request: p.key,
                        trace: p.trace,
                        outcome: "expired",
                        batch: None,
                        latency_ns: waited_ns,
                        queue_ns: waited_ns,
                        form_ns: 0,
                        exec_ns: 0,
                        respond_ns: 0,
                        finished_ns: now_ns,
                    });
                }
                if let Some(span) = self.spans.remove(&p.id) {
                    span.end();
                }
                ServeResponse {
                    request_id: p.id,
                    trace: p.trace,
                    disposition: Disposition::Expired {
                        waited_ns,
                        deadline_ns: p.deadline_ns.unwrap_or(now_ns),
                    },
                }
            })
            .collect();
        if !responses.is_empty() {
            self.observe_depth();
        }
        responses
    }

    /// Releases every currently ready batch (size threshold first, then
    /// linger), logging each.
    pub(crate) fn form_ready(&mut self) -> Vec<FormedBatch> {
        let now_ns = self.clock.now_ns();
        let mut batches = Vec::new();
        while let Some(batch) = self.queue.pop_ready(now_ns) {
            self.log_batch(&batch);
            batches.push(batch);
        }
        if !batches.is_empty() {
            self.observe_depth();
        }
        batches
    }

    /// Stops admission and releases the remaining queue as drain
    /// batches.
    pub(crate) fn begin_drain(&mut self) -> Vec<FormedBatch> {
        let now_ns = self.clock.now_ns();
        self.queue.begin_drain();
        let mut batches = Vec::new();
        while let Some(batch) = self.queue.pop_drain(now_ns) {
            self.log_batch(&batch);
            batches.push(batch);
        }
        self.observe_depth();
        batches
    }

    /// Closes the request spans of completed responses and bumps the
    /// completion tallies (batch metrics themselves are recorded by the
    /// executor).
    pub(crate) fn finish(&mut self, responses: &[ServeResponse]) {
        for r in responses {
            if let Some(span) = self.spans.remove(&r.request_id) {
                span.end();
            }
            if matches!(r.disposition, Disposition::Completed { .. }) {
                self.stats.completed += 1;
            }
        }
        self.stats.batches = self.queue.batches_formed();
    }

    fn log_batch(&mut self, batch: &FormedBatch) {
        self.batch_log.push(BatchRecord {
            index: batch.index,
            trigger: batch.trigger,
            seed: batch.seed,
            request_ids: batch.request_ids(),
        });
    }

    fn observe_depth(&self) {
        if let Some(ins) = &self.instruments {
            let depth = self.queue.depth();
            ins.queue_depth.set(depth as i64);
            // sampled whenever the depth changes; the cadence depends on
            // batch formation, so this series is not shard-invariant
            ins.timeline
                .sample("serve.queue_depth", depth as u64, self.clock.now_ns());
        }
    }
}

/// The single-threaded serving engine: submit requests, then [`pump`]
/// whenever the clock has moved (or a threshold may have been crossed)
/// to expire, batch and execute them.
///
/// This is the deterministic form of the serving layer: given the same
/// [`ServeConfig`] and the same scripted sequence of submissions and
/// clock advances, the batch log, every response payload and the final
/// [`ServeStats`] are bit-identical at any worker count.
///
/// [`pump`]: Self::pump
#[derive(Debug)]
pub struct ServeEngine {
    front: Front,
    executor: BatchExecutor,
}

impl ServeEngine {
    /// An engine under `config`, timing everything on `clock`.
    #[must_use]
    pub fn new(config: ServeConfig, clock: Arc<dyn ObsClock>) -> Self {
        Self {
            front: Front::new(config, Arc::clone(&clock), None, None),
            executor: BatchExecutor::new(config.threads, clock),
        }
    }

    /// Attaches a farm observer: serve counters/histograms, request and
    /// batch spans, SLO windows, the request log and the farm's own
    /// telemetry all record into it. For coherent timestamps construct
    /// the observer over the same clock the engine was given.
    #[must_use]
    pub fn with_observer(mut self, observer: FarmObserver) -> Self {
        let config = *self.front.queue.config();
        let instruments =
            crate::exec::ServeInstruments::new(&observer, config.slo, config.timeline);
        self.front = Front::new(
            config,
            Arc::clone(&self.front.clock),
            Some(observer.clone()),
            Some(instruments.clone()),
        );
        self.executor = self.executor.with_instruments(observer, instruments);
        self
    }

    /// Submits a request without an explicit deadline (the config
    /// default, if any, applies).
    ///
    /// # Errors
    ///
    /// Rejected with a [`RejectReason`] when the queue is full or the
    /// engine is draining.
    pub fn submit(&mut self, job: JobSpec) -> Result<u64, RejectReason> {
        self.front.admit(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission if
    /// still queued.
    ///
    /// # Errors
    ///
    /// Rejected with a [`RejectReason`] when the queue is full or the
    /// engine is draining.
    pub fn submit_with_deadline(
        &mut self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<u64, RejectReason> {
        self.front.admit(job, Some(deadline_ns))
    }

    /// Submission with an explicit seed key: the sharded front passes
    /// the global request id so payloads are shard-count-invariant.
    pub(crate) fn submit_keyed(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: u64,
    ) -> Result<u64, RejectReason> {
        self.front.admit_keyed(job, deadline_ns, Some(key))
    }

    /// Advances the serving state machine at the current clock reading:
    /// expires overdue requests, then forms and executes every ready
    /// batch. Returns all responses produced, expirations first, then
    /// batch completions in admission order.
    pub fn pump(&mut self) -> Vec<ServeResponse> {
        let mut out = self.front.take_expired();
        for batch in self.front.form_ready() {
            let responses = self.executor.execute(batch);
            self.front.finish(&responses);
            out.extend(responses);
        }
        self.front.finish_noop();
        out
    }

    /// Stops admission and flushes everything still queued as final
    /// batches (expiring overdue requests first). After draining, every
    /// submission is rejected with [`RejectReason::Draining`].
    pub fn drain(&mut self) -> Vec<ServeResponse> {
        let mut out = self.front.take_expired();
        for batch in self.front.begin_drain() {
            let responses = self.executor.execute(batch);
            self.front.finish(&responses);
            out.extend(responses);
        }
        out
    }

    /// Requests currently queued.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.front.depth()
    }

    /// Whether the engine has drained and admits nothing new.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.front.is_draining()
    }

    /// The earliest future instant at which queued state can change on
    /// its own (linger or deadline); `None` while the queue is empty.
    #[must_use]
    pub fn next_wakeup_ns(&self) -> Option<u64> {
        self.front.next_wakeup_ns()
    }

    /// The running tallies.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.front.stats()
    }

    /// Every batch formed so far, in formation order.
    #[must_use]
    pub fn batch_log(&self) -> &[BatchRecord] {
        self.front.batch_log()
    }

    /// The executor's observer, if one was attached.
    #[must_use]
    pub fn observer(&self) -> Option<&FarmObserver> {
        self.executor.observer()
    }

    /// The SLO tracker scoring this engine's requests (present once an
    /// observer is attached).
    #[must_use]
    pub fn slo(&self) -> Option<Arc<canti_obs::SloTracker>> {
        self.front.instruments().map(|i| Arc::clone(&i.slo))
    }

    /// The bounded finished-request log behind `/debug/requests`
    /// (present once an observer is attached).
    #[must_use]
    pub fn request_log(&self) -> Option<Arc<canti_obs::RequestLog>> {
        self.front.instruments().map(|i| Arc::clone(&i.requests))
    }

    /// The per-window timeline recorder behind `/debug/timeline`
    /// (present once an observer is attached).
    #[must_use]
    pub fn timeline(&self) -> Option<Arc<canti_obs::TimelineRecorder>> {
        self.front.instruments().map(|i| Arc::clone(&i.timeline))
    }
}

impl Front {
    /// Keeps `stats.batches` in step even on pumps that formed nothing.
    fn finish_noop(&mut self) {
        self.stats.batches = self.queue.batches_formed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_farm::ProbeMode;
    use canti_obs::VirtualClock;

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    fn engine(clock: &Arc<VirtualClock>, config: ServeConfig) -> ServeEngine {
        ServeEngine::new(config, Arc::clone(clock) as Arc<dyn ObsClock>)
    }

    #[test]
    fn size_threshold_executes_a_batch() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 2,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        assert_eq!(e.submit(probe(1.0)), Ok(0));
        assert_eq!(e.submit(probe(2.0)), Ok(1));
        assert_eq!(e.submit(probe(3.0)), Ok(2));
        let responses = e.pump();
        assert_eq!(responses.len(), 2, "one full batch fires, one queued");
        assert_eq!(e.queue_depth(), 1);
        assert_eq!(e.batch_log().len(), 1);
        assert_eq!(e.batch_log()[0].trigger, BatchTrigger::Size);
        assert_eq!(e.batch_log()[0].request_ids, vec![0, 1]);
        assert_eq!(e.stats().completed, 2);
    }

    #[test]
    fn linger_fires_only_after_the_clock_advances() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 8,
                linger_ns: 1_000,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        e.submit(probe(1.0)).unwrap();
        assert!(e.pump().is_empty(), "no time passed, nothing fires");
        clock.advance_ns(999);
        assert!(e.pump().is_empty(), "1 ns short of the linger");
        clock.advance_ns(1);
        let responses = e.pump();
        assert_eq!(responses.len(), 1);
        assert_eq!(e.batch_log()[0].trigger, BatchTrigger::Linger);
        match &responses[0].disposition {
            Disposition::Completed { latency_ns, .. } => assert_eq!(*latency_ns, 1_000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadlines_expire_before_batching() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 8,
                linger_ns: 500,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        e.submit_with_deadline(probe(1.0), 400).unwrap();
        e.submit(probe(2.0)).unwrap();
        clock.advance_ns(500); // linger AND deadline both due
        let responses = e.pump();
        assert_eq!(responses.len(), 2);
        assert_eq!(
            responses[0].disposition,
            Disposition::Expired {
                waited_ns: 500,
                deadline_ns: 400
            },
            "expiry wins over batching"
        );
        assert!(responses[1].disposition.is_ok());
        assert_eq!(e.batch_log()[0].request_ids, vec![1]);
        assert_eq!(e.stats().expired, 1);
    }

    #[test]
    fn drain_flushes_and_then_rejects() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 4,
                linger_ns: u64::MAX,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        for i in 0..3 {
            e.submit(probe(f64::from(i))).unwrap();
        }
        assert!(e.pump().is_empty(), "below threshold, linger unreachable");
        let responses = e.drain();
        assert_eq!(responses.len(), 3);
        assert_eq!(e.batch_log()[0].trigger, BatchTrigger::Drain);
        assert!(e.is_draining());
        assert_eq!(e.submit(probe(9.0)), Err(RejectReason::Draining));
        let stats = e.stats();
        assert_eq!(
            (
                stats.admitted,
                stats.rejected,
                stats.completed,
                stats.batches
            ),
            (3, 1, 3, 1)
        );
        assert!(stats.render().contains("3 admitted"));
    }

    #[test]
    fn queue_full_rejections_carry_the_capacity() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                queue_capacity: 2,
                max_batch: 8,
                linger_ns: u64::MAX,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        e.submit(probe(1.0)).unwrap();
        e.submit(probe(2.0)).unwrap();
        assert_eq!(
            e.submit(probe(3.0)),
            Err(RejectReason::QueueFull { capacity: 2 })
        );
        assert_eq!(e.stats().rejected, 1);
    }

    #[test]
    fn observed_engine_tracks_metrics_and_spans() {
        let (observer, ring) = FarmObserver::deterministic(8192);
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 2,
                threads: 2,
                ..ServeConfig::default()
            },
        )
        .with_observer(observer);
        e.submit(probe(1.0)).unwrap();
        e.submit(probe(2.0)).unwrap();
        let responses = e.pump();
        assert_eq!(responses.len(), 2);
        let m = e.observer().expect("observer").metrics();
        assert_eq!(m.counter("serve.admitted").get(), 2);
        assert_eq!(m.counter("serve.completed").get(), 2);
        assert_eq!(m.gauge("serve.queue_depth").get(), 0);
        // request spans open at admission and close after the batch
        let request_starts = ring
            .events()
            .iter()
            .filter(|e| e.name == "request" && e.kind == canti_obs::EventKind::SpanStart)
            .count();
        let request_ends = ring
            .events()
            .iter()
            .filter(|e| e.name == "request" && e.kind == canti_obs::EventKind::SpanEnd)
            .count();
        assert_eq!((request_starts, request_ends), (2, 2));
    }

    #[test]
    fn next_wakeup_reflects_linger_and_deadline() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = engine(
            &clock,
            ServeConfig {
                max_batch: 8,
                linger_ns: 1_000,
                threads: 1,
                ..ServeConfig::default()
            },
        );
        assert_eq!(e.next_wakeup_ns(), None);
        clock.advance_ns(10);
        e.submit_with_deadline(probe(1.0), 400).unwrap();
        assert_eq!(e.next_wakeup_ns(), Some(410), "deadline before linger");
    }
}
