//! `canti-serve`: a batching request-serving layer over the sensor farm.
//!
//! The paper's endpoint is a single-chip instrument whose readout is
//! consumed by an external system; at array scale (many cantilevers,
//! many concurrent assays) that consumer becomes a *service*: concurrent
//! assay requests arrive independently and must be admitted, coalesced
//! into efficient farm batches, and answered — or refused — predictably.
//! This crate is that front end, std-only like the rest of the
//! workspace:
//!
//! * **Bounded admission** — [`queue::AdmissionQueue`] holds at most
//!   [`ServeConfig::queue_capacity`] waiting requests; submissions past
//!   that are rejected immediately with an explicit
//!   [`RejectReason::QueueFull`] instead of queueing unboundedly
//!   (backpressure by refusal, not by latency).
//! * **Micro-batching** — queued requests are coalesced into a single
//!   [`canti_farm::Farm`] batch when either the size threshold
//!   ([`ServeConfig::max_batch`]) is reached or the oldest waiting
//!   request has lingered for [`ServeConfig::linger_ns`]. Both decisions
//!   read the injected [`canti_obs::ObsClock`], never the OS clock.
//! * **Per-request deadlines** — a request still waiting when its
//!   deadline passes is answered [`Disposition::Expired`] rather than
//!   occupying a batch slot it can no longer use.
//! * **Graceful drain** — shutdown stops admitting (subsequent
//!   submissions get [`RejectReason::Draining`]), flushes everything
//!   still queued as final batches, fulfils every outstanding ticket and
//!   only then joins the batcher thread.
//!
//! # Two entry points, one core
//!
//! [`engine::ServeEngine`] is the single-threaded deterministic form:
//! callers submit and pump it explicitly, which is how the scripted
//! determinism tests drive it. [`service::ServeService`] wraps the same
//! admission/batching core with a background batcher thread and blocking
//! [`service::Ticket`]s for concurrent callers.
//!
//! # Determinism contract
//!
//! With a [`canti_obs::VirtualClock`] and a scripted arrival sequence,
//! the batches formed (membership, trigger, seed), every rejection and
//! expiry, and every report payload are **bit-identical at any farm
//! worker count**: batch formation is a pure function of
//! `(config, arrival script)` decided on one thread, and batch execution
//! inherits the farm's own worker-count-invariance. `tests/
//! serve_determinism.rs` pins this the same way `tests/
//! farm_determinism.rs` pins the farm.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use canti_obs::VirtualClock;
//! use canti_farm::{JobSpec, ProbeMode};
//! use canti_serve::{Disposition, ServeConfig, ServeEngine};
//!
//! let clock = Arc::new(VirtualClock::new());
//! let config = ServeConfig {
//!     max_batch: 2,
//!     ..ServeConfig::default()
//! };
//! let mut engine = ServeEngine::new(config, clock.clone());
//! engine.submit(JobSpec::Probe(ProbeMode::Value(1.0))).unwrap();
//! engine.submit(JobSpec::Probe(ProbeMode::Value(2.0))).unwrap();
//! // two queued requests hit the size threshold: one farm batch forms
//! let responses = engine.pump();
//! assert_eq!(responses.len(), 2);
//! assert!(matches!(responses[0].disposition, Disposition::Completed { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod exec;
pub mod queue;
pub mod response;
pub mod service;
pub mod shard;
pub mod supervisor;

pub use cache::{canonical_job_line, job_key, CacheConfig, CacheStats, JobKey, ReportCache};
pub use canti_fault::{ServeFaultEvent, ServeFaultKind, ServeFaultPlan};
pub use canti_obs::{SloConfig, TimelineConfig};
pub use engine::{BatchRecord, ServeEngine, ServeStats};
pub use exec::BatchExecutor;
pub use queue::{AdmissionQueue, BatchTrigger, FormedBatch, RejectReason};
pub use response::{Disposition, LatencyBreakdown, ServeResponse};
pub use service::{ServeService, Ticket};
pub use shard::{
    request_seed, route_failover, route_request, ShardHealth, ShardTicket, ShardedConfig,
    ShardedEngine, ShardedService,
};
pub use supervisor::{ShardSupervisor, SupervisorConfig};

/// Admission, batching and execution policy for the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests waiting for a batch; submissions past this are
    /// rejected with [`RejectReason::QueueFull`]. Clamped to ≥ 1.
    pub queue_capacity: usize,
    /// Size threshold: the batcher fires as soon as this many requests
    /// are queued. Clamped to ≥ 1.
    pub max_batch: usize,
    /// Linger deadline: a non-full batch fires once the *oldest* queued
    /// request has waited this long (on the serve clock).
    pub linger_ns: u64,
    /// Default per-request deadline, relative to admission, applied when
    /// a submission carries none. `None` disables default deadlines.
    pub default_deadline_ns: Option<u64>,
    /// Base serve seed. Each admitted request's RNG stream derives from
    /// [`shard::request_seed`] over this base and the request key, so a
    /// given arrival script replays to identical payloads — on any
    /// worker and shard count. (Batch `i` is still *recorded* with seed
    /// `batch_seed + i` in the batch log.)
    pub batch_seed: u64,
    /// Farm worker threads per batch (`0` = machine parallelism).
    pub threads: usize,
    /// SLO policy: window width, latency objective and retention for the
    /// deterministic fixed-window aggregator every finished request is
    /// scored against (completions by latency, expiries always breach).
    pub slo: SloConfig,
    /// Timeline policy: window width and retention for the per-window
    /// telemetry series (admissions, queue depth, per-stage latency)
    /// behind `/debug/timeline`. Recorded only when an observer is
    /// attached, like the SLO tracker.
    pub timeline: TimelineConfig,
    /// Deadline-feasibility fast reject at admission. `None` (default)
    /// disables the check, preserving pre-existing scripted traces.
    pub feasibility: Option<FeasibilityConfig>,
    /// Brownout shedding policy. `None` (default) disables shedding.
    pub brownout: Option<BrownoutConfig>,
    /// Content-addressed result caching and in-flight coalescing policy.
    /// `None` (default) disables both, preserving pre-existing scripted
    /// traces. When set, each request's RNG stream derives from the
    /// **content hash** of its spec instead of its admission id, so
    /// identical specs yield identical payload bits — the invariant that
    /// makes cached and recomputed answers bitwise interchangeable on
    /// any shard.
    pub cache: Option<CacheConfig>,
}

/// Policy for the deadline-feasibility fast reject: refuse a request at
/// the door ([`RejectReason::Infeasible`]) when its relative deadline is
/// shorter than the shard's own p95 admission-to-completion estimate,
/// read from the `serve.request_latency_ns` histogram. Only active on
/// observed engines — unobserved builds have no histogram to consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasibilityConfig {
    /// Completed-request samples the histogram must hold before the
    /// estimate is trusted; below this every deadline is admitted.
    pub min_samples: u64,
}

impl Default for FeasibilityConfig {
    fn default() -> Self {
        Self { min_samples: 32 }
    }
}

/// Policy for brownout shedding: once queue depth exceeds `high_water`,
/// the pump evicts the lowest-priority waiting requests (newest first
/// among equals) down to the mark, answering each
/// [`Disposition::Failed`] with [`RejectReason::Shed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Queue depth above which shedding starts.
    pub high_water: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self { high_water: 32 }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 16,
            linger_ns: 1_000_000, // 1 ms
            default_deadline_ns: None,
            batch_seed: 0x5E4E_2026,
            threads: 0,
            slo: SloConfig::default(),
            timeline: TimelineConfig::default(),
            feasibility: None,
            brownout: None,
            cache: None,
        }
    }
}

impl ServeConfig {
    /// The effective queue capacity (configured value, at least 1).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.queue_capacity.max(1)
    }

    /// The effective batch-size threshold (configured value, at least 1).
    #[must_use]
    pub fn batch_threshold(&self) -> usize {
        self.max_batch.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_degenerate_values() {
        let z = ServeConfig {
            queue_capacity: 0,
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert_eq!(z.capacity(), 1);
        assert_eq!(z.batch_threshold(), 1);
        let d = ServeConfig::default();
        assert_eq!(d.capacity(), 64);
        assert_eq!(d.batch_threshold(), 16);
    }
}
