//! The threaded serving front: concurrent submitters, one batcher.
//!
//! [`ServeService`] wraps the same admission/batching core as
//! [`crate::ServeEngine`] behind a mutex and runs a background batcher
//! thread. Submitters get an immediate admit/reject answer plus a
//! [`Ticket`] they can block on (or poll); the batcher forms batches
//! *under* the lock but executes them *outside* it, so admission stays
//! reject-fast while the farm computes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use canti_farm::{FarmObserver, JobSpec};
use canti_obs::{ObsClock, WallClock};

use crate::engine::{Front, ServeStats};
use crate::exec::BatchExecutor;
use crate::queue::RejectReason;
use crate::response::ServeResponse;
use crate::ServeConfig;

/// How long the batcher sleeps when the queue is empty and nothing can
/// change without a new submission (a submission kicks it immediately).
const IDLE_WAIT: Duration = Duration::from_millis(50);

/// A claim on one admitted request's eventual response.
///
/// Fulfilled exactly once — by batch completion, deadline expiry, or the
/// drain flush at shutdown. Dropping the ticket discards the response.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
}

#[derive(Debug, Default)]
struct Slot {
    response: Mutex<Option<ServeResponse>>,
    ready: Condvar,
}

impl Ticket {
    /// The request id this ticket redeems.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives and returns it.
    ///
    /// Every admitted request is answered — completion, expiry, or the
    /// shutdown drain — so this cannot wait forever while the service
    /// (or its final drain) is running.
    #[must_use]
    pub fn wait(self) -> ServeResponse {
        let mut guard = self
            .slot
            .response
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Takes the response if it has already arrived, without blocking.
    #[must_use]
    pub fn poll(&self) -> Option<ServeResponse> {
        self.slot
            .response
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

struct State {
    front: Front,
    tickets: BTreeMap<u64, Arc<Slot>>,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
    executor: BatchExecutor,
    stop: AtomicBool,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn fulfil(state: &mut State, responses: Vec<ServeResponse>) {
        for response in responses {
            if let Some(slot) = state.tickets.remove(&response.request_id) {
                *slot
                    .response
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(response);
                slot.ready.notify_all();
            }
        }
    }
}

/// The multi-threaded serving service.
///
/// ```
/// use canti_farm::{JobSpec, ProbeMode};
/// use canti_serve::{ServeConfig, ServeService};
///
/// let service = ServeService::start(ServeConfig {
///     max_batch: 2,
///     linger_ns: 1_000, // 1 µs: fire quickly even for a lone request
///     threads: 1,
///     ..ServeConfig::default()
/// });
/// let ticket = service.submit(JobSpec::Probe(ProbeMode::Value(1.0))).unwrap();
/// let response = ticket.wait();
/// assert!(response.disposition.is_ok());
/// let stats = service.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
pub struct ServeService {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

impl ServeService {
    /// Starts a service on the wall clock with no observer.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        Self::start_with(config, Arc::new(WallClock::new()), None)
    }

    /// Starts a service recording serve metrics, spans and farm
    /// telemetry into `observer`, timed on the observer's own clock.
    #[must_use]
    pub fn start_observed(config: ServeConfig, observer: FarmObserver) -> Self {
        let clock = Arc::clone(observer.clock());
        Self::start_with(config, clock, Some(observer))
    }

    fn start_with(
        config: ServeConfig,
        clock: Arc<dyn ObsClock>,
        observer: Option<FarmObserver>,
    ) -> Self {
        let mut executor = BatchExecutor::new(config.threads, Arc::clone(&clock));
        // one instrument set shared between front and executor: SLO
        // windows and the request log must see both halves of a request
        let instruments = observer
            .as_ref()
            .map(|o| crate::exec::ServeInstruments::new(o, config.slo, config.timeline));
        if let Some(o) = &observer {
            executor = executor.with_instruments(
                o.clone(),
                instruments.clone().expect("built above with the observer"),
            );
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                front: Front::new(config, clock, observer, instruments),
                tickets: BTreeMap::new(),
            }),
            wake: Condvar::new(),
            executor,
            stop: AtomicBool::new(false),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("canti-serve-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher thread")
        };
        Self {
            shared,
            batcher: Some(batcher),
        }
    }

    /// Submits a request (config default deadline, if any, applies) and
    /// returns its ticket.
    ///
    /// # Errors
    ///
    /// Rejected immediately with a [`RejectReason`] when the queue is
    /// full or the service is shutting down.
    pub fn submit(&self, job: JobSpec) -> Result<Ticket, RejectReason> {
        self.submit_inner(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission if
    /// still queued.
    ///
    /// # Errors
    ///
    /// Rejected immediately with a [`RejectReason`] when the queue is
    /// full or the service is shutting down.
    pub fn submit_with_deadline(
        &self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<Ticket, RejectReason> {
        self.submit_inner(job, Some(deadline_ns))
    }

    fn submit_inner(&self, job: JobSpec, deadline_ns: Option<u64>) -> Result<Ticket, RejectReason> {
        self.admit(job, deadline_ns, None)
    }

    /// Submission with an explicit seed key: the sharded front passes
    /// the global request id so payloads are shard-count-invariant.
    pub(crate) fn submit_keyed(
        &self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: u64,
    ) -> Result<Ticket, RejectReason> {
        self.admit(job, deadline_ns, Some(key))
    }

    fn admit(
        &self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: Option<u64>,
    ) -> Result<Ticket, RejectReason> {
        let ticket = {
            let mut state = self.shared.lock();
            let id = state.front.admit_keyed(job, deadline_ns, key)?;
            let slot = Arc::new(Slot::default());
            state.tickets.insert(id, Arc::clone(&slot));
            Ticket { id, slot }
        };
        self.shared.wake.notify_all();
        Ok(ticket)
    }

    /// Requests currently queued (admitted, not yet batched or expired).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().front.depth()
    }

    /// The running serve tallies.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.lock().front.stats()
    }

    /// The attached observer, if the service was started observed.
    #[must_use]
    pub fn observer(&self) -> Option<FarmObserver> {
        self.shared.executor.observer().cloned()
    }

    /// The SLO tracker scoring this service's requests (present when
    /// started observed).
    #[must_use]
    pub fn slo(&self) -> Option<Arc<canti_obs::SloTracker>> {
        self.shared
            .lock()
            .front
            .instruments()
            .map(|i| Arc::clone(&i.slo))
    }

    /// The bounded finished-request log behind `/debug/requests`
    /// (present when started observed).
    #[must_use]
    pub fn request_log(&self) -> Option<Arc<canti_obs::RequestLog>> {
        self.shared
            .lock()
            .front
            .instruments()
            .map(|i| Arc::clone(&i.requests))
    }

    /// The per-window timeline recorder behind `/debug/timeline`
    /// (present when started observed).
    #[must_use]
    pub fn timeline(&self) -> Option<Arc<canti_obs::TimelineRecorder>> {
        self.shared
            .lock()
            .front
            .instruments()
            .map(|i| Arc::clone(&i.timeline))
    }

    /// The worker threads the executor's persistent pool actually runs.
    #[must_use]
    pub fn pool_threads(&self) -> usize {
        self.shared.executor.pool_threads()
    }

    /// Graceful shutdown: stop admitting (later submissions get
    /// [`RejectReason::Draining`]), flush everything still queued as
    /// final batches, fulfil every outstanding ticket, join the batcher
    /// and return the final tallies.
    #[must_use = "the drain summary reports what the service did"]
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ServeStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        self.shared.lock().front.stats()
    }
}

impl Drop for ServeService {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

impl std::fmt::Debug for ServeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeService")
            .field("queue_depth", &self.queue_depth())
            .field("stats", &self.stats())
            .finish()
    }
}

/// One batcher pass: expire and form under the lock, execute each formed
/// batch outside it, fulfil tickets back under the lock. Returns whether
/// anything happened.
fn pump_once(shared: &Shared) -> bool {
    let (mut worked, batches) = {
        let mut state = shared.lock();
        let expired = state.front.take_expired();
        let worked = !expired.is_empty();
        Shared::fulfil(&mut state, expired);
        (worked, state.front.form_ready())
    };
    for batch in batches {
        worked = true;
        let responses = shared.executor.execute(batch);
        let mut state = shared.lock();
        state.front.finish(&responses);
        Shared::fulfil(&mut state, responses);
    }
    worked
}

fn batcher_loop(shared: &Shared) {
    loop {
        let worked = pump_once(shared);
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if worked {
            continue; // more may already be ready
        }
        let state = shared.lock();
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _unused = shared.wake.wait_timeout(state, IDLE_WAIT);
    }
    // Drain: stop admission, flush the remainder, answer every ticket.
    let batches = {
        let mut state = shared.lock();
        let expired = state.front.take_expired();
        Shared::fulfil(&mut state, expired);
        state.front.begin_drain()
    };
    for batch in batches {
        let responses = shared.executor.execute(batch);
        let mut state = shared.lock();
        state.front.finish(&responses);
        Shared::fulfil(&mut state, responses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::Disposition;
    use canti_farm::ProbeMode;

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    #[test]
    fn tickets_resolve_for_size_triggered_batches() {
        let service = ServeService::start(ServeConfig {
            max_batch: 4,
            linger_ns: 1_000_000_000, // 1 s: only size can fire
            threads: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let r = t.wait();
            assert_eq!(r.request_id, i as u64);
            assert!(r.disposition.is_ok(), "request {i}: {r}");
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn full_queue_rejects_fast() {
        // Huge linger + threshold so nothing drains the queue.
        let service = ServeService::start(ServeConfig {
            queue_capacity: 2,
            max_batch: 64,
            linger_ns: u64::MAX,
            threads: 1,
            ..ServeConfig::default()
        });
        let a = service.submit(probe(1.0)).expect("first admitted");
        let b = service.submit(probe(2.0)).expect("second admitted");
        assert_eq!(
            service.submit(probe(3.0)).map(|t| t.id()),
            Err(RejectReason::QueueFull { capacity: 2 })
        );
        assert_eq!(service.queue_depth(), 2);
        // Shutdown drains the two queued requests and answers them.
        let stats = service.shutdown();
        assert!(a.wait().disposition.is_ok());
        assert!(b.wait().disposition.is_ok());
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn expired_requests_get_expiry_responses() {
        let service = ServeService::start(ServeConfig {
            max_batch: 64,
            linger_ns: u64::MAX, // batches can never fire...
            threads: 1,
            ..ServeConfig::default()
        });
        // ...so a 1 ns deadline must expire the request instead.
        let ticket = service
            .submit_with_deadline(probe(1.0), 1)
            .expect("admitted");
        let response = ticket.wait();
        match response.disposition {
            Disposition::Expired { .. } => {}
            other => panic!("expected expiry, got {other:?}"),
        }
        let stats = service.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn shutdown_drains_outstanding_requests() {
        let service = ServeService::start(ServeConfig {
            max_batch: 64,
            linger_ns: u64::MAX,
            threads: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.completed, 5, "drain answered everything");
        for t in tickets {
            let r = t.poll().expect("fulfilled before shutdown returned");
            assert!(r.disposition.is_ok());
        }
    }

    #[test]
    fn observed_service_counts_through_the_shared_registry() {
        let (observer, _ring) = FarmObserver::profiling(4096);
        let service = ServeService::start_observed(
            ServeConfig {
                max_batch: 3,
                linger_ns: 1_000_000_000,
                threads: 1,
                ..ServeConfig::default()
            },
            observer,
        );
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        for t in tickets {
            assert!(t.wait().disposition.is_ok());
        }
        let observer = service.observer().expect("observer");
        let m = observer.metrics();
        assert_eq!(m.counter("serve.admitted").get(), 3);
        assert_eq!(m.counter("serve.completed").get(), 3);
        let _ = service.shutdown();
    }

    #[test]
    fn drop_performs_shutdown() {
        let service = ServeService::start(ServeConfig {
            max_batch: 64,
            linger_ns: u64::MAX,
            threads: 1,
            ..ServeConfig::default()
        });
        let ticket = service.submit(probe(1.0)).expect("admitted");
        drop(service); // must drain, not leak the batcher or the ticket
        assert!(ticket.wait().disposition.is_ok());
    }
}
