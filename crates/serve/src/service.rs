//! The threaded serving front: concurrent submitters, one batcher.
//!
//! [`ServeService`] wraps the same admission/batching core as
//! [`crate::ServeEngine`] behind a mutex and runs a background batcher
//! thread. Submitters get an immediate admit/reject answer plus a
//! [`Ticket`] they can block on (or poll); the batcher forms batches
//! *under* the lock but executes them *outside* it, so admission stays
//! reject-fast while the farm computes.
//!
//! # Failure and revival
//!
//! Every admitted request gets a **terminal** answer — that promise
//! holds even when execution dies underneath it. A batch whose executor
//! panics (a poisoned pool, an armed chaos kill) is caught at the
//! batcher; the service marks itself [`ShardHealth::Down`], answers the
//! doomed batch, every later formed batch and the whole queue with
//! [`crate::Disposition::Failed`] / [`RejectReason::ShardFailed`], and
//! rejects new submissions the same way. [`Ticket::wait`] therefore
//! never hangs on a dead shard. A down service stays down until
//! [`ServeService::revive`] (called by the sharded supervisor after its
//! backoff) swaps in a fresh executor — fresh worker pool, same shared
//! cache, clock and instruments — and reopens admission as
//! [`ShardHealth::Recovering`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use canti_farm::{FarmObserver, JobSpec};
use canti_fault::{ServeChaos, ServeFaultPlan};
use canti_obs::{ObsClock, WallClock};

use crate::engine::{Front, ServeStats};
use crate::exec::BatchExecutor;
use crate::queue::{FormedBatch, RejectReason};
use crate::response::{Disposition, ServeResponse};
use crate::shard::ShardHealth;
use crate::ServeConfig;

/// How long the batcher sleeps when the queue is empty and nothing can
/// change without a new submission (a submission kicks it immediately).
const IDLE_WAIT: Duration = Duration::from_millis(50);

/// A claim on one admitted request's eventual response.
///
/// Fulfilled exactly once — by batch completion, deadline expiry, shard
/// failure, or the drain flush at shutdown. Dropping the ticket discards
/// the response.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
}

#[derive(Debug, Default)]
struct Slot {
    response: Mutex<Option<ServeResponse>>,
    ready: Condvar,
}

impl Ticket {
    /// The request id this ticket redeems.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives and returns it.
    ///
    /// Every admitted request is answered terminally — completion,
    /// expiry, shard failure, or the shutdown drain — so this cannot
    /// wait forever: a dying batcher fails its outstanding tickets
    /// before the shard goes down.
    #[must_use]
    pub fn wait(self) -> ServeResponse {
        let mut guard = self
            .slot
            .response
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Takes the response if it has already arrived, without blocking.
    #[must_use]
    pub fn poll(&self) -> Option<ServeResponse> {
        self.slot
            .response
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// What the ticket table remembers about an outstanding request — enough
/// to answer it terminally even if its `Pending` was consumed by a batch
/// that died taking the batcher thread with it.
#[derive(Debug)]
struct TicketCell {
    slot: Arc<Slot>,
    key: u64,
    trace: u64,
    enqueued_ns: u64,
}

struct State {
    front: Front,
    tickets: BTreeMap<u64, TicketCell>,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
    executor: Mutex<BatchExecutor>,
    clock: Arc<dyn ObsClock>,
    stop: AtomicBool,
    health: AtomicU8,
    restarts: AtomicU64,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn executor(&self) -> MutexGuard<'_, BatchExecutor> {
        self.executor
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.health.load(Ordering::SeqCst))
    }

    /// One clean batch moves the health ladder one rung:
    /// `Recovering → Degraded → Healthy`.
    fn promote_health(&self) {
        let next = match self.health() {
            ShardHealth::Recovering => ShardHealth::Degraded,
            ShardHealth::Degraded => ShardHealth::Healthy,
            other => other,
        };
        self.health.store(next.as_u8(), Ordering::SeqCst);
    }

    fn fulfil(state: &mut State, responses: Vec<ServeResponse>) {
        for response in responses {
            if let Some(cell) = state.tickets.remove(&response.request_id) {
                *cell
                    .slot
                    .response
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(response);
                cell.slot.ready.notify_all();
            }
        }
    }
}

/// The multi-threaded serving service.
///
/// ```
/// use canti_farm::{JobSpec, ProbeMode};
/// use canti_serve::{ServeConfig, ServeService};
///
/// let service = ServeService::start(ServeConfig {
///     max_batch: 2,
///     linger_ns: 1_000, // 1 µs: fire quickly even for a lone request
///     threads: 1,
///     ..ServeConfig::default()
/// });
/// let ticket = service.submit(JobSpec::Probe(ProbeMode::Value(1.0))).unwrap();
/// let response = ticket.wait();
/// assert!(response.disposition.is_ok());
/// let stats = service.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
pub struct ServeService {
    shared: Arc<Shared>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl ServeService {
    /// Starts a service on the wall clock with no observer.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        Self::start_with(config, Arc::new(WallClock::new()), None, None)
    }

    /// Starts a service recording serve metrics, spans and farm
    /// telemetry into `observer`, timed on the observer's own clock.
    #[must_use]
    pub fn start_observed(config: ServeConfig, observer: FarmObserver) -> Self {
        let clock = Arc::clone(observer.clock());
        Self::start_with(config, clock, Some(observer), None)
    }

    /// [`Self::start_observed`] with this shard's slice of a serve fault
    /// plan armed on the executor.
    pub(crate) fn start_chaos(
        config: ServeConfig,
        observer: FarmObserver,
        plan: &ServeFaultPlan,
        shard: usize,
    ) -> Self {
        let clock = Arc::clone(observer.clock());
        Self::start_with(config, clock, Some(observer), Some((plan, shard)))
    }

    fn start_with(
        config: ServeConfig,
        clock: Arc<dyn ObsClock>,
        observer: Option<FarmObserver>,
        chaos: Option<(&ServeFaultPlan, usize)>,
    ) -> Self {
        let mut executor = BatchExecutor::new(config.threads, Arc::clone(&clock));
        // one result cache shared by front (lookups) and executor
        // (inserts); revive keeps it — resurrected() clones the handle
        let cache = config
            .cache
            .map(|c| Arc::new(Mutex::new(crate::cache::ReportCache::new(c))));
        if let Some(c) = &cache {
            executor = executor.with_report_cache(Arc::clone(c));
        }
        // one instrument set shared between front and executor: SLO
        // windows and the request log must see both halves of a request
        let instruments = observer
            .as_ref()
            .map(|o| crate::exec::ServeInstruments::new(o, config.slo, config.timeline));
        if let Some(o) = &observer {
            executor = executor.with_instruments(
                o.clone(),
                instruments.clone().expect("built above with the observer"),
            );
        }
        if let Some((plan, shard)) = chaos {
            let injector = ServeChaos::new(plan, shard);
            if !injector.is_empty() {
                executor = executor.with_chaos(Arc::new(Mutex::new(injector)));
            }
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                front: Front::new(config, Arc::clone(&clock), observer, instruments, cache),
                tickets: BTreeMap::new(),
            }),
            wake: Condvar::new(),
            executor: Mutex::new(executor),
            clock,
            stop: AtomicBool::new(false),
            health: AtomicU8::new(ShardHealth::Healthy.as_u8()),
            restarts: AtomicU64::new(0),
        });
        let batcher = spawn_batcher(Arc::clone(&shared));
        Self {
            shared,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// Submits a request (config default deadline, if any, applies) and
    /// returns its ticket.
    ///
    /// # Errors
    ///
    /// Rejected immediately with a [`RejectReason`] when the queue is
    /// full, the shard is down, or the service is shutting down.
    pub fn submit(&self, job: JobSpec) -> Result<Ticket, RejectReason> {
        self.submit_inner(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission if
    /// still queued.
    ///
    /// # Errors
    ///
    /// Rejected immediately with a [`RejectReason`] when the queue is
    /// full, the shard is down, or the service is shutting down.
    pub fn submit_with_deadline(
        &self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<Ticket, RejectReason> {
        self.submit_inner(job, Some(deadline_ns))
    }

    fn submit_inner(&self, job: JobSpec, deadline_ns: Option<u64>) -> Result<Ticket, RejectReason> {
        self.admit(job, deadline_ns, None)
    }

    /// Submission with an explicit seed key: the sharded front passes
    /// the global request id so payloads are shard-count-invariant.
    pub(crate) fn submit_keyed(
        &self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: u64,
    ) -> Result<Ticket, RejectReason> {
        self.admit(job, deadline_ns, Some(key))
    }

    fn admit(
        &self,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: Option<u64>,
    ) -> Result<Ticket, RejectReason> {
        let ticket = {
            let mut state = self.shared.lock();
            let id = state.front.admit_keyed(job, deadline_ns, key)?;
            let slot = Arc::new(Slot::default());
            let seed_key = key.unwrap_or(id);
            state.tickets.insert(
                id,
                TicketCell {
                    slot: Arc::clone(&slot),
                    key: seed_key,
                    trace: canti_obs::TraceContext::from_admission(seed_key).trace,
                    enqueued_ns: self.shared.clock.now_ns(),
                },
            );
            // a cache hit was answered inside admit: fulfil its ticket
            // now so the caller's wait() returns without a batcher pass
            let hits = state.front.take_hits();
            if !hits.is_empty() {
                Shared::fulfil(&mut state, hits);
            }
            Ticket { id, slot }
        };
        self.shared.wake.notify_all();
        Ok(ticket)
    }

    /// Requests currently queued (admitted, not yet batched or expired).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().front.depth()
    }

    /// The running serve tallies.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.lock().front.stats()
    }

    /// The result cache's counters, when [`ServeConfig::cache`] is set.
    #[must_use]
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.shared.lock().front.cache_stats()
    }

    /// This shard's current health. `Down` means the executor died and
    /// the service is refusing work until [`Self::revive`].
    #[must_use]
    pub fn health(&self) -> ShardHealth {
        self.shared.health()
    }

    /// Whether the shard is down (dead executor, refusing work).
    #[must_use]
    pub fn is_down(&self) -> bool {
        !self.health().is_live()
    }

    /// Times the executor was replaced by [`Self::revive`].
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::SeqCst)
    }

    /// Brings a `Down` shard back: swaps in a fresh executor (new worker
    /// pool; same shared cache, clock, observer and instruments), reopens
    /// admission and moves health to `Recovering`. Also respawns the
    /// batcher thread in the unlikely case the thread itself died (the
    /// normal executor-panic path keeps it alive). Returns `false` when
    /// the shard was not down.
    pub fn revive(&self) -> bool {
        if self
            .shared
            .health
            .compare_exchange(
                ShardHealth::Down.as_u8(),
                ShardHealth::Recovering.as_u8(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            return false;
        }
        let restarts = self.shared.restarts.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut executor = self.shared.executor();
            let fresh = executor.resurrected();
            *executor = fresh;
            if let Some(ins) = executor.instruments() {
                ins.shard_restarts.inc();
            }
            if let Some(o) = executor.observer() {
                o.tracer()
                    .event("shard_recovered", &[("restarts", restarts.into())]);
            }
        }
        self.shared.lock().front.mark_recovered();
        {
            let mut batcher = self
                .batcher
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if batcher.as_ref().is_some_and(JoinHandle::is_finished) {
                if let Some(dead) = batcher.take() {
                    let _ = dead.join();
                }
                *batcher = Some(spawn_batcher(Arc::clone(&self.shared)));
            }
        }
        self.shared.wake.notify_all();
        true
    }

    /// Records a request failed over *to* this shard (counter + trace
    /// event on this shard's observer).
    pub(crate) fn note_failover(&self, request_id: u64, from_shard: usize) {
        {
            let state = self.shared.lock();
            if let Some(ins) = state.front.instruments() {
                ins.failovers.inc();
            }
        }
        let executor = self.shared.executor();
        if let Some(o) = executor.observer() {
            o.tracer().event(
                "failover",
                &[("request", request_id.into()), ("from", from_shard.into())],
            );
        }
    }

    /// The attached observer, if the service was started observed.
    #[must_use]
    pub fn observer(&self) -> Option<FarmObserver> {
        self.shared.executor().observer().cloned()
    }

    /// The SLO tracker scoring this service's requests (present when
    /// started observed).
    #[must_use]
    pub fn slo(&self) -> Option<Arc<canti_obs::SloTracker>> {
        self.shared
            .lock()
            .front
            .instruments()
            .map(|i| Arc::clone(&i.slo))
    }

    /// The bounded finished-request log behind `/debug/requests`
    /// (present when started observed).
    #[must_use]
    pub fn request_log(&self) -> Option<Arc<canti_obs::RequestLog>> {
        self.shared
            .lock()
            .front
            .instruments()
            .map(|i| Arc::clone(&i.requests))
    }

    /// The per-window timeline recorder behind `/debug/timeline`
    /// (present when started observed).
    #[must_use]
    pub fn timeline(&self) -> Option<Arc<canti_obs::TimelineRecorder>> {
        self.shared
            .lock()
            .front
            .instruments()
            .map(|i| Arc::clone(&i.timeline))
    }

    /// The worker threads the executor's persistent pool actually runs.
    #[must_use]
    pub fn pool_threads(&self) -> usize {
        self.shared.executor().pool_threads()
    }

    /// Graceful shutdown: stop admitting (later submissions get
    /// [`RejectReason::Draining`]), flush everything still queued as
    /// final batches, fulfil every outstanding ticket, join the batcher
    /// and return the final tallies.
    #[must_use = "the drain summary reports what the service did"]
    pub fn shutdown(self) -> ServeStats {
        self.shutdown_ref()
    }

    /// [`Self::shutdown`] through a shared reference, for fronts that
    /// hold the service in an [`Arc`] (idempotent: later calls just
    /// return the tallies).
    pub(crate) fn shutdown_ref(&self) -> ServeStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        let handle = self
            .batcher
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.shared.lock().front.stats()
    }
}

impl Drop for ServeService {
    fn drop(&mut self) {
        let running = self
            .batcher
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some();
        if running {
            let _ = self.shutdown_ref();
        }
    }
}

impl std::fmt::Debug for ServeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeService")
            .field("health", &self.health())
            .field("queue_depth", &self.queue_depth())
            .field("stats", &self.stats())
            .finish()
    }
}

fn spawn_batcher(shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("canti-serve-batcher".into())
        .spawn(move || {
            if catch_unwind(AssertUnwindSafe(|| batcher_loop(&shared))).is_err() {
                // Safety net for panics outside batch execution (those
                // are caught per-batch in run_formed): mark the shard
                // down and answer every outstanding ticket terminally so
                // no waiter hangs on the dead thread.
                shared
                    .health
                    .store(ShardHealth::Down.as_u8(), Ordering::SeqCst);
                let mut state = shared.lock();
                let responses = state.front.fail_queued();
                Shared::fulfil(&mut state, responses);
                let known: Vec<(u64, u64, u64, u64)> = state
                    .tickets
                    .iter()
                    .map(|(&id, c)| (id, c.key, c.trace, c.enqueued_ns))
                    .collect();
                let responses = state.front.fail_inflight(&known);
                Shared::fulfil(&mut state, responses);
            }
        })
        .expect("spawn batcher thread")
}

/// One batcher pass: expire, shed and form under the lock, execute each
/// formed batch outside it, fulfil tickets back under the lock. Returns
/// whether anything happened.
fn pump_once(shared: &Shared) -> bool {
    let (worked, batches) = {
        let mut state = shared.lock();
        let expired = state.front.take_expired();
        let shed = state.front.take_shed();
        let worked = !expired.is_empty() || !shed.is_empty();
        Shared::fulfil(&mut state, expired);
        Shared::fulfil(&mut state, shed);
        (worked, state.front.form_ready())
    };
    run_formed(shared, batches) || worked
}

/// Executes formed batches in order, fulfilling tickets after each. An
/// executor panic (poisoned pool, chaos kill) marks the shard `Down` and
/// answers the doomed batch's members, every later formed batch and the
/// whole queue with [`RejectReason::ShardFailed`] — terminally, so no
/// ticket is left hanging. Returns whether any batch ran.
fn run_formed(shared: &Shared, batches: Vec<FormedBatch>) -> bool {
    let mut worked = false;
    let mut batches = batches.into_iter();
    while let Some(batch) = batches.next() {
        worked = true;
        let members = batch.items.clone();
        let index = batch.index;
        let result = {
            let executor = shared.executor();
            catch_unwind(AssertUnwindSafe(|| executor.execute(batch)))
        };
        match result {
            Ok(responses) => {
                let clean = responses
                    .iter()
                    .any(|r| matches!(r.disposition, Disposition::Completed { .. }));
                if clean {
                    // promote before fulfilment so a waiter that wakes on
                    // its ticket already sees the stepped-up health
                    shared.promote_health();
                }
                let mut state = shared.lock();
                state.front.finish(&responses);
                Shared::fulfil(&mut state, responses);
            }
            Err(_) => {
                shared
                    .health
                    .store(ShardHealth::Down.as_u8(), Ordering::SeqCst);
                {
                    let executor = shared.executor();
                    if let Some(o) = executor.observer() {
                        o.tracer().event("shard_down", &[("batch", index.into())]);
                    }
                }
                let mut state = shared.lock();
                let mut responses: Vec<ServeResponse> = members
                    .iter()
                    .flat_map(|p| state.front.fail_pending(p))
                    .collect();
                for stranded in batches.by_ref() {
                    for p in &stranded.items {
                        responses.extend(state.front.fail_pending(p));
                    }
                }
                responses.extend(state.front.fail_queued());
                Shared::fulfil(&mut state, responses);
                break;
            }
        }
    }
    worked
}

fn batcher_loop(shared: &Shared) {
    loop {
        let worked = pump_once(shared);
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if worked {
            continue; // more may already be ready
        }
        let state = shared.lock();
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _unused = shared.wake.wait_timeout(state, IDLE_WAIT);
    }
    // Drain: stop admission, flush the remainder, answer every ticket.
    // (A down shard already answered everything; its drain is empty.)
    let batches = {
        let mut state = shared.lock();
        let expired = state.front.take_expired();
        Shared::fulfil(&mut state, expired);
        state.front.begin_drain()
    };
    let _ = run_formed(shared, batches);
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_farm::ProbeMode;

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    #[test]
    fn tickets_resolve_for_size_triggered_batches() {
        let service = ServeService::start(ServeConfig {
            max_batch: 4,
            linger_ns: 1_000_000_000, // 1 s: only size can fire
            threads: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let r = t.wait();
            assert_eq!(r.request_id, i as u64);
            assert!(r.disposition.is_ok(), "request {i}: {r}");
        }
        assert_eq!(service.health(), ShardHealth::Healthy);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn full_queue_rejects_fast() {
        // Huge linger + threshold so nothing drains the queue.
        let service = ServeService::start(ServeConfig {
            queue_capacity: 2,
            max_batch: 64,
            linger_ns: u64::MAX,
            threads: 1,
            ..ServeConfig::default()
        });
        let a = service.submit(probe(1.0)).expect("first admitted");
        let b = service.submit(probe(2.0)).expect("second admitted");
        assert_eq!(
            service.submit(probe(3.0)).map(|t| t.id()),
            Err(RejectReason::QueueFull { capacity: 2 })
        );
        assert_eq!(service.queue_depth(), 2);
        // Shutdown drains the two queued requests and answers them.
        let stats = service.shutdown();
        assert!(a.wait().disposition.is_ok());
        assert!(b.wait().disposition.is_ok());
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn expired_requests_get_expiry_responses() {
        let service = ServeService::start(ServeConfig {
            max_batch: 64,
            linger_ns: u64::MAX, // batches can never fire...
            threads: 1,
            ..ServeConfig::default()
        });
        // ...so a 1 ns deadline must expire the request instead.
        let ticket = service
            .submit_with_deadline(probe(1.0), 1)
            .expect("admitted");
        let response = ticket.wait();
        match response.disposition {
            Disposition::Expired { .. } => {}
            other => panic!("expected expiry, got {other:?}"),
        }
        let stats = service.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn shutdown_drains_outstanding_requests() {
        let service = ServeService::start(ServeConfig {
            max_batch: 64,
            linger_ns: u64::MAX,
            threads: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.completed, 5, "drain answered everything");
        for t in tickets {
            let r = t.poll().expect("fulfilled before shutdown returned");
            assert!(r.disposition.is_ok());
        }
    }

    #[test]
    fn observed_service_counts_through_the_shared_registry() {
        let (observer, _ring) = FarmObserver::profiling(4096);
        let service = ServeService::start_observed(
            ServeConfig {
                max_batch: 3,
                linger_ns: 1_000_000_000,
                threads: 1,
                ..ServeConfig::default()
            },
            observer,
        );
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        for t in tickets {
            assert!(t.wait().disposition.is_ok());
        }
        let observer = service.observer().expect("observer");
        let m = observer.metrics();
        assert_eq!(m.counter("serve.admitted").get(), 3);
        assert_eq!(m.counter("serve.completed").get(), 3);
        let _ = service.shutdown();
    }

    #[test]
    fn drop_performs_shutdown() {
        let service = ServeService::start(ServeConfig {
            max_batch: 64,
            linger_ns: u64::MAX,
            threads: 1,
            ..ServeConfig::default()
        });
        let ticket = service.submit(probe(1.0)).expect("admitted");
        drop(service); // must drain, not leak the batcher or the ticket
        assert!(ticket.wait().disposition.is_ok());
    }

    #[test]
    fn executor_panic_answers_every_ticket_terminally() {
        // A chaos plan that kills this shard on its first batch: the
        // executor panics under the batch, and *every* waiter — batch
        // members and still-queued requests alike — must get a terminal
        // Failed answer, never a hang.
        let (observer, _ring) = FarmObserver::profiling(4096);
        let plan = ServeFaultPlan::kill_shard(0, 0);
        let service = ServeService::start_chaos(
            ServeConfig {
                max_batch: 2,
                linger_ns: u64::MAX, // only size fires: 2 ride, 1 queues
                threads: 1,
                ..ServeConfig::default()
            },
            observer,
            &plan,
            0,
        );
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let r = t.wait();
            match r.disposition {
                Disposition::Failed {
                    reason: RejectReason::ShardFailed,
                } => {}
                other => panic!("request {i}: expected ShardFailed, got {other:?}"),
            }
        }
        assert_eq!(service.health(), ShardHealth::Down);
        assert!(service.is_down());
        // a down shard refuses new work with the same terminal reason
        assert_eq!(
            service.submit(probe(9.0)).map(|t| t.id()),
            Err(RejectReason::ShardFailed)
        );
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.failed, 3);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn revive_brings_a_down_shard_back() {
        let (observer, _ring) = FarmObserver::profiling(4096);
        let plan = ServeFaultPlan::kill_shard(0, 0);
        let service = ServeService::start_chaos(
            ServeConfig {
                max_batch: 1,
                linger_ns: u64::MAX,
                threads: 1,
                ..ServeConfig::default()
            },
            observer,
            &plan,
            0,
        );
        let doomed = service.submit(probe(1.0)).expect("admitted");
        assert!(matches!(
            doomed.wait().disposition,
            Disposition::Failed { .. }
        ));
        assert_eq!(service.health(), ShardHealth::Down);

        assert!(service.revive(), "down shard revives");
        assert!(!service.revive(), "second revive is a no-op");
        assert_eq!(service.health(), ShardHealth::Recovering);
        assert_eq!(service.restarts(), 1);

        // the revived shard serves again (the kill event already fired)
        let ticket = service.submit(probe(2.0)).expect("readmitted");
        assert!(ticket.wait().disposition.is_ok());
        assert!(
            matches!(
                service.health(),
                ShardHealth::Degraded | ShardHealth::Healthy
            ),
            "clean batches walk the ladder up, got {:?}",
            service.health()
        );
        let observer = service.observer().expect("observer");
        assert_eq!(observer.metrics().counter("serve.shard_restarts").get(), 1);
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }
}
