//! Shard health supervision: the state machine that watches shards die
//! and schedules their resurrection.
//!
//! Each shard moves through [`ShardHealth`]'s four states:
//!
//! ```text
//!            executor panic / batcher death
//!   Healthy ────────────────────────────────────► Down
//!      ▲                                            │ deterministic
//!      │ probation served                           │ backoff elapses
//!      │ (clean batches)                            ▼
//!   Degraded ◄──────────────────────────────── Recovering
//!                    first clean batch
//! ```
//!
//! The supervisor itself performs no I/O and reads no clock — every
//! decision is a pure function of the failure/restart/clean-batch
//! notifications it is fed and the `now_ns` readings the caller passes
//! in. Driven from a [`canti_obs::VirtualClock`] the whole
//! kill → backoff → restart → probation cycle replays bit-identically,
//! which is what lets the chaos determinism tests pin it.
//!
//! Restart delays back off exponentially and deterministically:
//! the `n`-th consecutive failure of a shard schedules its restart
//! `backoff_base_ns << min(n - 1, backoff_max_shift)` after the failure
//! was recorded.

use crate::shard::ShardHealth;

/// Policy for shard supervision: restart backoff and probation length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Delay before the first restart attempt, ns on the observer clock.
    pub backoff_base_ns: u64,
    /// Cap on the exponential backoff: the delay for failure `n` is
    /// `backoff_base_ns << min(n - 1, backoff_max_shift)`.
    pub backoff_max_shift: u32,
    /// Clean batches a `Degraded` shard must complete before it is
    /// `Healthy` again (the first clean batch only promotes
    /// `Recovering` → `Degraded`).
    pub probation_batches: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            backoff_base_ns: 1_000_000, // 1 ms
            backoff_max_shift: 6,       // cap at 64x base
            probation_batches: 1,
        }
    }
}

/// Per-shard supervision record.
#[derive(Debug, Clone, Copy)]
struct ShardRecord {
    health: ShardHealth,
    /// Consecutive failures since the shard last reached `Healthy`.
    failures: u32,
    /// Restarts performed over the shard's lifetime.
    restarts: u64,
    /// Scheduled restart instant while `Down`.
    next_restart_ns: Option<u64>,
    /// Clean batches served while `Degraded`.
    probation_served: u32,
}

impl ShardRecord {
    fn new() -> Self {
        Self {
            health: ShardHealth::Healthy,
            failures: 0,
            restarts: 0,
            next_restart_ns: None,
            probation_served: 0,
        }
    }
}

/// The deterministic shard health supervisor.
///
/// The caller (the sharded engine or service) notifies it of failures,
/// restarts and clean batches; the supervisor answers health queries
/// and restart-due checks. See the module docs for the state machine.
#[derive(Debug, Clone)]
pub struct ShardSupervisor {
    config: SupervisorConfig,
    records: Vec<ShardRecord>,
}

impl ShardSupervisor {
    /// A supervisor over `shards` shards, all initially `Healthy`.
    #[must_use]
    pub fn new(config: SupervisorConfig, shards: usize) -> Self {
        Self {
            config,
            records: vec![ShardRecord::new(); shards],
        }
    }

    /// The active policy.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// `shard`'s current health.
    #[must_use]
    pub fn health(&self, shard: usize) -> ShardHealth {
        self.records[shard].health
    }

    /// Every shard's health, indexed by shard.
    #[must_use]
    pub fn healths(&self) -> Vec<ShardHealth> {
        self.records.iter().map(|r| r.health).collect()
    }

    /// Whether `shard` can accept traffic (everything but `Down`).
    #[must_use]
    pub fn is_live(&self, shard: usize) -> bool {
        self.records[shard].health.is_live()
    }

    /// Liveness per shard, the mask [`crate::route_failover`] consumes.
    #[must_use]
    pub fn live_mask(&self) -> Vec<bool> {
        self.records.iter().map(|r| r.health.is_live()).collect()
    }

    /// Restarts performed across all shards.
    #[must_use]
    pub fn total_restarts(&self) -> u64 {
        self.records.iter().map(|r| r.restarts).sum()
    }

    /// Restarts performed on `shard`.
    #[must_use]
    pub fn restarts(&self, shard: usize) -> u64 {
        self.records[shard].restarts
    }

    /// Records a shard death at `now_ns`: the shard goes `Down` and its
    /// restart is scheduled after the deterministic backoff. Returns the
    /// scheduled restart instant.
    pub fn record_failure(&mut self, shard: usize, now_ns: u64) -> u64 {
        let failures = self.records[shard].failures + 1;
        let due = now_ns.saturating_add(self.backoff_ns(failures));
        let r = &mut self.records[shard];
        r.health = ShardHealth::Down;
        r.failures = failures;
        r.probation_served = 0;
        r.next_restart_ns = Some(due);
        due
    }

    /// Whether `shard` is `Down` and its scheduled restart instant has
    /// arrived.
    #[must_use]
    pub fn restart_due(&self, shard: usize, now_ns: u64) -> bool {
        let r = &self.records[shard];
        r.health == ShardHealth::Down && r.next_restart_ns.is_some_and(|due| now_ns >= due)
    }

    /// The scheduled restart instant of a `Down` shard.
    #[must_use]
    pub fn next_restart_ns(&self, shard: usize) -> Option<u64> {
        self.records[shard].next_restart_ns
    }

    /// Records that `shard` was restarted: `Down` → `Recovering`.
    pub fn record_restart(&mut self, shard: usize) {
        let r = &mut self.records[shard];
        r.health = ShardHealth::Recovering;
        r.restarts += 1;
        r.next_restart_ns = None;
        r.probation_served = 0;
    }

    /// Records a batch the shard completed cleanly. The first clean
    /// batch promotes `Recovering` → `Degraded`; after
    /// `probation_batches` further clean batches the shard is `Healthy`
    /// again and its failure streak resets.
    pub fn record_clean_batch(&mut self, shard: usize) {
        let probation = self.config.probation_batches;
        let r = &mut self.records[shard];
        match r.health {
            ShardHealth::Recovering => {
                r.health = ShardHealth::Degraded;
                r.probation_served = 0;
            }
            ShardHealth::Degraded => {
                r.probation_served += 1;
                if r.probation_served >= probation {
                    r.health = ShardHealth::Healthy;
                    r.failures = 0;
                    r.probation_served = 0;
                }
            }
            ShardHealth::Healthy | ShardHealth::Down => {}
        }
    }

    /// The deterministic restart delay for a shard's `n`-th consecutive
    /// failure (`n ≥ 1`).
    #[must_use]
    pub fn backoff_ns(&self, failures: u32) -> u64 {
        let shift = failures
            .saturating_sub(1)
            .min(self.config.backoff_max_shift);
        self.config.backoff_base_ns.saturating_mul(1u64 << shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supervisor() -> ShardSupervisor {
        ShardSupervisor::new(SupervisorConfig::default(), 3)
    }

    #[test]
    fn lifecycle_walks_all_four_states() {
        let mut s = supervisor();
        assert_eq!(s.health(1), ShardHealth::Healthy);
        assert!(s.is_live(1));

        let due = s.record_failure(1, 100);
        assert_eq!(due, 100 + 1_000_000, "first failure waits one base");
        assert_eq!(s.health(1), ShardHealth::Down);
        assert!(!s.is_live(1));
        assert_eq!(s.live_mask(), vec![true, false, true]);
        assert!(!s.restart_due(1, due - 1));
        assert!(s.restart_due(1, due));

        s.record_restart(1);
        assert_eq!(s.health(1), ShardHealth::Recovering);
        assert!(s.is_live(1), "a recovering shard takes traffic");
        assert_eq!(s.restarts(1), 1);

        s.record_clean_batch(1);
        assert_eq!(s.health(1), ShardHealth::Degraded);
        s.record_clean_batch(1);
        assert_eq!(s.health(1), ShardHealth::Healthy, "probation of 1 served");
        assert_eq!(s.total_restarts(), 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let s = ShardSupervisor::new(
            SupervisorConfig {
                backoff_base_ns: 100,
                backoff_max_shift: 3,
                probation_batches: 1,
            },
            1,
        );
        let delays: Vec<u64> = (1..=6).map(|n| s.backoff_ns(n)).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 800, 800]);
    }

    #[test]
    fn healthy_recovery_resets_the_failure_streak() {
        let mut s = supervisor();
        s.record_failure(0, 0);
        s.record_restart(0);
        s.record_failure(0, 10);
        assert_eq!(
            s.next_restart_ns(0),
            Some(10 + 2_000_000),
            "second failure in a row doubles the backoff"
        );
        s.record_restart(0);
        s.record_clean_batch(0); // -> Degraded
        s.record_clean_batch(0); // -> Healthy, streak cleared
        let due = s.record_failure(0, 20);
        assert_eq!(due, 20 + 1_000_000, "streak reset to base backoff");
    }

    #[test]
    fn clean_batches_while_down_change_nothing() {
        let mut s = supervisor();
        s.record_failure(2, 0);
        s.record_clean_batch(2);
        assert_eq!(s.health(2), ShardHealth::Down);
    }
}
