//! Sharded serving: N independent farm shards behind deterministic
//! request routing, with health supervision and failover.
//!
//! A shard is a complete serving stack of its own — admission queue,
//! batcher, executor, persistent worker pool — so shards share no locks
//! and no queues. What binds them into one service is the routing rule
//! and the request-seed rule, both pure functions of the **global**
//! request id:
//!
//! * **Routing** — [`route_request`] sends global id `g` to shard
//!   `splitmix64(g) % shards`. Nothing else (arrival time, payload,
//!   queue depths) influences placement, so the shard assignment of a
//!   request stream is reproducible and invariant under reordering of
//!   *other* requests.
//! * **Request seeds** — [`request_seed`] derives each request's RNG
//!   stream from `(base_seed, global id)` instead of its batch slot.
//!   A request therefore computes the same payload bits no matter which
//!   batch, slot, or shard it lands in — this is what extends the
//!   serve determinism contract from "any worker count" to "any worker
//!   *and shard* count".
//! * **Failover** — when a request's primary shard is
//!   [`ShardHealth::Down`], [`route_failover`] reroutes it to the live
//!   shard with the highest rendezvous rank for that id. The fallback
//!   is a pure function of `(request id, liveness mask)`, so two runs
//!   with the same health script fail over identically — and because
//!   payloads are pinned by [`request_seed`], a failed-over request
//!   still computes the same bits it would have computed on its primary.
//!
//! # What is and is not shard-invariant
//!
//! Changing the shard count re-partitions the queues, so batch
//! *indices*, batch *membership* and queue-depth-dependent decisions
//! (a full queue, a linger expiry) legitimately differ between shard
//! counts. The contract pinned by `tests/shard_determinism.rs` is:
//! per-request payload bits, the routing assignment, and scripted
//! deadline expiries are identical at any `(workers, shards)`; the
//! *full* trace (batches included) is identical across worker counts at
//! a fixed shard count. `tests/serve_failover.rs` extends the same
//! contract to scripted chaos: given the same fault plan, the failover
//! assignment and every terminal answer are identical at any worker
//! count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use canti_farm::{FarmObserver, JobSpec};
use canti_fault::ServeFaultPlan;
use canti_obs::ObsClock;

use crate::engine::{BatchRecord, ServeEngine, ServeStats};
use crate::queue::RejectReason;
use crate::response::ServeResponse;
use crate::service::{ServeService, Ticket};
use crate::supervisor::{ShardSupervisor, SupervisorConfig};
use crate::ServeConfig;

/// The 64-bit splitmix finalizer: a cheap, well-mixed bijection on
/// `u64`. Used for both routing and seed derivation so neighboring ids
/// land on distant shards and in distant RNG streams.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The routing rule: global request id → shard index. A pure function
/// of `(request_id, shards)`.
///
/// # Panics
///
/// Panics when `shards == 0`: a zero-shard topology has nowhere to
/// route, and silently clamping it to one shard would let a
/// misconfigured front serve traffic on a topology nobody asked for.
#[must_use]
pub fn route_request(request_id: u64, shards: usize) -> usize {
    assert!(shards > 0, "route_request: shards must be >= 1, got 0");
    (splitmix64(request_id) % shards as u64) as usize
}

/// The failover rule: the shard a request lands on given which shards
/// are live. The primary ([`route_request`]) wins while live; otherwise
/// the live shard with the highest rendezvous rank for this id takes
/// over. Returns `None` when no shard is live.
///
/// The rank is a pure hash of `(request id, shard)`, so the fallback
/// order of a given id is a fixed permutation of the shards — two runs
/// with the same liveness mask reroute identically. Rendezvous (rather
/// than "next index up") keeps rerouted load spread over all survivors
/// and keeps each id's fallback target stable as *other* shards change
/// state.
///
/// # Panics
///
/// Panics when `live` is empty (a zero-shard topology, as in
/// [`route_request`]).
#[must_use]
pub fn route_failover(request_id: u64, live: &[bool]) -> Option<usize> {
    let primary = route_request(request_id, live.len());
    if live[primary] {
        return Some(primary);
    }
    live.iter()
        .enumerate()
        .filter(|&(_, &l)| l)
        .max_by_key(|&(shard, _)| rendezvous_rank(request_id, shard))
        .map(|(shard, _)| shard)
}

/// The rendezvous rank of `(request_id, shard)`: an independent hash
/// per pair, so each id induces its own total order over shards.
fn rendezvous_rank(request_id: u64, shard: usize) -> u64 {
    splitmix64(splitmix64(request_id) ^ (shard as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// The seed rule: `(base_seed, global request id)` → the seed this
/// request's farm RNG stream derives from. Independent of batch index,
/// batch slot and shard, which is what makes payloads shard-invariant.
#[must_use]
pub fn request_seed(base_seed: u64, request_id: u64) -> u64 {
    splitmix64(base_seed ^ splitmix64(request_id))
}

/// One shard's health, as the supervisor tracks it.
///
/// ```text
/// Healthy → Down → Recovering → Degraded → Healthy
/// ```
///
/// Everything but `Down` accepts traffic; `Down` shards are skipped by
/// [`route_failover`] until their backoff elapses and they restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Restarted and past its first clean batch, still on probation.
    Degraded,
    /// Dead: batcher exited or executor poisoned. Takes no traffic.
    Down,
    /// Freshly restarted, no clean batch served yet. Takes traffic.
    Recovering,
}

impl ShardHealth {
    /// Stable label for telemetry and `/healthz`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Down => "down",
            Self::Recovering => "recovering",
        }
    }

    /// Whether the shard accepts traffic (everything but `Down`).
    #[must_use]
    pub fn is_live(&self) -> bool {
        !matches!(self, Self::Down)
    }

    /// Compact encoding for the atomic health cells the threaded
    /// service publishes.
    #[must_use]
    pub fn as_u8(&self) -> u8 {
        match self {
            Self::Healthy => 0,
            Self::Degraded => 1,
            Self::Down => 2,
            Self::Recovering => 3,
        }
    }

    /// Inverse of [`Self::as_u8`] (unknown encodings read as `Down`,
    /// the conservative answer).
    #[must_use]
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Healthy,
            1 => Self::Degraded,
            3 => Self::Recovering,
            _ => Self::Down,
        }
    }
}

/// Configuration of a sharded serving layer: the shard count plus the
/// per-shard [`ServeConfig`] every shard runs with (same base seed on
/// every shard — [`request_seed`] already separates the streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Independent farm shards. Must be ≥ 1.
    pub shards: usize,
    /// The per-shard admission/batching/execution policy.
    pub base: ServeConfig,
}

impl ShardedConfig {
    /// The configured shard count.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` — see [`route_request`].
    #[must_use]
    pub fn shard_count(&self) -> usize {
        assert!(self.shards > 0, "ShardedConfig: shards must be >= 1, got 0");
        self.shards
    }
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            base: ServeConfig::default(),
        }
    }
}

/// The deterministic, explicitly pumped form of the sharded serving
/// layer: [`crate::ServeEngine`]s behind [`route_request`], sharing one
/// injected clock, supervised by a [`ShardSupervisor`]. This is what
/// the scripted shard-determinism and failover tests drive.
#[derive(Debug)]
pub struct ShardedEngine {
    engines: Vec<ServeEngine>,
    /// Per shard: local request id → global request id, in admission
    /// order (shard engines assign dense local ids on success).
    locals: Vec<Vec<u64>>,
    next_id: u64,
    clock: Arc<dyn ObsClock>,
    supervisor: ShardSupervisor,
    failovers: u64,
}

impl ShardedEngine {
    /// A sharded engine under `config`, timing every shard on `clock`,
    /// supervised under [`SupervisorConfig::default`].
    #[must_use]
    pub fn new(config: ShardedConfig, clock: Arc<dyn ObsClock>) -> Self {
        let n = config.shard_count();
        Self {
            engines: (0..n)
                .map(|_| ServeEngine::new(config.base, Arc::clone(&clock)))
                .collect(),
            locals: vec![Vec::new(); n],
            next_id: 0,
            clock,
            supervisor: ShardSupervisor::new(SupervisorConfig::default(), n),
            failovers: 0,
        }
    }

    /// Attaches one observer per shard (so each shard records into its
    /// own registry, which the merged `/metrics` view labels by shard).
    ///
    /// # Panics
    ///
    /// Panics unless `observers.len()` equals the shard count.
    #[must_use]
    pub fn with_observers(mut self, observers: Vec<FarmObserver>) -> Self {
        assert_eq!(
            observers.len(),
            self.engines.len(),
            "one observer per shard"
        );
        self.engines = self
            .engines
            .into_iter()
            .zip(observers)
            .map(|(e, o)| e.with_observer(o))
            .collect();
        self
    }

    /// Replaces the supervision policy (backoff, probation).
    #[must_use]
    pub fn with_supervisor(mut self, config: SupervisorConfig) -> Self {
        self.supervisor = ShardSupervisor::new(config, self.engines.len());
        self
    }

    /// Arms a [`ServeFaultPlan`]: each shard engine consumes its slice
    /// of the plan. Shards with no scheduled events install nothing, so
    /// an empty plan is provably identical to no plan.
    #[must_use]
    pub fn with_chaos_plan(mut self, plan: &ServeFaultPlan) -> Self {
        self.engines = self
            .engines
            .into_iter()
            .enumerate()
            .map(|(shard, e)| e.with_chaos_plan(plan, shard))
            .collect();
        self
    }

    /// The shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// The shard the next admitted request will route to (before
    /// failover).
    #[must_use]
    pub fn next_shard(&self) -> usize {
        route_request(self.next_id, self.engines.len())
    }

    /// Submits a request (config default deadline applies), returning
    /// its **global** id.
    ///
    /// # Errors
    ///
    /// Rejected with the target shard's [`RejectReason`]; a rejected
    /// submission does not consume a global id, so the id stream — and
    /// with it every later request's routing and seed — is independent
    /// of transient rejections.
    pub fn submit(&mut self, job: JobSpec) -> Result<u64, RejectReason> {
        self.submit_keyed(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission.
    ///
    /// # Errors
    ///
    /// Rejected with the target shard's [`RejectReason`].
    pub fn submit_with_deadline(
        &mut self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<u64, RejectReason> {
        self.submit_keyed(job, Some(deadline_ns))
    }

    fn submit_keyed(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
    ) -> Result<u64, RejectReason> {
        let global = self.next_id;
        let n = self.engines.len();
        let primary = route_request(global, n);
        let shard = if self.shard_is_live(primary) {
            primary
        } else {
            // deterministic failover: same health script, same reroute
            let mask: Vec<bool> = (0..n).map(|s| self.shard_is_live(s)).collect();
            let target = route_failover(global, &mask).ok_or(RejectReason::ShardFailed)?;
            self.failovers += 1;
            if let Some(ins) = self.engines[target].instruments() {
                ins.failovers.inc();
            }
            if let Some(o) = self.engines[target].observer() {
                o.tracer().event(
                    "failover",
                    &[
                        ("request", global.into()),
                        ("from", primary.into()),
                        ("to", target.into()),
                    ],
                );
            }
            target
        };
        let local = self.engines[shard].submit_keyed(job, deadline_ns, global)?;
        debug_assert_eq!(local as usize, self.locals[shard].len());
        self.locals[shard].push(global);
        self.next_id += 1;
        Ok(global)
    }

    /// A shard is routable unless the supervisor marks it `Down` or its
    /// engine has failed and the supervisor simply hasn't pumped yet.
    fn shard_is_live(&self, shard: usize) -> bool {
        self.supervisor.is_live(shard) && !self.engines[shard].is_failed()
    }

    /// Pumps every shard in shard order, returning all responses with
    /// their **global** request ids. This is also where supervision
    /// runs: `Down` shards whose backoff has elapsed are resurrected
    /// before pumping, and shards that die during the pump are recorded
    /// (their queued requests were already answered terminally by the
    /// engine's failure path).
    pub fn pump(&mut self) -> Vec<ServeResponse> {
        let now_ns = self.clock.now_ns();
        let mut out = Vec::new();
        for shard in 0..self.engines.len() {
            if self.supervisor.restart_due(shard, now_ns) && self.engines[shard].resurrect() {
                self.supervisor.record_restart(shard);
            }
            let was_failed = self.engines[shard].is_failed();
            let responses = self.engines[shard].pump();
            let clean = responses
                .iter()
                .any(|r| matches!(r.disposition, crate::Disposition::Completed { .. }));
            out.extend(self.globalize(shard, responses));
            if !was_failed && self.engines[shard].is_failed() {
                self.supervisor.record_failure(shard, now_ns);
            } else if clean {
                self.supervisor.record_clean_batch(shard);
            }
        }
        out
    }

    /// Drains every shard in shard order; afterwards all shards reject
    /// with [`RejectReason::Draining`].
    pub fn drain(&mut self) -> Vec<ServeResponse> {
        let mut out = Vec::new();
        for shard in 0..self.engines.len() {
            let responses = self.engines[shard].drain();
            out.extend(self.globalize(shard, responses));
        }
        out
    }

    /// Total requests queued across all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.engines.iter().map(ServeEngine::queue_depth).sum()
    }

    /// Summed tallies across shards.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        sum_stats(self.engines.iter().map(ServeEngine::stats))
    }

    /// Summed result-cache counters across shards (`None` when the
    /// config has caching off).
    #[must_use]
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        sum_cache_stats(self.engines.iter().map(ServeEngine::cache_stats))
    }

    /// Per-shard tallies, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.engines.iter().map(ServeEngine::stats).collect()
    }

    /// Per-shard health, in shard order, as the supervisor last saw it
    /// (updated at every [`Self::pump`]).
    #[must_use]
    pub fn healths(&self) -> Vec<ShardHealth> {
        self.supervisor.healths()
    }

    /// Requests rerouted off a `Down` primary so far.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Shard restarts performed so far, across all shards.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.supervisor.total_restarts()
    }

    /// The supervisor's view of the shards (for tests and tools).
    #[must_use]
    pub fn supervisor(&self) -> &ShardSupervisor {
        &self.supervisor
    }

    /// One shard's batch log with member ids rewritten to global ids.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn batch_log(&self, shard: usize) -> Vec<BatchRecord> {
        self.engines[shard]
            .batch_log()
            .iter()
            .map(|b| BatchRecord {
                index: b.index,
                trigger: b.trigger,
                seed: b.seed,
                request_ids: b
                    .request_ids
                    .iter()
                    .map(|&local| self.locals[shard][local as usize])
                    .collect(),
            })
            .collect()
    }

    /// One shard's engine (for observers / wakeups in tests and tools).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &ServeEngine {
        &self.engines[shard]
    }

    /// Per-shard SLO trackers, in shard order (empty entries for
    /// unobserved shards).
    #[must_use]
    pub fn slos(&self) -> Vec<Option<Arc<canti_obs::SloTracker>>> {
        self.engines.iter().map(ServeEngine::slo).collect()
    }

    /// Per-shard request logs, in shard order (empty entries for
    /// unobserved shards).
    #[must_use]
    pub fn request_logs(&self) -> Vec<Option<Arc<canti_obs::RequestLog>>> {
        self.engines.iter().map(ServeEngine::request_log).collect()
    }

    /// Per-shard timeline recorders, in shard order (empty entries for
    /// unobserved shards).
    #[must_use]
    pub fn timelines(&self) -> Vec<Option<Arc<canti_obs::TimelineRecorder>>> {
        self.engines.iter().map(ServeEngine::timeline).collect()
    }

    fn globalize(&self, shard: usize, responses: Vec<ServeResponse>) -> Vec<ServeResponse> {
        responses
            .into_iter()
            .map(|mut r| {
                r.request_id = self.locals[shard][r.request_id as usize];
                r
            })
            .collect()
    }
}

/// A claim on one sharded request's response: a shard-local
/// [`Ticket`] plus the global id it redeems under.
#[derive(Debug)]
pub struct ShardTicket {
    global_id: u64,
    shard: usize,
    inner: Ticket,
}

impl ShardTicket {
    /// The global request id this ticket redeems.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.global_id
    }

    /// The shard serving this request (after failover, when it applied).
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Blocks until the response arrives, rewritten to the global id.
    /// Always terminal: if the serving shard dies, the response is
    /// [`crate::Disposition::Failed`] — never a hang.
    #[must_use]
    pub fn wait(self) -> ServeResponse {
        let mut response = self.inner.wait();
        response.request_id = self.global_id;
        response
    }

    /// Takes the response if already available, rewritten to the global
    /// id, without blocking.
    #[must_use]
    pub fn poll(&self) -> Option<ServeResponse> {
        self.inner.poll().map(|mut r| {
            r.request_id = self.global_id;
            r
        })
    }
}

/// The threaded form of the sharded serving layer: one
/// [`ServeService`] (batcher thread, persistent pool) per shard, with
/// submissions routed by [`route_request`] under a single id lock,
/// failing over via [`route_failover`] when a shard is down, and a
/// background supervisor thread resurrecting dead shards after their
/// backoff.
pub struct ShardedService {
    shards: Vec<Arc<ServeService>>,
    /// The global id allocator. Held across the shard submit so id
    /// assignment and admission commit atomically — a rejected submit
    /// burns no id.
    router: Mutex<u64>,
    failovers: Arc<AtomicU64>,
    supervisor_stop: Arc<AtomicBool>,
    supervisor_thread: Option<std::thread::JoinHandle<()>>,
}

impl ShardedService {
    /// Starts `config.shard_count()` services on the wall clock.
    #[must_use]
    pub fn start(config: ShardedConfig) -> Self {
        Self::start_with(
            config,
            None,
            &ServeFaultPlan::default(),
            SupervisorConfig::default(),
        )
    }

    /// Starts one observed service per shard, each timed on its own
    /// observer's clock (construct the observers over one shared clock
    /// for coherent timestamps).
    ///
    /// # Panics
    ///
    /// Panics unless `observers.len()` equals the shard count.
    #[must_use]
    pub fn start_observed(config: ShardedConfig, observers: Vec<FarmObserver>) -> Self {
        Self::start_with(
            config,
            Some(observers),
            &ServeFaultPlan::default(),
            SupervisorConfig::default(),
        )
    }

    /// [`Self::start_observed`] with a serve fault plan armed and an
    /// explicit supervision policy — the chaos entry point.
    ///
    /// # Panics
    ///
    /// Panics unless `observers.len()` equals the shard count.
    #[must_use]
    pub fn start_chaos(
        config: ShardedConfig,
        observers: Vec<FarmObserver>,
        plan: &ServeFaultPlan,
        supervision: SupervisorConfig,
    ) -> Self {
        Self::start_with(config, Some(observers), plan, supervision)
    }

    fn start_with(
        config: ShardedConfig,
        observers: Option<Vec<FarmObserver>>,
        plan: &ServeFaultPlan,
        supervision: SupervisorConfig,
    ) -> Self {
        let n = config.shard_count();
        let shards: Vec<Arc<ServeService>> = match observers {
            Some(observers) => {
                assert_eq!(observers.len(), n, "one observer per shard");
                observers
                    .into_iter()
                    .enumerate()
                    .map(|(shard, o)| {
                        Arc::new(ServeService::start_chaos(config.base, o, plan, shard))
                    })
                    .collect()
            }
            None => (0..n)
                .map(|shard| {
                    let svc = ServeService::start(config.base);
                    debug_assert_eq!(svc.health().as_u8(), ShardHealth::Healthy.as_u8());
                    let _ = shard;
                    Arc::new(svc)
                })
                .collect(),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let thread = spawn_service_supervisor(shards.clone(), supervision, Arc::clone(&stop));
        Self {
            shards,
            router: Mutex::new(0),
            failovers: Arc::new(AtomicU64::new(0)),
            supervisor_stop: stop,
            supervisor_thread: Some(thread),
        }
    }

    /// The shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Submits a request, routed by the global id rule (with failover
    /// when the primary shard is down).
    ///
    /// # Errors
    ///
    /// Rejected immediately with the target shard's [`RejectReason`];
    /// [`RejectReason::ShardFailed`] when no live shard remains.
    pub fn submit(&self, job: JobSpec) -> Result<ShardTicket, RejectReason> {
        self.submit_keyed(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission.
    ///
    /// # Errors
    ///
    /// Rejected immediately with the target shard's [`RejectReason`].
    pub fn submit_with_deadline(
        &self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<ShardTicket, RejectReason> {
        self.submit_keyed(job, Some(deadline_ns))
    }

    fn submit_keyed(
        &self,
        job: JobSpec,
        deadline_ns: Option<u64>,
    ) -> Result<ShardTicket, RejectReason> {
        let mut next_id = self
            .router
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let global_id = *next_id;
        let n = self.shards.len();
        let primary = route_request(global_id, n);
        let mut mask: Vec<bool> = self.shards.iter().map(|s| !s.is_down()).collect();
        // a shard can die between the mask read and the submit; each
        // ShardFailed answer marks it dead in our local mask and retries
        // the failover rule, until no live shard remains
        loop {
            let shard = match route_failover(global_id, &mask) {
                Some(s) => s,
                None => return Err(RejectReason::ShardFailed),
            };
            match self.shards[shard].submit_keyed(job.clone(), deadline_ns, global_id) {
                Ok(inner) => {
                    if shard != primary {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                        self.shards[shard].note_failover(global_id, primary);
                    }
                    *next_id += 1;
                    return Ok(ShardTicket {
                        global_id,
                        shard,
                        inner,
                    });
                }
                Err(RejectReason::ShardFailed) => {
                    mask[shard] = false;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Total requests queued across all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth()).sum()
    }

    /// Summed tallies across shards.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        sum_stats(self.shards.iter().map(|s| s.stats()))
    }

    /// Summed result-cache counters across shards (`None` when the
    /// config has caching off).
    #[must_use]
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        sum_cache_stats(self.shards.iter().map(|s| s.cache_stats()))
    }

    /// Per-shard tallies, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Per-shard health, in shard order.
    #[must_use]
    pub fn healths(&self) -> Vec<ShardHealth> {
        self.shards.iter().map(|s| s.health()).collect()
    }

    /// Requests rerouted off a down primary so far.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Shard restarts performed by the supervisor so far, across all
    /// shards.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts()).sum()
    }

    /// Per-shard observers (empty entries when started unobserved).
    #[must_use]
    pub fn observers(&self) -> Vec<Option<FarmObserver>> {
        self.shards.iter().map(|s| s.observer()).collect()
    }

    /// Per-shard SLO trackers, in shard order (empty entries when
    /// started unobserved).
    #[must_use]
    pub fn slos(&self) -> Vec<Option<Arc<canti_obs::SloTracker>>> {
        self.shards.iter().map(|s| s.slo()).collect()
    }

    /// Per-shard request logs, in shard order (empty entries when
    /// started unobserved).
    #[must_use]
    pub fn request_logs(&self) -> Vec<Option<Arc<canti_obs::RequestLog>>> {
        self.shards.iter().map(|s| s.request_log()).collect()
    }

    /// Per-shard timeline recorders, in shard order (empty entries when
    /// started unobserved).
    #[must_use]
    pub fn timelines(&self) -> Vec<Option<Arc<canti_obs::TimelineRecorder>>> {
        self.shards.iter().map(|s| s.timeline()).collect()
    }

    /// Per-shard pool widths (the worker threads each shard's executor
    /// actually runs), in shard order.
    #[must_use]
    pub fn pool_threads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.pool_threads()).collect()
    }

    /// Gracefully shuts down every shard in shard order (stopping the
    /// supervisor thread first so nothing resurrects mid-drain),
    /// returning the final per-shard tallies.
    #[must_use = "the drain summaries report what each shard did"]
    pub fn shutdown(mut self) -> Vec<ServeStats> {
        self.supervisor_stop.store(true, Ordering::Release);
        if let Some(handle) = self.supervisor_thread.take() {
            let _ = handle.join();
        }
        self.shards.iter().map(|s| s.shutdown_ref()).collect()
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards.len())
            .field("healths", &self.healths())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The wall-clock supervisor loop behind a [`ShardedService`]: polls
/// shard health, schedules restarts with the same exponential backoff
/// the deterministic supervisor uses, and revives dead shards.
fn spawn_service_supervisor(
    shards: Vec<Arc<ServeService>>,
    config: SupervisorConfig,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("canti-serve-supervisor".into())
        .spawn(move || {
            let mut failures = vec![0u32; shards.len()];
            let mut due: Vec<Option<Instant>> = vec![None; shards.len()];
            while !stop.load(Ordering::Acquire) {
                for (shard, svc) in shards.iter().enumerate() {
                    if !svc.is_down() {
                        due[shard] = None;
                        continue;
                    }
                    match due[shard] {
                        None => {
                            failures[shard] += 1;
                            let shift = (failures[shard] - 1).min(config.backoff_max_shift);
                            let delay_ns = config.backoff_base_ns.saturating_mul(1u64 << shift);
                            due[shard] = Some(Instant::now() + Duration::from_nanos(delay_ns));
                        }
                        Some(t) if Instant::now() >= t => {
                            if svc.revive() {
                                due[shard] = None;
                            }
                        }
                        Some(_) => {}
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
        .expect("spawn canti-serve-supervisor")
}

fn sum_cache_stats(
    stats: impl Iterator<Item = Option<crate::cache::CacheStats>>,
) -> Option<crate::cache::CacheStats> {
    stats.fold(None, |acc, s| match (acc, s) {
        (Some(a), Some(b)) => Some(a.merged(b)),
        (one, other) => one.or(other),
    })
}

fn sum_stats(stats: impl Iterator<Item = ServeStats>) -> ServeStats {
    stats.fold(ServeStats::default(), |mut acc, s| {
        acc.admitted += s.admitted;
        acc.rejected += s.rejected;
        acc.expired += s.expired;
        acc.completed += s.completed;
        acc.batches += s.batches;
        acc.failed += s.failed;
        acc.shed += s.shed;
        acc.cache_hits += s.cache_hits;
        acc.coalesced += s.coalesced;
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_farm::ProbeMode;
    use canti_obs::VirtualClock;

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    #[test]
    fn splitmix_is_a_bijection_probe_and_routing_is_stable() {
        // distinct inputs → distinct outputs on a small probe set
        let outs: std::collections::BTreeSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
        // the routing rule is a pure function: same id, same shard
        for id in 0..100 {
            assert_eq!(route_request(id, 4), route_request(id, 4));
            assert!(route_request(id, 4) < 4);
        }
        assert_eq!(route_request(42, 1), 0);
    }

    #[test]
    #[should_panic(expected = "shards must be >= 1")]
    fn zero_shards_is_a_configuration_error_not_a_clamp() {
        let _ = route_request(42, 0);
    }

    #[test]
    #[should_panic(expected = "shards must be >= 1")]
    fn zero_shard_config_panics_at_the_count() {
        let cfg = ShardedConfig {
            shards: 0,
            base: ServeConfig::default(),
        };
        let _ = cfg.shard_count();
    }

    #[test]
    fn request_seed_separates_ids_and_bases() {
        assert_ne!(request_seed(1, 0), request_seed(1, 1));
        assert_ne!(request_seed(1, 0), request_seed(2, 0));
        assert_eq!(request_seed(7, 3), request_seed(7, 3));
    }

    #[test]
    fn failover_prefers_the_live_primary_and_is_deterministic() {
        let all_live = vec![true; 4];
        for id in 0..200u64 {
            assert_eq!(
                route_failover(id, &all_live),
                Some(route_request(id, 4)),
                "live primary wins"
            );
        }
        // primary down: the fallback is stable, differs from the
        // primary, and only ever lands on live shards
        for id in 0..200u64 {
            let primary = route_request(id, 4);
            let mut mask = vec![true; 4];
            mask[primary] = false;
            let target = route_failover(id, &mask).expect("three live shards remain");
            assert_ne!(target, primary);
            assert!(mask[target]);
            assert_eq!(
                route_failover(id, &mask),
                Some(target),
                "replays identically"
            );
        }
        // all dead: nowhere to go
        assert_eq!(route_failover(7, &[false, false]), None);
    }

    #[test]
    fn failover_spreads_rerouted_load() {
        // kill shard 0; ids whose primary was 0 must not all pile onto
        // one survivor
        let mut hits = [0usize; 4];
        let mask = [false, true, true, true];
        for id in 0..4000u64 {
            if route_request(id, 4) == 0 {
                hits[route_failover(id, &mask).unwrap()] += 1;
            }
        }
        assert_eq!(hits[0], 0);
        for (shard, &h) in hits.iter().enumerate().skip(1) {
            assert!(
                h > 0,
                "shard {shard} took none of the rerouted load: {hits:?}"
            );
        }
    }

    #[test]
    fn shard_health_labels_and_encoding_round_trip() {
        for h in [
            ShardHealth::Healthy,
            ShardHealth::Degraded,
            ShardHealth::Down,
            ShardHealth::Recovering,
        ] {
            assert_eq!(ShardHealth::from_u8(h.as_u8()), h);
            assert!(!h.label().is_empty());
        }
        assert!(ShardHealth::Recovering.is_live());
        assert!(!ShardHealth::Down.is_live());
        assert_eq!(
            ShardHealth::from_u8(250),
            ShardHealth::Down,
            "unknown → Down"
        );
    }

    #[test]
    fn sharded_engine_routes_and_globalizes_ids() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = ShardedEngine::new(
            ShardedConfig {
                shards: 4,
                base: ServeConfig {
                    max_batch: 1,
                    threads: 1,
                    ..ServeConfig::default()
                },
            },
            clock as Arc<dyn ObsClock>,
        );
        let mut ids = Vec::new();
        for i in 0..12 {
            ids.push(e.submit(probe(f64::from(i))).expect("admitted"));
        }
        assert_eq!(ids, (0..12).collect::<Vec<u64>>(), "global ids are dense");
        let responses = e.pump();
        assert_eq!(responses.len(), 12, "max_batch 1 fires everything");
        let mut answered: Vec<u64> = responses.iter().map(|r| r.request_id).collect();
        answered.sort_unstable();
        assert_eq!(answered, ids, "every global id answered exactly once");
        // the batch logs carry global ids and cover the full id space
        let mut logged: Vec<u64> = (0..e.shard_count())
            .flat_map(|s| e.batch_log(s).into_iter().flat_map(|b| b.request_ids))
            .collect();
        logged.sort_unstable();
        assert_eq!(logged, ids);
        // and each id sits on the shard the routing rule names
        for s in 0..e.shard_count() {
            for b in e.batch_log(s) {
                for id in b.request_ids {
                    assert_eq!(route_request(id, 4), s, "id {id} on wrong shard");
                }
            }
        }
        assert_eq!(e.stats().completed, 12);
        assert_eq!(e.healths(), vec![ShardHealth::Healthy; 4]);
        assert_eq!(e.failovers(), 0);
    }

    #[test]
    fn rejected_submissions_do_not_burn_global_ids() {
        let clock = Arc::new(VirtualClock::new());
        // capacity 1, linger unreachable: the second submission to any
        // one shard must be rejected
        let mut e = ShardedEngine::new(
            ShardedConfig {
                shards: 1,
                base: ServeConfig {
                    queue_capacity: 1,
                    max_batch: 64,
                    linger_ns: u64::MAX,
                    threads: 1,
                    ..ServeConfig::default()
                },
            },
            clock as Arc<dyn ObsClock>,
        );
        assert_eq!(e.submit(probe(1.0)), Ok(0));
        assert_eq!(
            e.submit(probe(2.0)),
            Err(RejectReason::QueueFull { capacity: 1 })
        );
        let drained = e.drain();
        assert_eq!(drained.len(), 1);
        // the id after a rejection continues the dense stream
        assert_eq!(e.stats().admitted, 1);
        assert_eq!(e.stats().rejected, 1);
    }

    #[test]
    fn sharded_service_round_trips_with_global_ids() {
        let service = ShardedService::start(ShardedConfig {
            shards: 3,
            base: ServeConfig {
                max_batch: 2,
                linger_ns: 1_000, // 1 µs: lone requests fire quickly
                threads: 1,
                ..ServeConfig::default()
            },
        });
        let tickets: Vec<ShardTicket> = (0..9)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.id(), i as u64);
            assert_eq!(t.shard(), route_request(i as u64, 3));
            let r = t.wait();
            assert_eq!(r.request_id, i as u64, "ticket rewrites to global id");
            assert!(r.disposition.is_ok(), "request {i}: {r}");
        }
        assert_eq!(service.healths(), vec![ShardHealth::Healthy; 3]);
        let per_shard = service.shutdown();
        assert_eq!(per_shard.len(), 3);
        assert_eq!(per_shard.iter().map(|s| s.completed).sum::<u64>(), 9);
    }
}
