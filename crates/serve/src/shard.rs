//! Sharded serving: N independent farm shards behind deterministic
//! request routing.
//!
//! A shard is a complete serving stack of its own — admission queue,
//! batcher, executor, persistent worker pool — so shards share no locks
//! and no queues. What binds them into one service is the routing rule
//! and the request-seed rule, both pure functions of the **global**
//! request id:
//!
//! * **Routing** — [`route_request`] sends global id `g` to shard
//!   `splitmix64(g) % shards`. Nothing else (arrival time, payload,
//!   queue depths) influences placement, so the shard assignment of a
//!   request stream is reproducible and invariant under reordering of
//!   *other* requests.
//! * **Request seeds** — [`request_seed`] derives each request's RNG
//!   stream from `(base_seed, global id)` instead of its batch slot.
//!   A request therefore computes the same payload bits no matter which
//!   batch, slot, or shard it lands in — this is what extends the
//!   serve determinism contract from "any worker count" to "any worker
//!   *and shard* count".
//!
//! # What is and is not shard-invariant
//!
//! Changing the shard count re-partitions the queues, so batch
//! *indices*, batch *membership* and queue-depth-dependent decisions
//! (a full queue, a linger expiry) legitimately differ between shard
//! counts. The contract pinned by `tests/shard_determinism.rs` is:
//! per-request payload bits, the routing assignment, and scripted
//! deadline expiries are identical at any `(workers, shards)`; the
//! *full* trace (batches included) is identical across worker counts at
//! a fixed shard count.

use std::sync::Arc;
use std::sync::Mutex;

use canti_farm::{FarmObserver, JobSpec};
use canti_obs::ObsClock;

use crate::engine::{BatchRecord, ServeEngine, ServeStats};
use crate::queue::RejectReason;
use crate::response::ServeResponse;
use crate::service::{ServeService, Ticket};
use crate::ServeConfig;

/// The 64-bit splitmix finalizer: a cheap, well-mixed bijection on
/// `u64`. Used for both routing and seed derivation so neighboring ids
/// land on distant shards and in distant RNG streams.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The routing rule: global request id → shard index. A pure function
/// of `(request_id, shards)`; `shards` is clamped to ≥ 1.
#[must_use]
pub fn route_request(request_id: u64, shards: usize) -> usize {
    let shards = shards.max(1) as u64;
    (splitmix64(request_id) % shards) as usize
}

/// The seed rule: `(base_seed, global request id)` → the seed this
/// request's farm RNG stream derives from. Independent of batch index,
/// batch slot and shard, which is what makes payloads shard-invariant.
#[must_use]
pub fn request_seed(base_seed: u64, request_id: u64) -> u64 {
    splitmix64(base_seed ^ splitmix64(request_id))
}

/// Configuration of a sharded serving layer: the shard count plus the
/// per-shard [`ServeConfig`] every shard runs with (same base seed on
/// every shard — [`request_seed`] already separates the streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Independent farm shards. Clamped to ≥ 1.
    pub shards: usize,
    /// The per-shard admission/batching/execution policy.
    pub base: ServeConfig,
}

impl ShardedConfig {
    /// The effective shard count (configured value, at least 1).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.max(1)
    }
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            base: ServeConfig::default(),
        }
    }
}

/// The deterministic, explicitly pumped form of the sharded serving
/// layer: [`crate::ServeEngine`]s behind [`route_request`], sharing one
/// injected clock. This is what the scripted shard-determinism tests
/// drive.
#[derive(Debug)]
pub struct ShardedEngine {
    engines: Vec<ServeEngine>,
    /// Per shard: local request id → global request id, in admission
    /// order (shard engines assign dense local ids on success).
    locals: Vec<Vec<u64>>,
    next_id: u64,
}

impl ShardedEngine {
    /// A sharded engine under `config`, timing every shard on `clock`.
    #[must_use]
    pub fn new(config: ShardedConfig, clock: Arc<dyn ObsClock>) -> Self {
        let n = config.shard_count();
        Self {
            engines: (0..n)
                .map(|_| ServeEngine::new(config.base, Arc::clone(&clock)))
                .collect(),
            locals: vec![Vec::new(); n],
            next_id: 0,
        }
    }

    /// Attaches one observer per shard (so each shard records into its
    /// own registry, which the merged `/metrics` view labels by shard).
    ///
    /// # Panics
    ///
    /// Panics unless `observers.len()` equals the shard count.
    #[must_use]
    pub fn with_observers(mut self, observers: Vec<FarmObserver>) -> Self {
        assert_eq!(
            observers.len(),
            self.engines.len(),
            "one observer per shard"
        );
        self.engines = self
            .engines
            .into_iter()
            .zip(observers)
            .map(|(e, o)| e.with_observer(o))
            .collect();
        self
    }

    /// The shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// The shard the next admitted request will route to.
    #[must_use]
    pub fn next_shard(&self) -> usize {
        route_request(self.next_id, self.engines.len())
    }

    /// Submits a request (config default deadline applies), returning
    /// its **global** id.
    ///
    /// # Errors
    ///
    /// Rejected with the target shard's [`RejectReason`]; a rejected
    /// submission does not consume a global id, so the id stream — and
    /// with it every later request's routing and seed — is independent
    /// of transient rejections.
    pub fn submit(&mut self, job: JobSpec) -> Result<u64, RejectReason> {
        self.submit_keyed(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission.
    ///
    /// # Errors
    ///
    /// Rejected with the target shard's [`RejectReason`].
    pub fn submit_with_deadline(
        &mut self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<u64, RejectReason> {
        self.submit_keyed(job, Some(deadline_ns))
    }

    fn submit_keyed(
        &mut self,
        job: JobSpec,
        deadline_ns: Option<u64>,
    ) -> Result<u64, RejectReason> {
        let global = self.next_id;
        let shard = route_request(global, self.engines.len());
        let local = self.engines[shard].submit_keyed(job, deadline_ns, global)?;
        debug_assert_eq!(local as usize, self.locals[shard].len());
        self.locals[shard].push(global);
        self.next_id += 1;
        Ok(global)
    }

    /// Pumps every shard in shard order, returning all responses with
    /// their **global** request ids.
    pub fn pump(&mut self) -> Vec<ServeResponse> {
        let mut out = Vec::new();
        for shard in 0..self.engines.len() {
            let responses = self.engines[shard].pump();
            out.extend(self.globalize(shard, responses));
        }
        out
    }

    /// Drains every shard in shard order; afterwards all shards reject
    /// with [`RejectReason::Draining`].
    pub fn drain(&mut self) -> Vec<ServeResponse> {
        let mut out = Vec::new();
        for shard in 0..self.engines.len() {
            let responses = self.engines[shard].drain();
            out.extend(self.globalize(shard, responses));
        }
        out
    }

    /// Total requests queued across all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.engines.iter().map(ServeEngine::queue_depth).sum()
    }

    /// Summed tallies across shards.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        sum_stats(self.engines.iter().map(ServeEngine::stats))
    }

    /// Per-shard tallies, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.engines.iter().map(ServeEngine::stats).collect()
    }

    /// One shard's batch log with member ids rewritten to global ids.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn batch_log(&self, shard: usize) -> Vec<BatchRecord> {
        self.engines[shard]
            .batch_log()
            .iter()
            .map(|b| BatchRecord {
                index: b.index,
                trigger: b.trigger,
                seed: b.seed,
                request_ids: b
                    .request_ids
                    .iter()
                    .map(|&local| self.locals[shard][local as usize])
                    .collect(),
            })
            .collect()
    }

    /// One shard's engine (for observers / wakeups in tests and tools).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &ServeEngine {
        &self.engines[shard]
    }

    /// Per-shard SLO trackers, in shard order (empty entries for
    /// unobserved shards).
    #[must_use]
    pub fn slos(&self) -> Vec<Option<Arc<canti_obs::SloTracker>>> {
        self.engines.iter().map(ServeEngine::slo).collect()
    }

    /// Per-shard request logs, in shard order (empty entries for
    /// unobserved shards).
    #[must_use]
    pub fn request_logs(&self) -> Vec<Option<Arc<canti_obs::RequestLog>>> {
        self.engines.iter().map(ServeEngine::request_log).collect()
    }

    /// Per-shard timeline recorders, in shard order (empty entries for
    /// unobserved shards).
    #[must_use]
    pub fn timelines(&self) -> Vec<Option<Arc<canti_obs::TimelineRecorder>>> {
        self.engines.iter().map(ServeEngine::timeline).collect()
    }

    fn globalize(&self, shard: usize, responses: Vec<ServeResponse>) -> Vec<ServeResponse> {
        responses
            .into_iter()
            .map(|mut r| {
                r.request_id = self.locals[shard][r.request_id as usize];
                r
            })
            .collect()
    }
}

/// A claim on one sharded request's response: a shard-local
/// [`Ticket`] plus the global id it redeems under.
#[derive(Debug)]
pub struct ShardTicket {
    global_id: u64,
    shard: usize,
    inner: Ticket,
}

impl ShardTicket {
    /// The global request id this ticket redeems.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.global_id
    }

    /// The shard serving this request.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Blocks until the response arrives, rewritten to the global id.
    #[must_use]
    pub fn wait(self) -> ServeResponse {
        let mut response = self.inner.wait();
        response.request_id = self.global_id;
        response
    }

    /// Takes the response if already available, rewritten to the global
    /// id, without blocking.
    #[must_use]
    pub fn poll(&self) -> Option<ServeResponse> {
        self.inner.poll().map(|mut r| {
            r.request_id = self.global_id;
            r
        })
    }
}

/// The threaded form of the sharded serving layer: one
/// [`ServeService`] (batcher thread, persistent pool) per shard, with
/// submissions routed by [`route_request`] under a single id lock.
pub struct ShardedService {
    shards: Vec<ServeService>,
    /// The global id allocator. Held across the shard submit so id
    /// assignment and admission commit atomically — a rejected submit
    /// burns no id.
    router: Mutex<u64>,
}

impl ShardedService {
    /// Starts `config.shard_count()` services on the wall clock.
    #[must_use]
    pub fn start(config: ShardedConfig) -> Self {
        Self {
            shards: (0..config.shard_count())
                .map(|_| ServeService::start(config.base))
                .collect(),
            router: Mutex::new(0),
        }
    }

    /// Starts one observed service per shard, each timed on its own
    /// observer's clock (construct the observers over one shared clock
    /// for coherent timestamps).
    ///
    /// # Panics
    ///
    /// Panics unless `observers.len()` equals the shard count.
    #[must_use]
    pub fn start_observed(config: ShardedConfig, observers: Vec<FarmObserver>) -> Self {
        assert_eq!(
            observers.len(),
            config.shard_count(),
            "one observer per shard"
        );
        Self {
            shards: observers
                .into_iter()
                .map(|o| ServeService::start_observed(config.base, o))
                .collect(),
            router: Mutex::new(0),
        }
    }

    /// The shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Submits a request, routed by the global id rule.
    ///
    /// # Errors
    ///
    /// Rejected immediately with the target shard's [`RejectReason`].
    pub fn submit(&self, job: JobSpec) -> Result<ShardTicket, RejectReason> {
        self.submit_keyed(job, None)
    }

    /// Submits a request that expires `deadline_ns` after admission.
    ///
    /// # Errors
    ///
    /// Rejected immediately with the target shard's [`RejectReason`].
    pub fn submit_with_deadline(
        &self,
        job: JobSpec,
        deadline_ns: u64,
    ) -> Result<ShardTicket, RejectReason> {
        self.submit_keyed(job, Some(deadline_ns))
    }

    fn submit_keyed(
        &self,
        job: JobSpec,
        deadline_ns: Option<u64>,
    ) -> Result<ShardTicket, RejectReason> {
        let mut next_id = self
            .router
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let global_id = *next_id;
        let shard = route_request(global_id, self.shards.len());
        let inner = self.shards[shard].submit_keyed(job, deadline_ns, global_id)?;
        *next_id += 1;
        Ok(ShardTicket {
            global_id,
            shard,
            inner,
        })
    }

    /// Total requests queued across all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(ServeService::queue_depth).sum()
    }

    /// Summed tallies across shards.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        sum_stats(self.shards.iter().map(ServeService::stats))
    }

    /// Per-shard tallies, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shards.iter().map(ServeService::stats).collect()
    }

    /// Per-shard observers (empty entries when started unobserved).
    #[must_use]
    pub fn observers(&self) -> Vec<Option<FarmObserver>> {
        self.shards.iter().map(ServeService::observer).collect()
    }

    /// Per-shard SLO trackers, in shard order (empty entries when
    /// started unobserved).
    #[must_use]
    pub fn slos(&self) -> Vec<Option<Arc<canti_obs::SloTracker>>> {
        self.shards.iter().map(ServeService::slo).collect()
    }

    /// Per-shard request logs, in shard order (empty entries when
    /// started unobserved).
    #[must_use]
    pub fn request_logs(&self) -> Vec<Option<Arc<canti_obs::RequestLog>>> {
        self.shards.iter().map(ServeService::request_log).collect()
    }

    /// Per-shard timeline recorders, in shard order (empty entries when
    /// started unobserved).
    #[must_use]
    pub fn timelines(&self) -> Vec<Option<Arc<canti_obs::TimelineRecorder>>> {
        self.shards.iter().map(ServeService::timeline).collect()
    }

    /// Per-shard pool widths (the worker threads each shard's executor
    /// actually runs), in shard order.
    #[must_use]
    pub fn pool_threads(&self) -> Vec<usize> {
        self.shards.iter().map(ServeService::pool_threads).collect()
    }

    /// Gracefully shuts down every shard in shard order, returning the
    /// final per-shard tallies.
    #[must_use = "the drain summaries report what each shard did"]
    pub fn shutdown(self) -> Vec<ServeStats> {
        self.shards.into_iter().map(|s| s.shutdown()).collect()
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

fn sum_stats(stats: impl Iterator<Item = ServeStats>) -> ServeStats {
    stats.fold(ServeStats::default(), |mut acc, s| {
        acc.admitted += s.admitted;
        acc.rejected += s.rejected;
        acc.expired += s.expired;
        acc.completed += s.completed;
        acc.batches += s.batches;
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_farm::ProbeMode;
    use canti_obs::VirtualClock;

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    #[test]
    fn splitmix_is_a_bijection_probe_and_routing_is_stable() {
        // distinct inputs → distinct outputs on a small probe set
        let outs: std::collections::BTreeSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
        // the routing rule is a pure function: same id, same shard
        for id in 0..100 {
            assert_eq!(route_request(id, 4), route_request(id, 4));
            assert!(route_request(id, 4) < 4);
        }
        assert_eq!(route_request(42, 0), 0, "shards clamp to 1");
        assert_eq!(route_request(42, 1), 0);
    }

    #[test]
    fn request_seed_separates_ids_and_bases() {
        assert_ne!(request_seed(1, 0), request_seed(1, 1));
        assert_ne!(request_seed(1, 0), request_seed(2, 0));
        assert_eq!(request_seed(7, 3), request_seed(7, 3));
    }

    #[test]
    fn sharded_engine_routes_and_globalizes_ids() {
        let clock = Arc::new(VirtualClock::new());
        let mut e = ShardedEngine::new(
            ShardedConfig {
                shards: 4,
                base: ServeConfig {
                    max_batch: 1,
                    threads: 1,
                    ..ServeConfig::default()
                },
            },
            clock as Arc<dyn ObsClock>,
        );
        let mut ids = Vec::new();
        for i in 0..12 {
            ids.push(e.submit(probe(f64::from(i))).expect("admitted"));
        }
        assert_eq!(ids, (0..12).collect::<Vec<u64>>(), "global ids are dense");
        let responses = e.pump();
        assert_eq!(responses.len(), 12, "max_batch 1 fires everything");
        let mut answered: Vec<u64> = responses.iter().map(|r| r.request_id).collect();
        answered.sort_unstable();
        assert_eq!(answered, ids, "every global id answered exactly once");
        // the batch logs carry global ids and cover the full id space
        let mut logged: Vec<u64> = (0..e.shard_count())
            .flat_map(|s| e.batch_log(s).into_iter().flat_map(|b| b.request_ids))
            .collect();
        logged.sort_unstable();
        assert_eq!(logged, ids);
        // and each id sits on the shard the routing rule names
        for s in 0..e.shard_count() {
            for b in e.batch_log(s) {
                for id in b.request_ids {
                    assert_eq!(route_request(id, 4), s, "id {id} on wrong shard");
                }
            }
        }
        assert_eq!(e.stats().completed, 12);
    }

    #[test]
    fn rejected_submissions_do_not_burn_global_ids() {
        let clock = Arc::new(VirtualClock::new());
        // capacity 1, linger unreachable: the second submission to any
        // one shard must be rejected
        let mut e = ShardedEngine::new(
            ShardedConfig {
                shards: 1,
                base: ServeConfig {
                    queue_capacity: 1,
                    max_batch: 64,
                    linger_ns: u64::MAX,
                    threads: 1,
                    ..ServeConfig::default()
                },
            },
            clock as Arc<dyn ObsClock>,
        );
        assert_eq!(e.submit(probe(1.0)), Ok(0));
        assert_eq!(
            e.submit(probe(2.0)),
            Err(RejectReason::QueueFull { capacity: 1 })
        );
        let drained = e.drain();
        assert_eq!(drained.len(), 1);
        // the id after a rejection continues the dense stream
        assert_eq!(e.stats().admitted, 1);
        assert_eq!(e.stats().rejected, 1);
    }

    #[test]
    fn sharded_service_round_trips_with_global_ids() {
        let service = ShardedService::start(ShardedConfig {
            shards: 3,
            base: ServeConfig {
                max_batch: 2,
                linger_ns: 1_000, // 1 µs: lone requests fire quickly
                threads: 1,
                ..ServeConfig::default()
            },
        });
        let tickets: Vec<ShardTicket> = (0..9)
            .map(|i| service.submit(probe(f64::from(i))).expect("admitted"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.id(), i as u64);
            assert_eq!(t.shard(), route_request(i as u64, 3));
            let r = t.wait();
            assert_eq!(r.request_id, i as u64, "ticket rewrites to global id");
            assert!(r.disposition.is_ok(), "request {i}: {r}");
        }
        let per_shard = service.shutdown();
        assert_eq!(per_shard.len(), 3);
        assert_eq!(per_shard.iter().map(|s| s.completed).sum::<u64>(), 9);
    }
}
