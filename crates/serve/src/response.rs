//! What a request gets back from the serving layer.

use std::fmt;

use canti_farm::{FarmError, JobOutput};

use crate::RejectReason;

/// The serving layer's answer to one admitted request.
///
/// Equality is exact (payload `f64`s compare bitwise through
/// [`JobOutput`]'s derived `PartialEq`), which is what the determinism
/// tests lean on: two runs of the same arrival script must produce `==`
/// response streams at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The id [`crate::AdmissionQueue::submit`] handed out.
    pub request_id: u64,
    /// The request-scoped trace id: [`canti_obs::trace_id`] of the
    /// global admission id, fixed at admission. Every span and event the
    /// request left in the telemetry stream carries the same id.
    pub trace: u64,
    /// How the request ended.
    pub disposition: Disposition,
}

/// Where one completed request's latency went, on the serve clock.
///
/// The five phases partition the request's total latency exactly:
/// `cache_ns + queue_ns + form_ns + exec_ns + respond_ns == latency_ns`.
/// On a [`canti_obs::VirtualClock`] every anchor is a scripted reading,
/// so breakdowns are bit-identical at any worker count. A cache hit is
/// all `cache_ns` (the other phases never happened); a farm-served
/// request has `cache_ns` 0 (with the cache off) or the lookup cost of
/// its admission-time miss (with it on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// The admission-time result-cache lookup (`cache_lookup` phase),
    /// ns. Zero when the cache is disabled.
    pub cache_ns: u64,
    /// Admission to batch formation: time spent waiting in the
    /// admission queue, ns.
    pub queue_ns: u64,
    /// Batch formation to farm execution start, ns (lock handoff and
    /// batch assembly).
    pub form_ns: u64,
    /// The farm run itself, ns.
    pub exec_ns: u64,
    /// Farm completion to response assembly, ns.
    pub respond_ns: u64,
}

impl LatencyBreakdown {
    /// The phases summed — equals the response's `latency_ns`.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.cache_ns + self.queue_ns + self.form_ns + self.exec_ns + self.respond_ns
    }
}

/// Terminal state of an admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// The request rode in batch `batch` and the farm produced a result
    /// (which may itself be a per-job [`FarmError`] — job failure is a
    /// completed request, not a serving failure).
    Completed {
        /// Index of the batch that carried the request.
        batch: u64,
        /// Admission-to-completion time on the serve clock, ns.
        latency_ns: u64,
        /// Where that latency went, phase by phase.
        breakdown: LatencyBreakdown,
        /// The farm's per-job outcome.
        result: Result<JobOutput, FarmError>,
    },
    /// The request was answered straight from the content-addressed
    /// result cache at admission: it never occupied a queue slot or rode
    /// a batch. By the determinism contract the payload is bit-identical
    /// to what a farm solve of the same spec would have produced.
    CacheHit {
        /// Admission-to-answer time on the serve clock, ns (the cache
        /// lookup itself).
        latency_ns: u64,
        /// The breakdown — all zero except `cache_ns`.
        breakdown: LatencyBreakdown,
        /// The cached per-job outcome (always `Ok`: failures are never
        /// cached).
        result: Result<JobOutput, FarmError>,
    },
    /// The request's deadline passed while it was still queued; it never
    /// entered a batch.
    Expired {
        /// How long the request waited before expiring, ns.
        waited_ns: u64,
        /// The absolute deadline instant it missed, ns.
        deadline_ns: u64,
    },
    /// The serving layer itself gave up on an **already admitted**
    /// request: its shard died before the batch completed
    /// ([`RejectReason::ShardFailed`]) or brownout shedding evicted it
    /// from the queue ([`RejectReason::Shed`]). Terminal by contract —
    /// a waiter on the request's ticket always wakes up with this
    /// response instead of hanging on a dead batcher.
    Failed {
        /// Why the serving layer abandoned the request.
        reason: RejectReason,
    },
}

impl Disposition {
    /// Whether the request completed with a successful job output.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            Self::Completed { result: Ok(_), .. } | Self::CacheHit { result: Ok(_), .. }
        )
    }

    /// Stable label for metrics / trace fields.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Completed { result: Ok(_), .. } => "ok",
            Self::Completed { result: Err(_), .. } => "job_failed",
            Self::CacheHit { .. } => "cache_hit",
            Self::Expired { .. } => "expired",
            Self::Failed { reason } => reason.label(),
        }
    }

    /// The successful job output, however the request was served —
    /// batch completion or cache hit. `None` for failures.
    #[must_use]
    pub fn output(&self) -> Option<&JobOutput> {
        match self {
            Self::Completed {
                result: Ok(out), ..
            }
            | Self::CacheHit {
                result: Ok(out), ..
            } => Some(out),
            _ => None,
        }
    }
}

impl fmt::Display for ServeResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.disposition {
            Disposition::Completed {
                batch,
                latency_ns,
                result,
                ..
            } => match result {
                Ok(out) => write!(
                    f,
                    "request {}: ok in batch {batch} ({} metrics, {latency_ns} ns)",
                    self.request_id,
                    out.metrics.len()
                ),
                Err(e) => write!(
                    f,
                    "request {}: failed in batch {batch} ({e}, {latency_ns} ns)",
                    self.request_id
                ),
            },
            Disposition::CacheHit {
                latency_ns, result, ..
            } => match result {
                Ok(out) => write!(
                    f,
                    "request {}: ok from cache ({} metrics, {latency_ns} ns)",
                    self.request_id,
                    out.metrics.len()
                ),
                Err(e) => write!(
                    f,
                    "request {}: failed from cache ({e}, {latency_ns} ns)",
                    self.request_id
                ),
            },
            Disposition::Expired {
                waited_ns,
                deadline_ns,
            } => write!(
                f,
                "request {}: expired after {waited_ns} ns (deadline at {deadline_ns} ns)",
                self.request_id
            ),
            Disposition::Failed { reason } => {
                write!(f, "request {}: abandoned ({reason})", self.request_id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output() -> JobOutput {
        JobOutput {
            job_index: 0,
            kind: "probe",
            metrics: vec![("value", 1.0)],
        }
    }

    #[test]
    fn labels_and_display_cover_every_disposition() {
        let ok = ServeResponse {
            request_id: 3,
            trace: canti_obs::trace_id(3),
            disposition: Disposition::Completed {
                batch: 1,
                latency_ns: 42,
                breakdown: LatencyBreakdown::default(),
                result: Ok(output()),
            },
        };
        assert!(ok.disposition.is_ok());
        assert_eq!(ok.disposition.label(), "ok");
        assert!(ok.to_string().contains("batch 1"));

        let failed = ServeResponse {
            request_id: 4,
            trace: canti_obs::trace_id(4),
            disposition: Disposition::Completed {
                batch: 1,
                latency_ns: 42,
                breakdown: LatencyBreakdown::default(),
                result: Err(FarmError::Job {
                    job_index: 0,
                    reason: "bad".into(),
                }),
            },
        };
        assert!(!failed.disposition.is_ok());
        assert_eq!(failed.disposition.label(), "job_failed");
        assert!(failed.to_string().contains("failed"));

        let expired = ServeResponse {
            request_id: 5,
            trace: canti_obs::trace_id(5),
            disposition: Disposition::Expired {
                waited_ns: 10,
                deadline_ns: 10,
            },
        };
        assert!(!expired.disposition.is_ok());
        assert_eq!(expired.disposition.label(), "expired");
        assert!(expired.to_string().contains("expired"));

        let failed = ServeResponse {
            request_id: 6,
            trace: canti_obs::trace_id(6),
            disposition: Disposition::Failed {
                reason: RejectReason::ShardFailed,
            },
        };
        assert!(!failed.disposition.is_ok());
        assert_eq!(failed.disposition.label(), "shard_failed");
        assert!(failed.to_string().contains("abandoned"));

        let shed = ServeResponse {
            request_id: 7,
            trace: canti_obs::trace_id(7),
            disposition: Disposition::Failed {
                reason: RejectReason::Shed,
            },
        };
        assert_eq!(shed.disposition.label(), "shed");
    }

    #[test]
    fn breakdown_phases_partition_the_latency() {
        let b = LatencyBreakdown {
            cache_ns: 4,
            queue_ns: 10,
            form_ns: 2,
            exec_ns: 30,
            respond_ns: 1,
        };
        assert_eq!(b.total_ns(), 47);
        assert_eq!(LatencyBreakdown::default().total_ns(), 0);
    }

    #[test]
    fn cache_hits_read_as_successful_completions() {
        let hit = ServeResponse {
            request_id: 8,
            trace: canti_obs::trace_id(8),
            disposition: Disposition::CacheHit {
                latency_ns: 3,
                breakdown: LatencyBreakdown {
                    cache_ns: 3,
                    ..LatencyBreakdown::default()
                },
                result: Ok(output()),
            },
        };
        assert!(hit.disposition.is_ok());
        assert_eq!(hit.disposition.label(), "cache_hit");
        assert_eq!(hit.disposition.output().map(|o| o.job_index), Some(0));
        assert!(hit.to_string().contains("from cache"));
        match &hit.disposition {
            Disposition::CacheHit { breakdown, .. } => {
                assert_eq!(breakdown.total_ns(), 3, "all latency is the lookup");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
