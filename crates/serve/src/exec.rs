//! Batch execution against the farm, plus the serve-side instruments.
//!
//! The executor is intentionally `&self`-only: it owns no queue state,
//! so the threaded service can run a batch *outside* the admission lock
//! — submissions keep getting fast admit/reject answers while a batch
//! computes.

use std::sync::{Arc, Mutex};

use canti_farm::{Farm, FarmConfig, FarmObserver, JobSpec, PrecomputeCache, WorkerPool};
use canti_fault::ServeChaos;
use canti_obs::{
    Counter, Gauge, Histogram, ObsClock, RequestLog, RequestRecord, SloConfig, SloTracker,
    TimelineConfig, TimelineRecorder, TraceContext,
};

use crate::queue::FormedBatch;
use crate::response::{Disposition, LatencyBreakdown, ServeResponse};

/// Finished requests retained for `/debug/requests`, per front.
pub(crate) const REQUEST_LOG_CAPACITY: usize = 1024;

/// The serve-layer metrics handles, registered once per observer.
///
/// Names follow the `serve.` prefix the exposition layer sanitizes into
/// `serve_*` Prometheus series. The SLO tracker and request log ride
/// alongside because they cannot be re-derived from the name-keyed
/// registry — engine and executor must share ONE `ServeInstruments` so
/// both record into the same window deque and debug log.
#[derive(Debug, Clone)]
pub(crate) struct ServeInstruments {
    pub admitted: Arc<Counter>,
    pub rejected: Arc<Counter>,
    pub expired: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub shed: Arc<Counter>,
    pub failovers: Arc<Counter>,
    pub shard_restarts: Arc<Counter>,
    pub cache_hit: Arc<Counter>,
    pub cache_miss: Arc<Counter>,
    pub coalesced: Arc<Counter>,
    pub queue_depth: Arc<Gauge>,
    pub batch_size: Arc<Histogram>,
    pub request_latency_ns: Arc<Histogram>,
    pub slo: Arc<SloTracker>,
    pub requests: Arc<RequestLog>,
    pub timeline: Arc<TimelineRecorder>,
}

impl ServeInstruments {
    pub(crate) fn new(observer: &FarmObserver, slo: SloConfig, timeline: TimelineConfig) -> Self {
        let m = observer.metrics();
        m.describe("serve.admitted", "requests accepted into the queue");
        m.describe("serve.rejected", "submissions refused at the door");
        m.describe(
            "serve.expired",
            "admitted requests that missed their deadline",
        );
        m.describe("serve.completed", "requests answered by a finished batch");
        m.describe("serve.batches", "farm batches executed");
        m.describe(
            "serve.queue_depth",
            "requests currently waiting for a batch",
        );
        m.describe("serve.batch_size", "requests per executed batch");
        m.describe(
            "serve.request_latency_ns",
            "admission-to-answer latency in nanoseconds",
        );
        m.describe(
            "serve.failed",
            "admitted requests abandoned because their shard died",
        );
        m.describe("serve.shed", "admitted requests evicted under brownout");
        m.describe(
            "serve.failovers",
            "requests rerouted here because their primary shard was down",
        );
        m.describe("serve.shard_restarts", "times this shard was resurrected");
        m.describe(
            "serve.cache_hit",
            "requests answered from the content-addressed result cache",
        );
        m.describe(
            "serve.cache_miss",
            "cache lookups that went to the farm instead",
        );
        m.describe(
            "serve.coalesced",
            "requests that rode an identical in-flight leader",
        );
        Self {
            admitted: m.counter("serve.admitted"),
            rejected: m.counter("serve.rejected"),
            expired: m.counter("serve.expired"),
            completed: m.counter("serve.completed"),
            batches: m.counter("serve.batches"),
            failed: m.counter("serve.failed"),
            shed: m.counter("serve.shed"),
            failovers: m.counter("serve.failovers"),
            shard_restarts: m.counter("serve.shard_restarts"),
            cache_hit: m.counter("serve.cache_hit"),
            cache_miss: m.counter("serve.cache_miss"),
            coalesced: m.counter("serve.coalesced"),
            queue_depth: m.gauge("serve.queue_depth"),
            batch_size: m.histogram("serve.batch_size"),
            request_latency_ns: m.histogram("serve.request_latency_ns"),
            slo: Arc::new(SloTracker::new(slo, m)),
            requests: Arc::new(RequestLog::new(REQUEST_LOG_CAPACITY)),
            timeline: Arc::new(TimelineRecorder::new(timeline)),
        }
    }
}

/// Runs [`FormedBatch`]es on the farm engine.
///
/// Construction fixes the worker count, the shared precompute cache and
/// the (optional) observer; execution is then a pure mapping from a
/// formed batch to per-request responses, bit-identical at any worker
/// count because the farm itself is.
#[derive(Debug)]
pub struct BatchExecutor {
    threads: usize,
    pool: Arc<WorkerPool>,
    cache: Arc<PrecomputeCache>,
    /// The shard's content-addressed result cache, shared with the
    /// admission front (which looks up at admission; the executor
    /// inserts batch results in admission order). `None` with caching
    /// off.
    report_cache: Option<Arc<Mutex<crate::cache::ReportCache>>>,
    clock: Arc<dyn ObsClock>,
    observer: Option<FarmObserver>,
    instruments: Option<ServeInstruments>,
    chaos: Option<Arc<Mutex<ServeChaos>>>,
}

impl BatchExecutor {
    /// An executor running `threads` farm workers per batch (`0` =
    /// machine parallelism), timing requests on `clock`. The workers
    /// live in a persistent [`WorkerPool`] for the executor's lifetime,
    /// so successive batches pay no thread-spawn cost.
    #[must_use]
    pub fn new(threads: usize, clock: Arc<dyn ObsClock>) -> Self {
        Self {
            threads,
            pool: Arc::new(WorkerPool::new(threads)),
            cache: Arc::new(PrecomputeCache::new()),
            report_cache: None,
            clock,
            observer: None,
            instruments: None,
            chaos: None,
        }
    }

    /// Attaches the shard's result cache: successful batch outputs are
    /// inserted (in admission order) after each batch lands. The handle
    /// is shared with the admission front, which serves hits.
    pub(crate) fn with_report_cache(
        mut self,
        cache: Arc<Mutex<crate::cache::ReportCache>>,
    ) -> Self {
        self.report_cache = Some(cache);
        self
    }

    /// Attaches a serve-chaos injector. The injector lives behind a
    /// shared handle so a resurrected executor keeps consuming the same
    /// plan state — events already fired stay fired across restarts.
    pub(crate) fn with_chaos(mut self, chaos: Arc<Mutex<ServeChaos>>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// A replacement executor after shard failure: a **fresh**
    /// [`WorkerPool`] (the old one may hold poisoned or dead workers),
    /// but the same clock, cache, observer, instruments and chaos state
    /// — telemetry continues in the same registry, and a restart warms
    /// up against the cache exactly as a real redeploy would.
    pub(crate) fn resurrected(&self) -> Self {
        Self {
            threads: self.threads,
            pool: Arc::new(WorkerPool::new(self.threads)),
            cache: Arc::clone(&self.cache),
            report_cache: self.report_cache.clone(),
            clock: Arc::clone(&self.clock),
            observer: self.observer.clone(),
            instruments: self.instruments.clone(),
            chaos: self.chaos.clone(),
        }
    }

    /// The shared instrument set, when observed.
    pub(crate) fn instruments(&self) -> Option<&ServeInstruments> {
        self.instruments.as_ref()
    }

    /// Attaches a farm observer: batches run with farm telemetry and the
    /// serve-side counters/histograms/spans are recorded into the same
    /// registry and trace stream. SLO scoring uses the default
    /// [`SloConfig`]; the engine/service paths instead inject the shared
    /// instruments built from their [`crate::ServeConfig::slo`].
    #[must_use]
    pub fn with_observer(self, observer: FarmObserver) -> Self {
        let instruments =
            ServeInstruments::new(&observer, SloConfig::default(), TimelineConfig::default());
        self.with_instruments(observer, instruments)
    }

    /// Attaches an observer together with an already-built instrument
    /// set, so the engine front and the executor score the same SLO
    /// windows and fill the same request log.
    #[must_use]
    pub(crate) fn with_instruments(
        mut self,
        observer: FarmObserver,
        instruments: ServeInstruments,
    ) -> Self {
        // The farm records its per-batch aggregates into the same
        // recorder, so serve.* and farm.* series share one window grid.
        self.observer = Some(observer.with_timeline(Arc::clone(&instruments.timeline)));
        self.instruments = Some(instruments);
        self
    }

    /// The worker threads the persistent pool actually runs (resolved
    /// machine parallelism when constructed with `0`).
    #[must_use]
    pub fn pool_threads(&self) -> usize {
        self.pool.threads()
    }

    /// The attached observer, if any.
    #[must_use]
    pub fn observer(&self) -> Option<&FarmObserver> {
        self.observer.as_ref()
    }

    /// The clock requests are timed on.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn ObsClock> {
        &self.clock
    }

    /// Executes `batch` on a farm riding this executor's persistent
    /// pool and precompute cache, returning one response per member
    /// request in admission order. Payloads derive from each member's
    /// per-request seed (fixed at admission), not its batch slot.
    #[must_use]
    pub fn execute(&self, batch: FormedBatch) -> Vec<ServeResponse> {
        // held for the whole execution so the farm's spans nest inside
        let _span = self.observer.as_ref().map(|o| {
            o.tracer().span(
                "serve_batch",
                &[
                    ("batch", batch.index.into()),
                    ("size", batch.len().into()),
                    ("trigger", batch.trigger.label().into()),
                ],
            )
        });
        // scripted chaos: decided on this (single) batcher thread from
        // the shard-local batch index, so it fires identically at any
        // worker count
        let faults = self
            .chaos
            .as_ref()
            .map(|c| {
                c.lock()
                    .expect("serve chaos injector poisoned")
                    .on_batch(batch.index, batch.len())
            })
            .unwrap_or_default();
        if let Some(ns) = faults.stall_ns {
            if let Some(o) = &self.observer {
                o.tracer().event(
                    "batcher_stall",
                    &[("batch", batch.index.into()), ("ns", ns.into())],
                );
            }
            // wall-clock stall, capped so a plan typo cannot wedge CI;
            // under a virtual clock the trace event is the observable
            std::thread::sleep(std::time::Duration::from_nanos(ns.min(50_000_000)));
        }
        assert!(
            !faults.kill,
            "canti-serve chaos: shard killed before batch {}",
            batch.index
        );
        let jobs: Vec<JobSpec> = batch.items.iter().map(|p| p.job.clone()).collect();
        let seeds: Vec<u64> = batch.items.iter().map(|p| p.seed).collect();
        let contexts: Vec<TraceContext> = batch
            .items
            .iter()
            .map(|p| TraceContext {
                request: p.key,
                trace: p.trace,
            })
            .collect();
        let mut farm = Farm::with_cache(
            FarmConfig {
                batch_seed: batch.seed,
                threads: self.threads,
            },
            Arc::clone(&self.cache),
        )
        .with_pool(Arc::clone(&self.pool));
        if let Some(o) = &self.observer {
            farm = farm.with_observer(o.clone());
        }
        if let Some(slot) = faults.panic_job {
            // harness-level sabotage: the worker that claims this slot
            // dies, poisoning the slot; the farm re-raises the payload on
            // this thread once the batch settles, so the whole batch is
            // answered by the shard-failure path regardless of which
            // worker drew the job
            farm = farm.with_sabotage(Arc::new(move |job| {
                if job == slot {
                    panic!("canti-serve chaos: worker killed on job slot {slot}");
                }
            }));
        }
        let exec_start_ns = self.clock.now_ns();
        let report = farm.run_traced(&jobs, &seeds, &contexts);
        let exec_end_ns = self.clock.now_ns();

        let now_ns = self.clock.now_ns();
        let answered: u64 = batch
            .items
            .iter()
            .map(|p| 1 + p.followers.len() as u64)
            .sum();
        if let Some(ins) = &self.instruments {
            ins.batches.inc();
            ins.batch_size.record(batch.len() as u64);
            ins.completed.add(answered);
            // batch cadence depends on how the queue partitioned, so
            // these are not shard-count invariant — tagged accordingly
            ins.timeline.record_delta("serve.batches", 1, now_ns);
            ins.timeline
                .sample("serve.batch_size", batch.len() as u64, now_ns);
        }
        let formed_ns = batch.formed_ns;
        let index = batch.index;
        let mut responses = Vec::with_capacity(answered as usize);
        for (pending, result) in batch.items.into_iter().zip(report.outcomes) {
            // feed the result cache in admission order, successes only —
            // a per-job failure (or an injected fault) never poisons it
            if let (Some(cache), Some(key), Ok(out)) =
                (&self.report_cache, pending.job_key, result.as_ref())
            {
                cache
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(key, out.clone());
            }
            // the phases tile admission→answer exactly: each anchor
            // subtraction reuses the previous anchor, so on a monotone
            // clock cache+queue+form+exec+respond == latency. Followers
            // measure queue_ns against their own (later) arrival, so
            // their breakdowns tile too.
            let record = |enqueued_ns: u64| {
                let breakdown = LatencyBreakdown {
                    cache_ns: 0,
                    queue_ns: formed_ns.saturating_sub(enqueued_ns),
                    form_ns: exec_start_ns.saturating_sub(formed_ns),
                    exec_ns: exec_end_ns.saturating_sub(exec_start_ns),
                    respond_ns: now_ns.saturating_sub(exec_end_ns),
                };
                let latency_ns = now_ns.saturating_sub(enqueued_ns);
                (breakdown, latency_ns)
            };
            let instrument =
                |key: u64, trace: u64, outcome: &'static str, b: &LatencyBreakdown, lat: u64| {
                    if let Some(ins) = &self.instruments {
                        ins.request_latency_ns.record(lat);
                        ins.slo.record(lat, now_ns);
                        // request-scoped deltas: every contribution
                        // counted exactly once, so the merged per-window
                        // series are invariant under re-sharding
                        ins.timeline.record_delta("serve.completed", 1, now_ns);
                        ins.timeline
                            .record_delta("serve.request_latency_ns", lat, now_ns);
                        ins.timeline
                            .record_delta("serve.queue_ns", b.queue_ns, now_ns);
                        ins.timeline
                            .record_delta("serve.form_ns", b.form_ns, now_ns);
                        ins.timeline
                            .record_delta("serve.exec_ns", b.exec_ns, now_ns);
                        ins.timeline
                            .record_delta("serve.respond_ns", b.respond_ns, now_ns);
                        ins.requests.push(RequestRecord {
                            request: key,
                            trace,
                            outcome,
                            batch: Some(index),
                            latency_ns: lat,
                            queue_ns: b.queue_ns,
                            form_ns: b.form_ns,
                            exec_ns: b.exec_ns,
                            respond_ns: b.respond_ns,
                            finished_ns: now_ns,
                        });
                    }
                };
            let (breakdown, latency_ns) = record(pending.enqueued_ns);
            instrument(
                pending.key,
                pending.trace,
                if result.is_ok() { "ok" } else { "job_failed" },
                &breakdown,
                latency_ns,
            );
            responses.push(ServeResponse {
                request_id: pending.id,
                trace: pending.trace,
                disposition: Disposition::Completed {
                    batch: index,
                    latency_ns,
                    breakdown,
                    result: result.clone(),
                },
            });
            // fan the leader's answer out to every coalesced follower —
            // each ticket answered exactly once, with the same payload
            // bits
            for f in &pending.followers {
                let (breakdown, latency_ns) = record(f.enqueued_ns);
                instrument(
                    f.key,
                    f.trace,
                    if result.is_ok() {
                        "coalesced"
                    } else {
                        "job_failed"
                    },
                    &breakdown,
                    latency_ns,
                );
                responses.push(ServeResponse {
                    request_id: f.id,
                    trace: f.trace,
                    disposition: Disposition::Completed {
                        batch: index,
                        latency_ns,
                        breakdown,
                        result: result.clone(),
                    },
                });
            }
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::AdmissionQueue;
    use crate::ServeConfig;
    use canti_farm::ProbeMode;
    use canti_obs::VirtualClock;

    fn formed(jobs: usize, clock_now: u64) -> FormedBatch {
        let mut q = AdmissionQueue::new(ServeConfig {
            max_batch: jobs,
            ..ServeConfig::default()
        });
        for i in 0..jobs {
            q.submit(clock_now, JobSpec::Probe(ProbeMode::Draws(1 + i)), None)
                .unwrap();
        }
        q.pop_ready(clock_now).expect("size-triggered batch")
    }

    #[test]
    fn execution_answers_every_request_in_admission_order() {
        let clock = Arc::new(VirtualClock::new());
        clock.set_ns(500);
        let exec = BatchExecutor::new(2, clock.clone());
        let batch = formed(4, 100);
        let responses = exec.execute(batch);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.request_id, i as u64);
            assert_eq!(r.trace, canti_obs::trace_id(i as u64));
            match &r.disposition {
                Disposition::Completed {
                    batch: 0,
                    latency_ns,
                    breakdown,
                    result: Ok(out),
                } => {
                    assert_eq!(*latency_ns, 400, "admitted at 100, done at 500");
                    assert_eq!(breakdown.total_ns(), *latency_ns, "phases tile the latency");
                    assert_eq!(
                        (breakdown.queue_ns, breakdown.form_ns),
                        (0, 400),
                        "formed at admission, executed 400 ns later"
                    );
                    assert_eq!(out.job_index, i);
                }
                other => panic!("request {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_payloads() {
        let clock = Arc::new(VirtualClock::new());
        let oracle = BatchExecutor::new(1, clock.clone()).execute(formed(8, 0));
        for threads in [2, 8] {
            let run = BatchExecutor::new(threads, clock.clone()).execute(formed(8, 0));
            assert_eq!(run, oracle, "{threads} farm workers");
        }
    }

    #[test]
    fn observed_execution_records_serve_metrics() {
        let clock = Arc::new(VirtualClock::new());
        let (observer, ring) = FarmObserver::deterministic(4096);
        let exec = BatchExecutor::new(2, clock).with_observer(observer);
        let responses = exec.execute(formed(3, 0));
        assert_eq!(responses.len(), 3);
        let m = exec.observer().expect("observer").metrics();
        assert_eq!(m.counter("serve.batches").get(), 1);
        assert_eq!(m.counter("serve.completed").get(), 3);
        assert_eq!(m.histogram("serve.batch_size").snapshot().count, 1);
        assert_eq!(m.histogram("serve.request_latency_ns").snapshot().count, 3);
        assert_eq!(
            m.counter("slo.good").get(),
            3,
            "all within default objective"
        );
        let names: Vec<String> = ring.events().iter().map(|e| e.name.clone()).collect();
        assert!(
            names.contains(&"serve_batch".to_owned()),
            "serve_batch span missing from {names:?}"
        );
        assert!(
            names.contains(&"batch".to_owned()),
            "farm batch span nests under the serve span"
        );
    }
}
