//! The content-addressed result cache and its canonical job hash.
//!
//! The whole stack is deterministic by construction: identical
//! `(JobSpec, seed, config)` provably yields bit-identical reports. This
//! module turns that property into the fast path — a repeated request is
//! answered by a hash lookup instead of a farm solve.
//!
//! # Key canonicalization
//!
//! [`job_key`] hashes the **canonical NDJSON line** of the spec, built
//! with the same [`canti_obs::ndjson`] forms the telemetry pipeline
//! emits and [`canti_obs::parse`] round-trips:
//!
//! * fields are written in a fixed declaration order, so the key cannot
//!   depend on field or map ordering;
//! * floats go through [`canti_obs::JsonValue::F64`], whose `Display` is
//!   the shortest round-tripping decimal — every distinct finite bit
//!   pattern gets a distinct spelling, and the non-finite values use the
//!   canonical `"NaN"` / `"Infinity"` / `"-Infinity"` strings (all NaN
//!   payloads collapse to one key, which is safe: the stack never
//!   branches on a NaN payload);
//! * integers and enum tags are emitted as plain JSON scalars/strings.
//!
//! The line is then hashed with two independent 64-bit FNV-1a lanes into
//! a 128-bit [`JobKey`], wide enough that distinct specs colliding is
//! not a practical concern (and the proptest suite hunts for collisions
//! over dense spec neighborhoods anyway).
//!
//! # Eviction determinism rule
//!
//! [`ReportCache`] never reads a clock. Recency is a logical access
//! sequence number bumped on every lookup/insert, so for a scripted
//! arrival order the hit/miss/eviction sequence is a pure function of
//! that order — bit-identical at any worker or shard count. Capacity is
//! enforced by evicting the least-recently-used entry (smallest access
//! number; key order breaks the tie deterministically, though ties
//! cannot actually occur since the sequence is strictly increasing).
//!
//! Only **successful** job outputs are cached. A per-job failure (or a
//! chaos-injected fault) is never inserted, so transient faults cannot
//! poison the cache: the request is answered with its error, and the
//! next identical request recomputes.

use std::collections::BTreeMap;

use canti_farm::{JobOutput, JobSpec};
use canti_obs::{ndjson, JsonValue};

/// Policy for the content-addressed report cache. `None` on
/// [`crate::ServeConfig::cache`] (the default) disables caching and
/// coalescing entirely, preserving pre-existing scripted traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum cached reports per shard. Clamped to ≥ 1. When full, the
    /// least-recently-used entry is evicted (logical access order, never
    /// wall time).
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { capacity: 256 }
    }
}

impl CacheConfig {
    /// The effective capacity (configured value, at least 1).
    #[must_use]
    pub fn effective_capacity(&self) -> usize {
        self.capacity.max(1)
    }
}

/// The 128-bit content hash of one [`JobSpec`]: two independent FNV-1a
/// 64 lanes over the spec's canonical NDJSON line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey(pub [u64; 2]);

impl JobKey {
    /// Folds the key into one `u64` for request-seed derivation: with
    /// the cache on, a request's RNG stream derives from
    /// [`crate::shard::request_seed`] over the config base and this
    /// fold, so identical specs yield identical payload bits on any
    /// shard — cached and recomputed responses compare `==` bitwise.
    #[must_use]
    pub fn fold(&self) -> u64 {
        crate::shard::splitmix64(self.0[0] ^ self.0[1].rotate_left(32))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-lane offset: the FNV offset basis mixed once, so the two lanes
/// walk decorrelated trajectories over the same bytes.
const FNV_OFFSET_LANE2: u64 = 0x6c62_272e_07bb_0142;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The canonical NDJSON line a [`JobSpec`] hashes as. Public so the
/// property tests can pin its stability directly.
#[must_use]
pub fn canonical_job_line(job: &JobSpec) -> String {
    use canti_farm::{ProbeMode, Receptor};
    let tag = |name: &str| ("job", JsonValue::from(name));
    match job {
        JobSpec::StaticDoseResponse {
            receptor,
            concentration,
            baseline,
            association,
            wash,
            dt,
            averaging,
        } => {
            let receptor = match receptor {
                Receptor::AntiIgg => "anti_igg",
                Receptor::AntiPsa => "anti_psa",
                Receptor::Dna20mer => "dna_20mer",
            };
            ndjson::object(&[
                tag("static_dose_response"),
                ("receptor", receptor.into()),
                ("concentration", concentration.value().into()),
                ("baseline", baseline.value().into()),
                ("association", association.value().into()),
                ("wash", wash.value().into()),
                ("dt", dt.value().into()),
                ("averaging", (*averaging).into()),
            ])
        }
        JobSpec::ProcessVariation {
            thickness_sigma_rel,
        } => ndjson::object(&[
            tag("process_variation"),
            ("thickness_sigma_rel", (*thickness_sigma_rel).into()),
        ]),
        JobSpec::CrossReactivity {
            target,
            interferent,
        } => ndjson::object(&[
            tag("cross_reactivity"),
            ("target", target.value().into()),
            ("interferent", interferent.value().into()),
        ]),
        JobSpec::Probe(mode) => match mode {
            ProbeMode::Value(v) => {
                ndjson::object(&[tag("probe"), ("mode", "value".into()), ("v", (*v).into())])
            }
            ProbeMode::Draws(n) => {
                ndjson::object(&[tag("probe"), ("mode", "draws".into()), ("n", (*n).into())])
            }
            ProbeMode::Panic => ndjson::object(&[tag("probe"), ("mode", "panic".into())]),
            ProbeMode::Fail => ndjson::object(&[tag("probe"), ("mode", "fail".into())]),
            ProbeMode::Flaky { p_fail } => ndjson::object(&[
                tag("probe"),
                ("mode", "flaky".into()),
                ("p_fail", (*p_fail).into()),
            ]),
        },
        JobSpec::ChaosScan {
            fault_seed,
            faults,
            samples,
        } => ndjson::object(&[
            tag("chaos_scan"),
            ("fault_seed", (*fault_seed).into()),
            ("faults", (*faults).into()),
            ("samples", (*samples).into()),
        ]),
    }
}

/// The content hash of `job` — see the module docs for the canonical
/// form it is computed over.
#[must_use]
pub fn job_key(job: &JobSpec) -> JobKey {
    let line = canonical_job_line(job);
    JobKey([
        fnv1a(FNV_OFFSET, line.as_bytes()),
        fnv1a(FNV_OFFSET_LANE2, line.as_bytes()),
    ])
}

/// Running tallies of one shard's report cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (the request went to the farm).
    pub misses: u64,
    /// Successful outputs inserted.
    pub insertions: u64,
    /// Entries evicted at capacity (LRU by logical access order).
    pub evictions: u64,
    /// Entries currently held.
    pub entries: u64,
}

impl CacheStats {
    /// `self` plus `other` field-wise — how the sharded fronts sum their
    /// per-shard caches.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    output: JobOutput,
    last_access: u64,
}

/// The capacity-bounded, deterministically evicting report cache.
///
/// One per shard (constructed from [`crate::ServeConfig::cache`]),
/// shared between that shard's admission front and batch executor: the
/// front looks up at admission, the executor inserts batch results in
/// admission order. See the module docs for the eviction determinism
/// rule.
#[derive(Debug)]
pub struct ReportCache {
    config: CacheConfig,
    entries: BTreeMap<JobKey, CacheEntry>,
    /// Logical access sequence — bumped per lookup/insert, never a clock.
    tick: u64,
    stats: CacheStats,
}

impl ReportCache {
    /// An empty cache under `config`.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            entries: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, returning a clone of the cached output on a hit.
    /// Every call counts as a hit or a miss and (on a hit) refreshes the
    /// entry's recency.
    pub fn lookup(&mut self, key: JobKey) -> Option<JobOutput> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_access = self.tick;
                self.stats.hits += 1;
                Some(entry.output.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a successful output under `key`, evicting the
    /// least-recently-used entry if the cache is at capacity. Re-inserting
    /// an existing key refreshes its recency (the newer output is kept;
    /// by the determinism contract it is bit-identical anyway).
    pub fn insert(&mut self, key: JobKey, output: JobOutput) {
        self.tick += 1;
        let fresh = CacheEntry {
            output,
            last_access: self.tick,
        };
        if self.entries.insert(key, fresh).is_none() {
            self.stats.insertions += 1;
            let capacity = self.config.effective_capacity();
            while self.entries.len() > capacity {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|(k, e)| (e.last_access, **k))
                    .map(|(k, _)| *k)
                    .expect("cache is non-empty above capacity");
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.stats.entries = self.entries.len() as u64;
    }

    /// The running tallies (entry count included).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached keys in LRU order (least recent first) — test support
    /// for pinning eviction order.
    #[must_use]
    pub fn keys_by_recency(&self) -> Vec<JobKey> {
        let mut keys: Vec<(u64, JobKey)> = self
            .entries
            .iter()
            .map(|(k, e)| (e.last_access, *k))
            .collect();
        keys.sort_unstable();
        keys.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_farm::ProbeMode;

    fn out(i: usize) -> JobOutput {
        JobOutput {
            job_index: i,
            kind: "probe",
            metrics: vec![("value", i as f64)],
        }
    }

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    #[test]
    fn canonical_line_is_stable_and_distinct_per_spec() {
        assert_eq!(
            canonical_job_line(&probe(1.5)),
            "{\"job\":\"probe\",\"mode\":\"value\",\"v\":1.5}"
        );
        assert_ne!(
            canonical_job_line(&probe(1.5)),
            canonical_job_line(&probe(1.25))
        );
        // all NaN payloads collapse to the one canonical spelling
        let quiet = f64::NAN;
        let other = f64::from_bits(quiet.to_bits() ^ 1);
        assert_eq!(
            canonical_job_line(&probe(quiet)),
            canonical_job_line(&probe(other))
        );
        assert!(canonical_job_line(&probe(f64::INFINITY)).contains("Infinity"));
    }

    #[test]
    fn keys_match_exactly_when_lines_match() {
        assert_eq!(job_key(&probe(2.0)), job_key(&probe(2.0)));
        assert_ne!(job_key(&probe(2.0)), job_key(&probe(3.0)));
        assert_ne!(
            job_key(&JobSpec::Probe(ProbeMode::Draws(2))),
            job_key(&JobSpec::Probe(ProbeMode::Value(2.0)))
        );
    }

    #[test]
    fn lru_eviction_follows_logical_access_order() {
        let mut c = ReportCache::new(CacheConfig { capacity: 2 });
        let (a, b, d) = (
            job_key(&probe(1.0)),
            job_key(&probe(2.0)),
            job_key(&probe(3.0)),
        );
        c.insert(a, out(1));
        c.insert(b, out(2));
        assert!(c.lookup(a).is_some(), "refresh a: b is now LRU");
        c.insert(d, out(3));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(b).is_none(), "b was evicted");
        assert!(c.lookup(a).is_some());
        assert!(c.lookup(d).is_some());
        let s = c.stats();
        assert_eq!((s.insertions, s.evictions, s.entries), (3, 1, 2));
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn reinsert_refreshes_without_counting_an_insertion() {
        let mut c = ReportCache::new(CacheConfig { capacity: 2 });
        let a = job_key(&probe(1.0));
        c.insert(a, out(1));
        c.insert(a, out(1));
        assert_eq!(c.stats().insertions, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut c = ReportCache::new(CacheConfig { capacity: 0 });
        c.insert(job_key(&probe(1.0)), out(1));
        c.insert(job_key(&probe(2.0)), out(2));
        assert_eq!(c.len(), 1, "degenerate capacity still holds one entry");
    }

    #[test]
    fn fold_is_stable() {
        let k = job_key(&probe(4.0));
        assert_eq!(k.fold(), k.fold());
        assert_ne!(k.fold(), job_key(&probe(5.0)).fold());
    }
}
