//! The bounded admission queue and the batch-formation rules.
//!
//! This module is deliberately free of observability and threading: it
//! is a pure state machine over `(config, submissions, clock readings)`,
//! which is what makes batch formation a deterministic function of the
//! arrival script. Everything here is driven by explicit `now_ns`
//! arguments — the caller owns the clock.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use canti_farm::JobSpec;

use crate::cache::JobKey;
use crate::ServeConfig;

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue already holds `capacity` waiting requests.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The service is draining for shutdown and admits nothing new.
    Draining,
    /// The request's shard is down (batcher dead or executor poisoned)
    /// and no live shard could take it. Also the terminal disposition
    /// handed to requests that were already in flight when the shard
    /// died — admitted work is answered, never abandoned silently.
    ShardFailed,
    /// Deadline-feasibility fast reject: the relative deadline is
    /// shorter than the shard's own p95 service-time estimate, so
    /// admitting the request would almost certainly burn a batch slot on
    /// work that expires anyway.
    Infeasible {
        /// The shard's p95 admission-to-completion estimate, ns.
        needed_ns: u64,
        /// The relative deadline the request asked for, ns.
        deadline_ns: u64,
    },
    /// Brownout shedding evicted the request: queue depth crossed the
    /// configured high-water mark and this request was among the lowest
    /// priority waiting.
    Shed,
}

impl RejectReason {
    /// Stable label for metrics / trace fields.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::QueueFull { .. } => "queue_full",
            Self::Draining => "draining",
            Self::ShardFailed => "shard_failed",
            Self::Infeasible { .. } => "infeasible",
            Self::Shed => "shed",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} waiting)")
            }
            Self::Draining => write!(f, "service is draining"),
            Self::ShardFailed => write!(f, "shard failed"),
            Self::Infeasible {
                needed_ns,
                deadline_ns,
            } => write!(
                f,
                "deadline infeasible ({deadline_ns} ns asked, p95 service is {needed_ns} ns)"
            ),
            Self::Shed => write!(f, "shed under brownout"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// What made a batch fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchTrigger {
    /// The queue reached the size threshold.
    Size,
    /// The oldest queued request hit the linger deadline.
    Linger,
    /// Shutdown flushed the remaining queue.
    Drain,
}

impl BatchTrigger {
    /// Stable label for metrics / trace fields.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Size => "size",
            Self::Linger => "linger",
            Self::Drain => "drain",
        }
    }
}

/// A request that coalesced onto an identical in-flight leader: it
/// occupies no queue slot and runs no job of its own — the leader's
/// answer fans out to it when the batch completes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Follower {
    /// Admission-ordered request id (shares the leader's id space).
    pub id: u64,
    /// The request key telemetry reports (global id under sharding).
    pub key: u64,
    /// The request-scoped trace id over `key`.
    pub trace: u64,
    /// Clock reading at admission — later than the leader's, so the
    /// follower's `queue_ns` is measured against its own arrival and the
    /// latency breakdown still tiles exactly.
    pub enqueued_ns: u64,
}

/// How a submission was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admitted {
    /// Queued normally (occupies a queue slot, runs its own job).
    Queued(u64),
    /// Coalesced onto the queued leader with the same content hash.
    Coalesced {
        /// The id handed to this submission.
        id: u64,
        /// The leader request it rides on.
        leader: u64,
    },
}

impl Admitted {
    /// The id handed out either way.
    pub(crate) fn id(&self) -> u64 {
        match *self {
            Self::Queued(id) | Self::Coalesced { id, .. } => id,
        }
    }
}

/// One admitted request waiting for (or riding in) a batch.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Pending {
    /// Admission-ordered request id, unique per queue.
    pub id: u64,
    /// The simulation to run.
    pub job: JobSpec,
    /// The seed this request's farm RNG stream derives from:
    /// [`crate::shard::request_seed`] over the config's base seed and
    /// the request key (the global id under a sharded front, the local
    /// id otherwise). Fixed at admission so the payload is independent
    /// of which batch, slot or shard the request later rides in.
    pub seed: u64,
    /// The request-scoped trace id: [`canti_obs::trace_id`] over the
    /// same key the seed derives from, so every span the request touches
    /// carries one stable id at any worker or shard count.
    pub trace: u64,
    /// The request key the seed and trace derive from: the **global**
    /// id under a sharded front, the local id otherwise. Telemetry and
    /// debug records report this id, never the local one.
    pub key: u64,
    /// Clock reading at admission.
    pub enqueued_ns: u64,
    /// Absolute expiry instant, when the request carries a deadline.
    pub deadline_ns: Option<u64>,
    /// Brownout priority class: higher values survive shedding longer.
    /// Unprioritized submissions get 0.
    pub priority: u8,
    /// The spec's content hash — `Some` only when the config enables the
    /// result cache. Drives in-flight coalescing and the post-batch
    /// cache insert.
    pub job_key: Option<JobKey>,
    /// Identical requests that coalesced onto this one while it waited.
    /// They occupy no queue slots; the executor fans this request's
    /// answer out to each of them.
    pub followers: Vec<Follower>,
}

/// A batch the queue has released for execution: an ordered slice of
/// admitted requests plus the farm seed it must run under.
#[derive(Debug, Clone, PartialEq)]
pub struct FormedBatch {
    /// Zero-based batch index (also the seed offset).
    pub index: u64,
    /// What fired the batch.
    pub trigger: BatchTrigger,
    /// The farm seed this batch runs with.
    pub seed: u64,
    /// Clock reading when the queue released the batch — the formation
    /// anchor the per-request latency breakdown measures `queue_ns`
    /// against.
    pub formed_ns: u64,
    pub(crate) items: Vec<Pending>,
}

impl FormedBatch {
    /// Requests riding in this batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch is empty (never produced by the queue).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The member request ids, in admission order.
    #[must_use]
    pub fn request_ids(&self) -> Vec<u64> {
        self.items.iter().map(|p| p.id).collect()
    }
}

/// The bounded, deadline-aware admission queue.
///
/// All mutation is explicit: [`Self::submit`] admits or rejects,
/// `take_expired` removes requests whose deadline has passed,
/// and `pop_ready` / `pop_drain` release batches. Time
/// never flows implicitly — every decision reads the `now_ns` the caller
/// passes in.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: ServeConfig,
    queue: VecDeque<Pending>,
    /// Content hash → queued leader id, maintained only when the config
    /// enables the result cache. A deadline-free default-priority
    /// submission whose hash is in here coalesces onto that leader
    /// instead of occupying a queue slot.
    inflight: BTreeMap<JobKey, u64>,
    next_id: u64,
    next_batch: u64,
    draining: bool,
    failed: bool,
}

impl AdmissionQueue {
    /// An empty queue under `config`.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            queue: VecDeque::with_capacity(config.capacity()),
            inflight: BTreeMap::new(),
            next_id: 0,
            next_batch: 0,
            draining: false,
            failed: false,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Requests currently waiting.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue has stopped admitting.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the owning shard is marked failed: every submission is
    /// refused with [`RejectReason::ShardFailed`] until the shard
    /// restarts and clears the mark.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Marks the owning shard failed. Request ids keep advancing across
    /// the outage so a restarted shard never reuses an id.
    pub(crate) fn fail(&mut self) {
        self.failed = true;
    }

    /// Clears the failed mark after the shard restarted.
    pub(crate) fn restore(&mut self) {
        self.failed = false;
    }

    /// Batches released so far.
    #[must_use]
    pub fn batches_formed(&self) -> u64 {
        self.next_batch
    }

    /// Admits `job` at time `now_ns`, or explains why not.
    ///
    /// `deadline_ns` is relative to admission; when `None`, the config's
    /// default deadline (if any) applies. Returns the request id.
    ///
    /// # Errors
    ///
    /// [`RejectReason::Draining`] once [`Self::begin_drain`] was called,
    /// [`RejectReason::QueueFull`] when `capacity` requests wait already.
    pub fn submit(
        &mut self,
        now_ns: u64,
        job: JobSpec,
        deadline_ns: Option<u64>,
    ) -> Result<u64, RejectReason> {
        self.submit_keyed(now_ns, job, deadline_ns, None)
            .map(|a| a.id())
    }

    /// [`Self::submit`] with an explicit seed key: a sharded front
    /// passes the **global** request id so the request's RNG stream —
    /// and therefore its payload bits — is the same on any shard count.
    /// Unkeyed submissions fall back to the local id, which coincides
    /// with the global id on a single shard.
    pub(crate) fn submit_keyed(
        &mut self,
        now_ns: u64,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: Option<u64>,
    ) -> Result<Admitted, RejectReason> {
        self.submit_prioritized(now_ns, job, deadline_ns, key, 0)
    }

    /// [`Self::submit_keyed`] with an explicit brownout priority class.
    ///
    /// With the result cache enabled, two things change. The request's
    /// RNG seed derives from its spec's **content hash** instead of its
    /// key, so identical specs yield identical payload bits (the
    /// invariant that makes cached answers bitwise interchangeable with
    /// recomputed ones). And a deadline-free, default-priority
    /// submission identical to a queued request **coalesces**: it gets
    /// its own id but occupies no queue slot and runs no job — the
    /// leader's answer fans out to it. Deadline-carrying or prioritized
    /// submissions always queue normally so expiry and shedding
    /// semantics stay exact.
    pub(crate) fn submit_prioritized(
        &mut self,
        now_ns: u64,
        job: JobSpec,
        deadline_ns: Option<u64>,
        key: Option<u64>,
        priority: u8,
    ) -> Result<Admitted, RejectReason> {
        if self.failed {
            return Err(RejectReason::ShardFailed);
        }
        if self.draining {
            return Err(RejectReason::Draining);
        }
        let job_key = self.config.cache.map(|_| crate::cache::job_key(&job));
        let coalescable =
            deadline_ns.is_none() && self.config.default_deadline_ns.is_none() && priority == 0;
        if coalescable {
            if let Some(k) = job_key {
                if let Some(&leader) = self.inflight.get(&k) {
                    if let Some(p) = self.queue.iter_mut().find(|p| p.id == leader) {
                        let id = self.next_id;
                        self.next_id += 1;
                        let key = key.unwrap_or(id);
                        p.followers.push(Follower {
                            id,
                            key,
                            trace: canti_obs::trace_id(key),
                            enqueued_ns: now_ns,
                        });
                        return Ok(Admitted::Coalesced { id, leader });
                    }
                }
            }
        }
        let capacity = self.config.capacity();
        if self.queue.len() >= capacity {
            return Err(RejectReason::QueueFull { capacity });
        }
        let id = self.next_id;
        self.next_id += 1;
        let deadline = deadline_ns
            .or(self.config.default_deadline_ns)
            .map(|d| now_ns.saturating_add(d));
        let key = key.unwrap_or(id);
        let seed = match job_key {
            // content-derived: identical specs → identical payload bits
            Some(k) => crate::shard::request_seed(self.config.batch_seed, k.fold()),
            None => crate::shard::request_seed(self.config.batch_seed, key),
        };
        if let Some(k) = job_key {
            // the newest queued instance is the coalesce target
            self.inflight.insert(k, id);
        }
        self.queue.push_back(Pending {
            id,
            job,
            seed,
            trace: canti_obs::trace_id(key),
            key,
            enqueued_ns: now_ns,
            deadline_ns: deadline,
            priority,
            job_key,
            followers: Vec::new(),
        });
        Ok(Admitted::Queued(id))
    }

    /// Allocates an id for a request answered straight from the result
    /// cache: it never occupies a queue slot, but burns an id so the
    /// admission-ordered id stream stays dense (the sharded front's
    /// local→global mapping depends on that).
    ///
    /// # Errors
    ///
    /// The same failed/draining gates as [`Self::submit`] — a down or
    /// draining shard refuses cached answers too.
    pub(crate) fn allocate_cached(&mut self) -> Result<u64, RejectReason> {
        if self.failed {
            return Err(RejectReason::ShardFailed);
        }
        if self.draining {
            return Err(RejectReason::Draining);
        }
        let id = self.next_id;
        self.next_id += 1;
        Ok(id)
    }

    /// Removes and returns every queued request whose deadline has
    /// passed (`now_ns >= deadline_ns`), in admission order. Run this
    /// before [`Self::pop_ready`] so expired requests never occupy batch
    /// slots.
    /// An expiring leader with followers does not take its coalition
    /// down: the oldest follower is **promoted** in place (keeping the
    /// queue position and the content-derived seed, so payload bits are
    /// unchanged) and only the leader itself is reported expired.
    pub(crate) fn take_expired(&mut self, now_ns: u64) -> Vec<Pending> {
        let mut expired = Vec::new();
        let inflight = &mut self.inflight;
        self.queue.retain_mut(|p| match p.deadline_ns {
            Some(d) if now_ns >= d => {
                let mut gone = p.clone();
                gone.followers = Vec::new();
                if p.followers.is_empty() {
                    if let Some(k) = p.job_key {
                        if inflight.get(&k) == Some(&p.id) {
                            inflight.remove(&k);
                        }
                    }
                    expired.push(gone);
                    false
                } else {
                    let f = p.followers.remove(0);
                    p.id = f.id;
                    p.key = f.key;
                    p.trace = f.trace;
                    p.enqueued_ns = f.enqueued_ns;
                    // followers are deadline-free and priority-0 by the
                    // coalescing rule
                    p.deadline_ns = None;
                    p.priority = 0;
                    if let Some(k) = p.job_key {
                        if inflight.get(&k) == Some(&gone.id) {
                            inflight.insert(k, p.id);
                        }
                    }
                    expired.push(gone);
                    true
                }
            }
            _ => true,
        });
        expired
    }

    /// Brownout shedding: while more than `high_water` requests wait,
    /// evicts the lowest-priority one (newest first among equals) and
    /// returns the victims in eviction order. Purely a function of queue
    /// state, so a scripted run sheds the same requests every time.
    pub(crate) fn take_shed(&mut self, high_water: usize) -> Vec<Pending> {
        let mut shed = Vec::new();
        while self.queue.len() > high_water {
            let min_priority = self
                .queue
                .iter()
                .map(|p| p.priority)
                .min()
                .expect("queue is non-empty above the high-water mark");
            let victim = self
                .queue
                .iter()
                .rposition(|p| p.priority == min_priority)
                .expect("a min-priority element exists");
            let victim = self.queue.remove(victim).expect("victim index in range");
            if let Some(k) = victim.job_key {
                if self.inflight.get(&k) == Some(&victim.id) {
                    self.inflight.remove(&k);
                }
            }
            // a shed leader sheds its whole coalition with it
            shed.push(victim);
        }
        shed
    }

    /// Empties the queue for shard-failure handling, in admission order.
    /// The caller answers each request terminally with
    /// [`RejectReason::ShardFailed`].
    pub(crate) fn take_all(&mut self) -> Vec<Pending> {
        self.inflight.clear();
        self.queue.drain(..).collect()
    }

    /// Releases the next ready batch, if any: a full `max_batch` slice
    /// when the size threshold is met, otherwise everything queued once
    /// the oldest request has lingered past `linger_ns`. Call in a loop
    /// until `None`.
    pub(crate) fn pop_ready(&mut self, now_ns: u64) -> Option<FormedBatch> {
        let threshold = self.config.batch_threshold();
        if self.queue.len() >= threshold {
            return Some(self.form(threshold, BatchTrigger::Size, now_ns));
        }
        let oldest = self.queue.front()?;
        if now_ns >= oldest.enqueued_ns.saturating_add(self.config.linger_ns) {
            let n = self.queue.len();
            return Some(self.form(n, BatchTrigger::Linger, now_ns));
        }
        None
    }

    /// Stops admission: every later [`Self::submit`] is rejected with
    /// [`RejectReason::Draining`].
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Releases the next shutdown-flush batch (up to `max_batch`
    /// requests), ignoring the linger deadline. Call in a loop until
    /// `None` after [`Self::begin_drain`].
    pub(crate) fn pop_drain(&mut self, now_ns: u64) -> Option<FormedBatch> {
        if self.queue.is_empty() {
            return None;
        }
        let n = self.queue.len().min(self.config.batch_threshold());
        Some(self.form(n, BatchTrigger::Drain, now_ns))
    }

    /// The earliest future instant at which the queue's state can change
    /// on its own: the oldest request's linger deadline or the earliest
    /// request deadline, whichever comes first. `None` while empty.
    #[must_use]
    pub fn next_wakeup_ns(&self) -> Option<u64> {
        let linger = self
            .queue
            .front()
            .map(|p| p.enqueued_ns.saturating_add(self.config.linger_ns));
        let deadline = self.queue.iter().filter_map(|p| p.deadline_ns).min();
        match (linger, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn form(&mut self, n: usize, trigger: BatchTrigger, now_ns: u64) -> FormedBatch {
        let index = self.next_batch;
        self.next_batch += 1;
        let items: Vec<Pending> = self.queue.drain(..n).collect();
        // a forming request stops being a coalesce target: later
        // identical submissions miss the in-flight map and hit the
        // result cache once this batch lands (or queue a fresh leader)
        for p in &items {
            if let Some(k) = p.job_key {
                if self.inflight.get(&k) == Some(&p.id) {
                    self.inflight.remove(&k);
                }
            }
        }
        FormedBatch {
            index,
            trigger,
            seed: self.config.batch_seed.wrapping_add(index),
            formed_ns: now_ns,
            items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canti_farm::ProbeMode;

    fn probe(v: f64) -> JobSpec {
        JobSpec::Probe(ProbeMode::Value(v))
    }

    fn queue(capacity: usize, max_batch: usize, linger_ns: u64) -> AdmissionQueue {
        AdmissionQueue::new(ServeConfig {
            queue_capacity: capacity,
            max_batch,
            linger_ns,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn ids_are_admission_ordered_and_capacity_is_enforced() {
        let mut q = queue(2, 8, 100);
        assert_eq!(q.submit(0, probe(1.0), None), Ok(0));
        assert_eq!(q.submit(0, probe(2.0), None), Ok(1));
        assert_eq!(
            q.submit(0, probe(3.0), None),
            Err(RejectReason::QueueFull { capacity: 2 })
        );
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn size_threshold_fires_before_linger() {
        let mut q = queue(8, 3, 1_000);
        for i in 0..5 {
            q.submit(0, probe(f64::from(i)), None).unwrap();
        }
        let b = q.pop_ready(0).expect("size-triggered batch");
        assert_eq!(b.trigger, BatchTrigger::Size);
        assert_eq!(b.request_ids(), vec![0, 1, 2]);
        assert!(q.pop_ready(0).is_none(), "two left, below threshold");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn linger_deadline_fires_for_a_partial_batch() {
        let mut q = queue(8, 4, 1_000);
        q.submit(10, probe(1.0), None).unwrap();
        q.submit(500, probe(2.0), None).unwrap();
        assert!(q.pop_ready(1_009).is_none(), "oldest has waited 999 ns");
        let b = q.pop_ready(1_010).expect("linger fires at 1010");
        assert_eq!(b.trigger, BatchTrigger::Linger);
        assert_eq!(
            b.request_ids(),
            vec![0, 1],
            "linger flushes the whole queue"
        );
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn deadlines_expire_queued_requests() {
        let mut q = queue(8, 8, 10_000);
        q.submit(0, probe(1.0), Some(100)).unwrap();
        q.submit(0, probe(2.0), None).unwrap();
        assert!(q.take_expired(99).is_empty());
        let gone = q.take_expired(100);
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].id, 0);
        assert_eq!(gone[0].deadline_ns, Some(100));
        assert_eq!(q.depth(), 1, "undeadlined neighbour survives");
    }

    #[test]
    fn default_deadline_applies_when_submission_carries_none() {
        let mut q = AdmissionQueue::new(ServeConfig {
            default_deadline_ns: Some(50),
            ..ServeConfig::default()
        });
        q.submit(7, probe(1.0), None).unwrap();
        q.submit(7, probe(2.0), Some(500)).unwrap();
        let gone = q.take_expired(57);
        assert_eq!(gone.len(), 1, "default deadline 7+50 fires");
        assert_eq!(gone[0].id, 0);
    }

    #[test]
    fn drain_rejects_new_and_flushes_in_threshold_chunks() {
        let mut q = queue(8, 2, 1_000_000);
        for i in 0..5 {
            q.submit(0, probe(f64::from(i)), None).unwrap();
        }
        q.begin_drain();
        assert_eq!(q.submit(0, probe(9.0), None), Err(RejectReason::Draining));
        let sizes: Vec<usize> = std::iter::from_fn(|| q.pop_drain(0).map(|b| b.len())).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        assert!(q.pop_drain(0).is_none());
    }

    #[test]
    fn batch_seeds_step_with_the_index() {
        let mut q = queue(8, 1, 1_000);
        q.submit(0, probe(1.0), None).unwrap();
        q.submit(0, probe(2.0), None).unwrap();
        let a = q.pop_ready(0).unwrap();
        let b = q.pop_ready(0).unwrap();
        assert_eq!(a.index, 0);
        assert_eq!(b.index, 1);
        assert_eq!(b.seed, a.seed + 1);
        assert_eq!(q.batches_formed(), 2);
    }

    #[test]
    fn next_wakeup_is_the_earlier_of_linger_and_deadline() {
        let mut q = queue(8, 8, 1_000);
        assert_eq!(q.next_wakeup_ns(), None);
        q.submit(100, probe(1.0), Some(350)).unwrap();
        // linger at 1100, deadline at 450
        assert_eq!(q.next_wakeup_ns(), Some(450));
        q.submit(120, probe(2.0), None).unwrap();
        assert_eq!(q.next_wakeup_ns(), Some(450), "front linger still 1100");
        let _ = q.take_expired(450);
        assert_eq!(q.next_wakeup_ns(), Some(1_120), "now the second's linger");
    }

    #[test]
    fn reject_reason_renders() {
        assert!(RejectReason::QueueFull { capacity: 4 }
            .to_string()
            .contains("full"));
        assert_eq!(RejectReason::Draining.label(), "draining");
        assert_eq!(BatchTrigger::Linger.label(), "linger");
        assert_eq!(RejectReason::ShardFailed.label(), "shard_failed");
        assert!(RejectReason::Infeasible {
            needed_ns: 100,
            deadline_ns: 10
        }
        .to_string()
        .contains("p95"));
        assert_eq!(RejectReason::Shed.label(), "shed");
    }

    #[test]
    fn failed_queue_refuses_until_restored_without_reusing_ids() {
        let mut q = queue(8, 8, 100);
        assert_eq!(q.submit(0, probe(1.0), None), Ok(0));
        q.fail();
        assert!(q.is_failed());
        assert_eq!(
            q.submit(0, probe(2.0), None),
            Err(RejectReason::ShardFailed)
        );
        q.restore();
        assert_eq!(
            q.submit(0, probe(3.0), None),
            Ok(1),
            "id 1 was never burned"
        );
    }

    #[test]
    fn shedding_evicts_lowest_priority_newest_first() {
        let mut q = queue(8, 8, 1_000_000);
        q.submit_prioritized(0, probe(0.0), None, None, 1).unwrap(); // id 0
        q.submit_prioritized(0, probe(1.0), None, None, 0).unwrap(); // id 1
        q.submit_prioritized(0, probe(2.0), None, None, 0).unwrap(); // id 2
        q.submit_prioritized(0, probe(3.0), None, None, 2).unwrap(); // id 3
        let shed = q.take_shed(2);
        assert_eq!(
            shed.iter().map(|p| p.id).collect::<Vec<_>>(),
            vec![2, 1],
            "priority-0 victims go newest first"
        );
        assert_eq!(q.depth(), 2);
        assert!(q.take_shed(2).is_empty(), "at the mark, nothing sheds");
        let survivors: Vec<u64> = q.take_all().iter().map(|p| p.id).collect();
        assert_eq!(survivors, vec![0, 3], "high-priority requests survive");
    }
}
