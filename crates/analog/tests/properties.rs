//! Property-based tests for the analog substrate.

use canti_analog::adc::SarAdc;
use canti_analog::blocks::{Block, HighPassFilter, LowPassFilter};
use canti_analog::bridge::WheatstoneBridge;
use canti_analog::spectrum::{fft_radix2, goertzel_amplitude};
use canti_units::{Ohms, Volts};
use proptest::prelude::*;

proptest! {
    /// Equal fractional change on all four arms keeps the bridge balanced —
    /// the common-mode rejection the ratiometric topology buys.
    #[test]
    fn bridge_common_mode_rejected(d in -0.4f64..0.4, vb in 0.5f64..5.0, r in 1e3f64..1e6) {
        let bridge = WheatstoneBridge::resistive(Ohms::new(r)).expect("bridge");
        let out = bridge.output(Volts::new(vb), [d, d, d, d]);
        prop_assert!(out.value().abs() < 1e-12, "common mode leaked: {out}");
    }

    /// Balanced-bridge sensitivity equals the bias voltage for any bias.
    #[test]
    fn bridge_sensitivity_equals_bias(vb in 0.1f64..10.0, r in 1e3f64..1e6) {
        let bridge = WheatstoneBridge::resistive(Ohms::new(r)).expect("bridge");
        let s = bridge.sensitivity(Volts::new(vb));
        prop_assert!((s - vb).abs() / vb < 1e-5, "sensitivity {s} vs Vb {vb}");
    }

    /// Swapping the sign of all deltas mirrors the output exactly.
    #[test]
    fn bridge_odd_symmetry(
        d1 in -0.3f64..0.3, d2 in -0.3f64..0.3, d3 in -0.3f64..0.3, d4 in -0.3f64..0.3
    ) {
        let bridge = WheatstoneBridge::resistive(Ohms::from_kiloohms(10.0)).expect("bridge");
        let vb = Volts::new(3.0);
        let plus = bridge.output(vb, [d1, d2, d3, d4]).value();
        // mirroring the *divider ratios* means swapping each divider's arms
        let minus = bridge.output(vb, [d2, d1, d4, d3]).value();
        prop_assert!((plus + minus).abs() < 1e-12, "{plus} vs {minus}");
    }

    /// A first-order LPF passes DC exactly for any valid corner.
    #[test]
    fn lpf_dc_gain_is_unity(fc in 1.0f64..1e5) {
        let fs = 1e6;
        let mut f = LowPassFilter::new(fc, fs).expect("filter");
        let mut y = 0.0;
        for _ in 0..((fs / fc) as usize * 30) {
            y = f.process(1.0);
        }
        prop_assert!((y - 1.0).abs() < 1e-3, "DC gain {y} at fc {fc}");
    }

    /// A first-order HPF kills DC for any valid corner.
    #[test]
    fn hpf_dc_gain_is_zero(fc in 10.0f64..1e5) {
        let fs = 1e6;
        let mut f = HighPassFilter::new(fc, fs).expect("filter");
        let mut y = 1.0;
        for _ in 0..((fs / fc) as usize * 30) {
            y = f.process(1.0);
        }
        prop_assert!(y.abs() < 1e-3, "DC residue {y} at fc {fc}");
    }

    /// FFT preserves energy (Parseval) for arbitrary signals.
    #[test]
    fn fft_parseval(seed in 0u64..1000) {
        let n = 256;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed + 7) % 101) as f64) / 50.0 - 1.0)
            .collect();
        let time_energy: f64 = re.iter().map(|x| x * x).sum();
        let mut im = vec![0.0; n];
        fft_radix2(&mut re, &mut im).expect("fft");
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-9 * time_energy.max(1.0));
    }

    /// Goertzel recovers the amplitude of any bin-centered tone.
    #[test]
    fn goertzel_amplitude_exact(k in 3usize..100, amp in 1e-6f64..10.0) {
        let n = 4096;
        let fs = 1e5;
        let f = k as f64 * fs / n as f64;
        let wave: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let got = goertzel_amplitude(&wave, fs, f).expect("goertzel");
        prop_assert!((got - amp).abs() / amp < 1e-9, "amp {amp} got {got}");
    }

    /// ADC quantization error is bounded by LSB/2 strictly inside the
    /// representable range (the top code sits one LSB below +v_ref, so the
    /// last LSB of headroom clips — excluded here, covered by the clipping
    /// unit test).
    #[test]
    fn adc_quantization_bound(bits in 4u32..16, v in -0.99f64..0.99) {
        let adc = SarAdc::ideal(bits, Volts::new(1.0)).expect("adc");
        prop_assume!(v <= 1.0 - adc.lsb());
        let err = (adc.code_to_volts(adc.convert(v)) - v).abs();
        prop_assert!(err <= adc.lsb() / 2.0 + 1e-15);
    }

    /// ADC transfer is monotone for arbitrary pairs.
    #[test]
    fn adc_monotone(a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let adc = SarAdc::ideal(10, Volts::new(1.0)).expect("adc");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(adc.convert(lo) <= adc.convert(hi));
    }
}
